"""Federated control plane: region shards under a gateway overlay.

The monolithic :class:`~repro.controlplane.Controller` owns one global
embedding, one DT and one routing index, so every cost scales with the
total switch count.  The federation splits the network into *regions*:

* each region gets its own **shard** — a full
  :class:`~repro.core.GredNetwork` over the region's induced
  sub-topology, with its own MDS embedding, DT, routing index,
  plan/diff/apply pipeline and southbound transport (the incremental
  and reliable-delivery machinery, reused unchanged per shard);
* the regions themselves are embedded once at the top level: the
  region adjacency graph (one node per region, one edge per designated
  gateway link) is MDS-embedded into the unit square and indexed, so a
  data position resolves **region-first** (nearest region site), then
  locally inside that shard;
* cross-region requests ride the designated gateway links: the entry
  shard carries the request to its egress gateway, each overlay hop
  crosses one gateway link, and the home shard routes the tail.

Churn stays regional by construction: a join/leave mutates exactly one
shard controller, so zero southbound messages reach any other region.
A federation with a single region *is* the monolith — every data-path
and control-plane call delegates verbatim to the one shard, which is
built from the same topology, server map and seed as a monolithic
``GredNetwork``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .. import utils
from ..embedding import m_position
from ..graph import Graph
from ..graph.shortest_paths import all_pairs_hop_matrix, bfs_path
from ..hashing import data_position, replica_id, replica_ids_flat
from ..hashing.batch import positions_from_digests, sha256_digests
from .region import RegionError, RegionMap
from .routing_index import RoutingIndex
from .southbound import Probe, RecordingChannel

__all__ = [
    "RegionShard",
    "FederatedController",
    "FederatedNetwork",
]


class RegionShard:
    """One region of the federation: its id, members, gateways, and
    the shard :class:`~repro.core.GredNetwork` that serves it."""

    def __init__(self, region: int, net, members: Sequence[int],
                 gateways: Sequence[int]) -> None:
        self.region = region
        self.net = net
        self.members: FrozenSet[int] = frozenset(members)
        self.gateways: List[int] = sorted(gateways)

    @property
    def controller(self):
        return self.net.controller

    def serving(self) -> bool:
        """Whether any switch in this shard is alive (no fault state
        attached means fully alive)."""
        fault = self.net.fault_state
        if fault is None:
            return True
        return any(fault.switch_alive(s) for s in self.net.switch_ids())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RegionShard(region={self.region}, "
                f"switches={len(self.members)})")


def _region_sites(region_graph: Graph) -> Dict[int, Tuple[float, float]]:
    """Coarse top-level embedding: region sites in the unit square.

    The region adjacency graph is MDS-embedded exactly like a shard's
    switches — overlay hop counts play the role of physical hop counts
    — so the nearest-site rule partitions the hash space into one
    Voronoi cell per region.
    """
    rids = sorted(region_graph.nodes())
    if len(rids) == 1:
        return {rids[0]: (0.5, 0.5)}
    matrix, order = all_pairs_hop_matrix(region_graph, order=rids)
    points = m_position(matrix)
    return {rid: points[i] for i, rid in enumerate(order)}


class FederatedController:
    """The federation's control plane: per-region shard controllers
    plus the top-level gateway overlay.

    All plan/diff/apply, generation, changelog and reliable-delivery
    state lives in the shard controllers; this class adds region
    resolution (:meth:`home_region`), overlay routing between regions,
    and federation-wide views of the per-shard incremental state.
    """

    def __init__(self, region_map: RegionMap,
                 shards: Dict[int, RegionShard]) -> None:
        self.region_map = region_map
        self.shards = shards
        #: Live switch -> region view (updated on churn; the static
        #: ``region_map`` keeps the construction-time assignment and
        #: the gateway/overlay structure, which churn never changes).
        self._assignment: Dict[int, int] = region_map.assignment
        self._sites = _region_sites(region_map.region_graph)
        self._region_index = RoutingIndex(sorted(self._sites),
                                          self._sites)

    # ------------------------------------------------------------------
    # region resolution
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self.shards)

    @property
    def sites(self) -> Dict[int, Tuple[float, float]]:
        """Top-level embedding of the regions (copy)."""
        return dict(self._sites)

    def region_of(self, switch: int) -> int:
        try:
            return self._assignment[switch]
        except KeyError:
            raise RegionError(f"unknown switch {switch}") from None

    def home_region(self, position: Tuple[float, float]) -> int:
        """The region whose top-level site is nearest to ``position``
        — where a data item with that hash position lives."""
        if len(self.shards) == 1:
            return next(iter(self.shards))
        return self._region_index.closest(position)

    def controller(self, region: int):
        return self.shards[region].controller

    # ------------------------------------------------------------------
    # overlay routing
    # ------------------------------------------------------------------
    def overlay_path(self, src_region: int, dst_region: int,
                     live_only: bool = True) -> Optional[List[int]]:
        """Region-level path, avoiding non-serving transit regions."""
        avoid: FrozenSet[int] = frozenset()
        if live_only:
            avoid = frozenset(
                rid for rid, shard in self.shards.items()
                if not shard.serving()
            )
        return self.region_map.overlay_path(src_region, dst_region,
                                            avoid=avoid)

    def overlay_hops(self, src_region: int, dst_region: int) -> int:
        return self.region_map.overlay_hops(src_region, dst_region)

    # ------------------------------------------------------------------
    # federation-wide control-plane views
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> Dict[int, int]:
        return {rid: s.controller.epoch for rid, s in self.shards.items()}

    @property
    def versions(self) -> Dict[int, int]:
        return {rid: s.controller.version
                for rid, s in self.shards.items()}

    def generations(self) -> Dict[int, Dict[int, int]]:
        return {rid: s.controller.generations
                for rid, s in self.shards.items()}

    def recompute(self, region: Optional[int] = None) -> None:
        """Full recompute of one shard (or all of them).  Other shards
        are untouched — their epochs, caches and installed state
        survive."""
        targets = [region] if region is not None else list(self.shards)
        for rid in targets:
            self.shards[rid].controller.recompute()

    def reconcile(self, region: Optional[int] = None,
                  max_sweeps: int = 8) -> Dict[int, Any]:
        """Digest anti-entropy per shard; ``region`` restricts the
        sweep to one shard so a restarted region heals without a
        single message entering any other region."""
        targets = [region] if region is not None else list(self.shards)
        return {
            rid: self.shards[rid].controller.reconcile(
                max_sweeps=max_sweeps)
            for rid in targets
        }

    def attach_channels(self) -> Dict[int, RecordingChannel]:
        """One observing channel per shard controller; the per-region
        channels are how churn locality is *measured* (foreign-region
        message counts must stay zero)."""
        channels: Dict[int, RecordingChannel] = {}
        for rid, shard in self.shards.items():
            channel = RecordingChannel()
            shard.controller.southbound_channel = channel
            channels[rid] = channel
        return channels

    def foreign_messages(self, channels: Dict[int, RecordingChannel],
                         home_region: int) -> int:
        """Rule messages recorded outside ``home_region`` (excluding
        liveness probes)."""
        return sum(
            channel.count(exclude=(Probe,))
            for rid, channel in channels.items() if rid != home_region
        )

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self) -> List[Any]:
        """All shard invariants (1-8 per shard) plus invariant 9: no
        installed rule references a switch outside its shard, except
        that gateway switches may appear in the federation's overlay
        table."""
        from .verification import verify_installed_state, \
            verify_region_scope

        violations: List[Any] = []
        for rid, shard in self.shards.items():
            violations.extend(verify_installed_state(
                shard.controller, fault_state=shard.net.fault_state))
            members = set(shard.net.switch_ids())
            violations.extend(verify_region_scope(
                shard.controller, members, region=rid))
        # The overlay table itself: every designated gateway endpoint
        # must be a member of the region it is claimed for.
        rm = self.region_map
        for a in rm.region_ids:
            for b in rm.region_graph.neighbors(a):
                u, _ = rm.gateway(a, b)
                if self._assignment.get(u) != a:
                    from .verification import Violation

                    violations.append(Violation(
                        kind="gateway-scope", switch=u,
                        detail=f"gateway {u} for region pair "
                               f"({a}, {b}) is not a member of "
                               f"region {a}",
                    ))
        return violations


class FederatedNetwork:
    """Data-path facade over a federation of region shards.

    Parameters
    ----------
    topology:
        Global switch graph including cross-region links.
    assignment:
        ``switch id -> region id``; when omitted,
        :func:`repro.topology.partition_regions` auto-partitions the
        topology into ``num_regions`` balanced connected regions.
    num_regions:
        Used only when ``assignment`` is omitted (default 1).
    server_map / servers_per_switch / cvt_iterations /
    samples_per_iteration / seed:
        As in :class:`~repro.core.GredNetwork`; each shard ``r`` seeds
        its embedding with ``seed + r`` so region 0 of a single-region
        federation is byte-identical to the monolithic network.
    """

    def __init__(
        self,
        topology: Graph,
        assignment: Optional[Dict[int, int]] = None,
        num_regions: int = 1,
        server_map=None,
        servers_per_switch: int = 10,
        cvt_iterations: int = 50,
        samples_per_iteration: int = 1000,
        seed: int = 0,
    ) -> None:
        from ..core import GredNetwork

        if assignment is None:
            from ..topology.regions import partition_regions

            assignment = partition_regions(topology, num_regions)
        self.region_map = RegionMap(topology, assignment)
        self.seed = seed
        shards: Dict[int, RegionShard] = {}
        self.build_seconds: Dict[int, float] = {}
        import time

        for rid in self.region_map.region_ids:
            members = self.region_map.members(rid)
            # A single-region federation shares the caller's topology
            # object, exactly like the monolith; multi-region shards
            # own their induced sub-topology (intra-region links only).
            sub = (topology if self.region_map.num_regions == 1
                   else self.region_map.subtopology(rid))
            shard_servers = None
            if server_map is not None:
                shard_servers = {sid: server_map[sid] for sid in members}
            start = time.perf_counter()
            net = GredNetwork(
                sub,
                server_map=shard_servers,
                servers_per_switch=servers_per_switch,
                cvt_iterations=cvt_iterations,
                samples_per_iteration=samples_per_iteration,
                seed=seed + rid,
            )
            self.build_seconds[rid] = time.perf_counter() - start
            shards[rid] = RegionShard(rid, net, members,
                                      self.region_map.gateways(rid))
        self.shards = shards
        self.controller = FederatedController(self.region_map, shards)
        self._mono = (shards[self.region_map.region_ids[0]].net
                      if len(shards) == 1 else None)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self.shards)

    def shard(self, region: int) -> RegionShard:
        return self.shards[region]

    @property
    def topology(self) -> Graph:
        """Union view: every shard's live topology plus the
        cross-region gateway links."""
        if self._mono is not None:
            return self._mono.topology
        union = Graph()
        for shard in self.shards.values():
            sub = shard.net.topology
            for node in sub.nodes():
                union.add_node(node)
            for u, v, w in sub.edges():
                union.add_edge(u, v, w)
        for u, v, w in self.region_map.cross_links:
            if union.has_node(u) and union.has_node(v):
                union.add_edge(u, v, w)
        return union

    def switch_ids(self) -> List[int]:
        if self._mono is not None:
            return self._mono.switch_ids()
        ids: List[int] = []
        for rid in sorted(self.shards):
            ids.extend(self.shards[rid].net.switch_ids())
        return ids

    def load_vector(self) -> List[int]:
        if self._mono is not None:
            return self._mono.load_vector()
        loads: List[int] = []
        for rid in sorted(self.shards):
            loads.extend(self.shards[rid].net.load_vector())
        return loads

    def region_of(self, switch: int) -> int:
        return self.controller.region_of(switch)

    def home_region_of(self, data_id: str, copy_index: int = 0) -> int:
        """The region where copy ``copy_index`` of ``data_id`` lives."""
        pos = data_position(replica_id(data_id, copy_index))
        return self.controller.home_region(pos)

    # ------------------------------------------------------------------
    # entry resolution (mirrors GredNetwork)
    # ------------------------------------------------------------------
    def _entry_pool(self) -> List[int]:
        ids = []
        for rid in sorted(self.shards):
            shard = self.shards[rid]
            fault = shard.net.fault_state
            for s in shard.net.switch_ids():
                if fault is None or fault.switch_alive(s):
                    ids.append(s)
        return ids

    def _resolve_entry(self, entry_switch: Optional[int],
                       rng: Optional[np.random.Generator]) -> int:
        from ..core import GredError

        if entry_switch is not None:
            rid = self.controller._assignment.get(entry_switch)
            if rid is None:
                raise GredError(f"unknown entry switch {entry_switch}")
            fault = self.shards[rid].net.fault_state
            if fault is not None and not fault.switch_alive(entry_switch):
                raise GredError(
                    f"entry switch {entry_switch} has crashed; requests "
                    f"must enter at a live access point"
                )
            return entry_switch
        ids = self._entry_pool()
        if not ids:
            raise GredError("no live switch can serve as entry point")
        stream = utils.rng(rng)
        return ids[int(stream.integers(0, len(ids)))]

    def _resolve_entries(self, count: int,
                         entry_switches: Optional[Sequence[int]],
                         rng: Optional[np.random.Generator]
                         ) -> List[int]:
        from ..core import GredError

        if entry_switches is not None:
            if len(entry_switches) != count:
                raise GredError(
                    f"entry_switches has {len(entry_switches)} entries "
                    f"for {count} data ids"
                )
            return [self._resolve_entry(e, rng) for e in entry_switches]
        faulted = any(s.net.fault_state is not None
                      for s in self.shards.values())
        if not faulted:
            ids = self.switch_ids()
            stream = utils.rng(rng)
            draws = stream.integers(0, len(ids), size=count)
            return [ids[v] for v in draws.tolist()]
        return [self._resolve_entry(None, rng) for _ in range(count)]

    # ------------------------------------------------------------------
    # gateway stitching
    # ------------------------------------------------------------------
    def _stitch(self, entry: int, home_region: int
                ) -> Optional[Tuple[List[int], int, int]]:
        """Carry a request from ``entry`` to the ingress gateway of
        ``home_region``: ``(trace, ingress switch, region crossings)``,
        or ``None`` when the overlay cannot reach the home region."""
        src = self.region_of(entry)
        path = self.controller.overlay_path(src, home_region)
        if path is None:
            return None
        trace = [entry]
        cur = entry
        for a, b in zip(path, path[1:]):
            egress, ingress = self.region_map.gateway(a, b)
            if cur != egress:
                leg = bfs_path(self.shards[a].net.topology, cur, egress)
                trace.extend(leg[1:])
            trace.append(ingress)
            cur = ingress
        return trace, cur, len(path) - 1

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, data_id: str, payload: Any = None,
              entry_switch: Optional[int] = None, copies: int = 1,
              rng: Optional[np.random.Generator] = None):
        from ..core import GredError
        from ..core.results import PlacementResult

        if self._mono is not None:
            return self._mono.place(data_id, payload=payload,
                                    entry_switch=entry_switch,
                                    copies=copies, rng=rng)
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        entry = self._resolve_entry(entry_switch, rng)
        records = [
            self._place_copy(replica_id(data_id, i), payload, entry)
            for i in range(copies)
        ]
        return PlacementResult(data_id=data_id, records=records)

    def _place_copy(self, copy_id: str, payload: Any, entry: int):
        from ..core import GredError
        from ..core.results import PlacementRecord

        home = self.controller.home_region(data_position(copy_id))
        if home == self.region_of(entry):
            return self.shards[home].net._place_one(copy_id, payload,
                                                    entry)
        stitched = self._stitch(entry, home)
        if stitched is None:
            raise GredError(
                f"region {home} is unreachable over the gateway "
                f"overlay; cannot place {copy_id}"
            )
        prefix, ingress, crossings = stitched
        rec = self.shards[home].net._place_one(copy_id, payload, ingress)
        return PlacementRecord(
            data_id=copy_id,
            entry_switch=entry,
            destination_switch=rec.destination_switch,
            server_id=rec.server_id,
            physical_hops=len(prefix) - 1 + rec.physical_hops,
            overlay_hops=rec.overlay_hops + crossings,
            trace=prefix[:-1] + rec.trace,
            extended=rec.extended,
            hinted=rec.hinted,
        )

    def place_many(self, data_ids: Sequence[str],
                   payloads: Optional[Sequence[Any]] = None,
                   entry_switches: Optional[Sequence[int]] = None,
                   copies: int = 1,
                   rng: Optional[np.random.Generator] = None,
                   workers: Optional[int] = None,
                   digests: Optional[np.ndarray] = None):
        """Batch placement, grouped by home region: intra-region
        requests ride each shard's vectorized fast path; cross-region
        requests are stitched through the gateway overlay."""
        from ..core import GredError
        from ..core.results import PlacementResult

        if self._mono is not None:
            return self._mono.place_many(
                data_ids, payloads=payloads,
                entry_switches=entry_switches, copies=copies, rng=rng,
                workers=workers, digests=digests)
        data_ids = list(data_ids)
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        if payloads is not None and len(payloads) != len(data_ids):
            raise GredError(
                f"payloads has {len(payloads)} entries for "
                f"{len(data_ids)} data ids"
            )
        entries = self._resolve_entries(len(data_ids), entry_switches,
                                        rng)
        flat_ids = replica_ids_flat(data_ids, copies)
        if digests is None:
            digests = sha256_digests(flat_ids)
        positions = positions_from_digests(digests)
        homes = [
            self.controller.home_region(
                (positions[f, 0], positions[f, 1]))
            for f in range(len(flat_ids))
        ]
        records: List[Any] = [None] * len(flat_ids)
        buckets: Dict[int, List[int]] = {}
        for f, flat_id in enumerate(flat_ids):
            entry = entries[f // copies]
            if homes[f] == self.region_of(entry):
                buckets.setdefault(homes[f], []).append(f)
            else:
                records[f] = self._place_copy(
                    flat_id,
                    payloads[f // copies] if payloads is not None
                    else None,
                    entry)
        for rid in sorted(buckets):
            flats = buckets[rid]
            sub_digests = digests[np.asarray(flats, dtype=np.intp)]
            results = self.shards[rid].net.place_many(
                [flat_ids[f] for f in flats],
                payloads=([payloads[f // copies] for f in flats]
                          if payloads is not None else None),
                entry_switches=[entries[f // copies] for f in flats],
                copies=1,
                workers=workers,
                digests=sub_digests,
            )
            for f, result in zip(flats, results):
                records[f] = result.records[0]
        return [
            PlacementResult(
                data_id=data_id,
                records=records[i * copies:(i + 1) * copies],
            )
            for i, data_id in enumerate(data_ids)
        ]

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def retrieve(self, data_id: str,
                 entry_switch: Optional[int] = None, copies: int = 1,
                 rng: Optional[np.random.Generator] = None,
                 max_hops: Optional[int] = None,
                 read_repair: bool = False):
        from ..core import GredError

        if self._mono is not None:
            return self._mono.retrieve(
                data_id, entry_switch=entry_switch, copies=copies,
                rng=rng, max_hops=max_hops, read_repair=read_repair)
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        entry = self._resolve_entry(entry_switch, rng)
        homes = [self.home_region_of(data_id, i) for i in range(copies)]
        entry_region = self.region_of(entry)
        if all(h == entry_region for h in homes):
            return self.shards[entry_region].net.retrieve(
                data_id, entry_switch=entry, copies=copies,
                max_hops=max_hops, read_repair=read_repair)
        return self._retrieve_federated(data_id, entry, copies, homes,
                                        max_hops)

    def _retrieve_federated(self, data_id: str, entry: int, copies: int,
                            homes: List[int],
                            max_hops: Optional[int]):
        """Region-nearest-first failover walk across shards."""
        from ..core.results import RetrievalResult

        entry_region = self.region_of(entry)
        order = sorted(
            range(copies),
            key=lambda i: (
                self.controller.overlay_hops(entry_region, homes[i]), i)
        )
        attempts = 0
        last_miss: Optional[RetrievalResult] = None
        for i in order:
            attempts += 1
            result = self._probe_copy(data_id, i, homes[i], entry,
                                      attempts, max_hops)
            if result is None:
                continue
            if result.found:
                return result
            last_miss = result
        if last_miss is not None:
            return last_miss
        return RetrievalResult(
            data_id=data_id, found=False, payload=None,
            entry_switch=entry, destination_switch=None, server_id=None,
            request_hops=0, response_hops=0, trace=[],
            copy_used=order[-1], forked=False, attempts=attempts,
        )

    def _probe_copy(self, data_id: str, copy_index: int, home: int,
                    entry: int, attempts: int,
                    max_hops: Optional[int]):
        from ..core.results import RetrievalResult

        if home == self.region_of(entry):
            return self.shards[home].net.probe_replica(
                data_id, copy_index, entry, max_hops=max_hops,
                attempts=attempts)
        if not self.shards[home].serving():
            return None
        stitched = self._stitch(entry, home)
        if stitched is None:
            return None
        prefix, ingress, crossings = stitched
        result = self.shards[home].net.probe_replica(
            data_id, copy_index, ingress, max_hops=max_hops,
            attempts=attempts)
        if result is None:
            return None
        prefix_hops = len(prefix) - 1
        return RetrievalResult(
            data_id=data_id,
            found=result.found,
            payload=result.payload,
            entry_switch=entry,
            destination_switch=result.destination_switch,
            server_id=result.server_id,
            request_hops=result.request_hops + prefix_hops,
            response_hops=(result.response_hops + prefix_hops
                           if result.found else 0),
            trace=prefix[:-1] + result.trace,
            copy_used=copy_index,
            forked=result.forked,
            attempts=attempts,
        )

    def retrieve_many(self, data_ids: Sequence[str],
                      entry_switches: Optional[Sequence[int]] = None,
                      copies: int = 1,
                      rng: Optional[np.random.Generator] = None,
                      max_hops: Optional[int] = None,
                      workers: Optional[int] = None,
                      digests: Optional[np.ndarray] = None):
        """Batch retrieval, grouped by home region: items whose every
        replica lives in the entry's own region ride that shard's
        vectorized fast path; the rest take the stitched cross-region
        walk."""
        from ..core import GredError

        if self._mono is not None:
            return self._mono.retrieve_many(
                data_ids, entry_switches=entry_switches, copies=copies,
                rng=rng, max_hops=max_hops, workers=workers,
                digests=digests)
        data_ids = list(data_ids)
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        entries = self._resolve_entries(len(data_ids), entry_switches,
                                        rng)
        flat_ids = replica_ids_flat(data_ids, copies)
        if digests is None:
            digests = sha256_digests(flat_ids)
        positions = positions_from_digests(digests)
        results: List[Any] = [None] * len(data_ids)
        buckets: Dict[int, List[int]] = {}
        for i, data_id in enumerate(data_ids):
            entry_region = self.region_of(entries[i])
            homes = [
                self.controller.home_region(
                    (positions[i * copies + c, 0],
                     positions[i * copies + c, 1]))
                for c in range(copies)
            ]
            if all(h == entry_region for h in homes):
                buckets.setdefault(entry_region, []).append(i)
            else:
                results[i] = self._retrieve_federated(
                    data_id, entries[i], copies, homes, max_hops)
        for rid in sorted(buckets):
            items = buckets[rid]
            flats = [i * copies + c for i in items
                     for c in range(copies)]
            sub_digests = digests[np.asarray(flats, dtype=np.intp)]
            shard_results = self.shards[rid].net.retrieve_many(
                [data_ids[i] for i in items],
                entry_switches=[entries[i] for i in items],
                copies=copies,
                max_hops=max_hops,
                workers=workers,
                digests=sub_digests,
            )
            for i, result in zip(items, shard_results):
                results[i] = result
        return results

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, data_id: str, copies: int = 1,
               entry_switch: Optional[int] = None) -> int:
        if self._mono is not None:
            return self._mono.delete(data_id, copies=copies,
                                     entry_switch=entry_switch)
        entry = self._resolve_entry(entry_switch, None)
        removed = 0
        for i in range(copies):
            copy_id = replica_id(data_id, i)
            home = self.controller.home_region(data_position(copy_id))
            if home == self.region_of(entry):
                local_entry = entry
            else:
                stitched = self._stitch(entry, home)
                if stitched is None:
                    continue
                local_entry = stitched[1]
            removed += self.shards[home].net.delete(
                copy_id, copies=1, entry_switch=local_entry)
        return removed

    # ------------------------------------------------------------------
    # churn (always single-region by construction)
    # ------------------------------------------------------------------
    def add_switch(self, switch_id: int, links: Sequence[int],
                   servers_per_switch: int = 0,
                   servers=None, region: Optional[int] = None) -> int:
        """A switch joins one region.  Every link peer must live in
        that region (a joiner cannot span regions — new gateway links
        are a topology build-time decision), so the join mutates
        exactly one shard controller and ships zero southbound
        messages anywhere else."""
        from ..core import GredError

        link_regions = {self.region_of(p) for p in links}
        if region is None:
            if len(link_regions) != 1:
                raise GredError(
                    f"join of {switch_id} spans regions "
                    f"{sorted(link_regions)}; a joining switch must "
                    f"link into exactly one region"
                )
            region = link_regions.pop()
        elif link_regions - {region}:
            raise GredError(
                f"join of {switch_id} into region {region} has link "
                f"peers in {sorted(link_regions - {region})}"
            )
        migrated = self.shards[region].net.add_switch(
            switch_id, links, servers_per_switch=servers_per_switch,
            servers=servers)
        self.controller._assignment[switch_id] = region
        return migrated

    def remove_switch(self, switch_id: int) -> int:
        """A switch leaves its region gracefully (items re-placed
        within the shard).  Gateway switches pin the overlay and
        cannot leave."""
        from ..core import GredError

        region = self.region_of(switch_id)
        if switch_id in self.shards[region].gateways:
            raise GredError(
                f"switch {switch_id} is a designated gateway of region "
                f"{region} and cannot leave"
            )
        moved = self.shards[region].net.remove_switch(switch_id)
        del self.controller._assignment[switch_id]
        return moved
