"""The SDN controller of the software-defined edge network (SDEN).

The controller centralizes the GRED control plane (paper Section III):

1. discover the switch topology and the attached edge servers;
2. compute virtual positions with the M-position algorithm (classical
   MDS over the all-pairs hop matrix);
3. refine the positions of DT-participating switches toward a CVT with
   C-regulation (``cvt_iterations = 0`` yields the GRED-NoCVT variant);
4. build the Delaunay triangulation of the refined positions;
5. compile and install per-switch forwarding state (greedy candidates,
   multi-hop relay tuples);
6. serve range-extension requests from overloaded switches;
7. absorb network dynamics (switch join/leave) with incremental DT
   updates.

The controller is proactive: all rules are pushed before any data-plane
traffic, so switches never consult the controller per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

import numpy as np

from ..dataplane import ExtensionEntry, GredSwitch
from ..edge import EdgeServer, ServerMap
from ..embedding import c_regulation, m_position
from ..geometry import (
    DelaunayTriangulation,
    Point,
    deduplicate_points,
    euclidean,
)
from ..graph import (
    Graph,
    all_pairs_hop_matrix,
    connected_components,
    is_connected,
)
from ..obs import EventLevel, default_registry
from .apply import RetryPolicy, TransactionalApplier, apply_delta
from .diff import RuleDelta, diff_plans
from .plan import RulePlan, compile_plan, plan_digests, snapshot_plan
from .routing_index import RoutingIndex

#: Retained per-event touched-switch history; ``changes_since`` answers
#: queries within this window, older baselines fall back to a full
#: rebuild.
_CHANGELOG_CAP = 256


class ControlPlaneError(Exception):
    """Raised for invalid control-plane requests or inconsistent state."""


@dataclass
class ControllerConfig:
    """Tunables of the control plane.

    ``cvt_iterations`` is the paper's ``T``; 0 disables C-regulation
    (GRED-NoCVT).  ``samples_per_iteration`` is the Monte-Carlo sample
    count (paper: 1000).  ``density_sampler`` optionally realizes a
    non-uniform data-position density rho for C-regulation (paper
    Equation 2); ``None`` means uniform (SHA-256 positions).
    """

    cvt_iterations: int = 50
    samples_per_iteration: int = 1000
    relaxation: float = 1.0
    margin: float = 0.05
    seed: int = 0
    density_sampler: Optional[object] = None
    #: Embedding back end: "classical" (the paper's M-position) or
    #: "smacof" (stress majorization, ablation A4).
    embedding: str = "classical"


@dataclass
class ReconcileReport:
    """Outcome of one anti-entropy reconciliation run.

    ``sweeps`` counts the digest sweeps that shipped at least one
    resync; ``divergence_window`` (the histogram) observes the same
    number — how long (in sweeps) divergent state survived.
    """

    sweeps: int = 0
    #: Switches diverging from the desired plan when the run started.
    divergent_initial: int = 0
    #: Switch resyncs shipped (a switch resynced twice counts twice).
    resynced: int = 0
    #: Message retransmissions during resyncs.
    retries: int = 0
    #: Southbound transmissions during resyncs.
    messages: int = 0
    #: Pending-queue entries drained by this run.
    drained: int = 0
    #: Switches skipped because their control channel is severed.
    unreachable: FrozenSet[int] = frozenset()
    #: Switches still divergent when the run ended (unreachable ones,
    #: or ``max_sweeps`` ran out).
    divergent_final: FrozenSet[int] = frozenset()

    @property
    def converged(self) -> bool:
        return not self.divergent_final

    def to_dict(self) -> Dict[str, object]:
        return {
            "sweeps": self.sweeps,
            "divergent_initial": self.divergent_initial,
            "resynced": self.resynced,
            "retries": self.retries,
            "messages": self.messages,
            "drained": self.drained,
            "unreachable": sorted(self.unreachable),
            "divergent_final": sorted(self.divergent_final),
            "converged": self.converged,
        }


class Controller:
    """The GRED control plane.

    Parameters
    ----------
    topology:
        Physical switch graph (must be connected).
    server_map:
        Edge servers attached to each switch; switches absent from the
        map (or mapped to an empty list) are relay-only and do not
        participate in the DT.
    config:
        Control-plane tunables.
    """

    def __init__(self, topology: Graph, server_map: ServerMap,
                 config: Optional[ControllerConfig] = None) -> None:
        if not is_connected(topology):
            raise ControlPlaneError("the switch topology must be connected")
        unknown = [s for s in server_map if not topology.has_node(s)]
        if unknown:
            raise ControlPlaneError(
                f"server map references unknown switches: {unknown}"
            )
        self.config = config or ControllerConfig()
        self.topology = topology.copy()
        self.server_map: ServerMap = {
            node: list(server_map.get(node, []))
            for node in topology.nodes()
        }
        self.positions: Dict[int, Point] = {}
        self.switches: Dict[int, GredSwitch] = {}
        self._dt: Optional[DelaunayTriangulation] = None
        self._dt_vertex_to_switch: Dict[int, int] = {}
        self._dt_switch_to_vertex: Dict[int, int] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self._init_incremental_state()
        self.recompute()

    def _init_incremental_state(self) -> None:
        """Initialize the plan/diff/apply bookkeeping.

        Split out of ``__init__`` because snapshot restore builds
        controllers via ``__new__`` and must set up the same state
        before calling :meth:`recompute`.
        """
        #: Last applied plan (what the controller believes installed).
        self._plan: Optional[RulePlan] = None
        #: Bumps on every applied change, global or scoped.
        self._version = 0
        #: Bumps only on :meth:`recompute` — the one event that moves
        #: every position and invalidates everything.
        self._global_epoch = 0
        #: switch id -> version of the last change that touched it.
        self._generations: Dict[int, int] = {}
        #: Ascending ``(version, touched_or_None)`` history; ``None``
        #: marks a global event.
        self._changelog: List[tuple] = []
        #: Optional southbound RecordingChannel observing every
        #: rule-install message (control-traffic accounting).
        self.southbound_channel = None
        #: Optional lossy transport (a :class:`~repro.controlplane.
        #: channel.FaultyChannel`); when attached, deltas are applied
        #: transactionally through it with acks and retries.
        self.transport = None
        self._applier: Optional[TransactionalApplier] = None
        #: switch id -> generation of the delta it failed to ack (the
        #: pending queue; drained by :meth:`reconcile`).
        self._pending_deltas: Dict[int, int] = {}
        #: switch id -> generation of the last fully-acked delta.
        self._ack_generations: Dict[int, int] = {}
        #: Outcome of the last transactional apply, for introspection.
        self.last_apply_report = None
        self._routing_index: Optional[RoutingIndex] = None
        #: Full index (re)builds — the churn experiment asserts joins
        #: leave this flat.
        self._index_builds = 0

    # ------------------------------------------------------------------
    # main pipeline
    # ------------------------------------------------------------------
    def attach_transport(self, channel,
                         policy: Optional[RetryPolicy] = None) -> None:
        """Route all southbound traffic through a (possibly lossy)
        control channel.

        ``channel`` is a :class:`~repro.controlplane.channel.
        FaultyChannel` (or anything with its ``ship``/``is_reachable``
        surface).  From here on every delta is applied by a
        :class:`~repro.controlplane.apply.TransactionalApplier`:
        per-switch transactions with acks, bounded jittered retries,
        and a pending queue for switches that fail to converge —
        drained by :meth:`reconcile`.
        """
        self.transport = channel
        self._applier = TransactionalApplier(
            channel, policy=policy, seed=self.config.seed + 3)

    def dt_participants(self) -> List[int]:
        """Switches that host at least one edge server (DT members)."""
        return [node for node in self.topology.nodes()
                if self.server_map.get(node)]

    def recompute(self, positions: Optional[Dict[int, Point]] = None
                  ) -> None:
        """Run the full control-plane pipeline and install all rules.

        Parameters
        ----------
        positions:
            Optional precomputed virtual positions (e.g. restored from a
            snapshot).  When given, the embedding and CVT stages are
            skipped and the DT/rules are built over these positions;
            every topology switch must be covered.
        """
        registry = default_registry()
        registry.counter("controlplane.recomputes").inc()
        participants = self.dt_participants()
        if not participants:
            raise ControlPlaneError(
                "at least one switch must host an edge server"
            )
        if positions is not None:
            missing = [n for n in self.topology.nodes()
                       if n not in positions]
            if missing:
                raise ControlPlaneError(
                    f"precomputed positions missing switches: {missing}"
                )
            positions = {n: (float(p[0]), float(p[1]))
                         for n, p in positions.items()}
        else:
            positions = self._compute_positions(participants)
        self.positions = positions
        with registry.timer("controlplane.phase.dt_build"):
            self._build_dt(participants)
        self._install_rules(global_event=True)

    def _compute_positions(
        self, participants: List[int]
    ) -> Dict[int, Point]:
        registry = default_registry()
        order = self.topology.nodes()
        with registry.timer("controlplane.phase.m_position"):
            matrix, order = all_pairs_hop_matrix(self.topology,
                                                 order=order)
            if self.config.embedding == "classical":
                embedded = m_position(matrix, margin=self.config.margin)
            elif self.config.embedding == "smacof":
                from ..embedding import smacof_position

                embedded = smacof_position(matrix,
                                           margin=self.config.margin)
            else:
                raise ControlPlaneError(
                    f"unknown embedding back end "
                    f"{self.config.embedding!r}; expected 'classical' or "
                    f"'smacof'"
                )
        positions = dict(zip(order, embedded))
        participant_sites = [positions[node] for node in participants]
        if self.config.cvt_iterations > 0:
            with registry.timer("controlplane.phase.c_regulation"):
                result = c_regulation(
                    participant_sites,
                    iterations=self.config.cvt_iterations,
                    samples_per_iteration=(
                        self.config.samples_per_iteration),
                    relaxation=self.config.relaxation,
                    rng=np.random.default_rng(self.config.seed + 1),
                    sampler=self.config.density_sampler,
                )
            participant_sites = result.sites
        participant_sites = deduplicate_points(participant_sites)
        for node, site in zip(participants, participant_sites):
            positions[node] = site
        return positions

    def _build_dt(self, participants: List[int]) -> None:
        sites = [self.positions[node] for node in participants]
        self._dt = DelaunayTriangulation(
            sites, rng=np.random.default_rng(self.config.seed + 2)
        )
        # DelaunayTriangulation assigns vertex id == input index.
        self._dt_vertex_to_switch = dict(enumerate(participants))
        self._dt_switch_to_vertex = {
            switch: vertex
            for vertex, switch in self._dt_vertex_to_switch.items()
        }

    def dt_adjacency(self) -> Dict[int, Set[int]]:
        """DT neighbor sets in switch-id space."""
        if self._dt is None:
            raise ControlPlaneError("control plane has not been computed")
        adjacency: Dict[int, Set[int]] = {}
        for vertex, nbrs in self._dt.neighbor_map().items():
            switch = self._dt_vertex_to_switch[vertex]
            adjacency[switch] = {
                self._dt_vertex_to_switch[v] for v in nbrs
            }
        return adjacency

    def _build_switches(self) -> None:
        """Sync the switch-object population to the topology.

        Existing switches are reused untouched — their state (including
        ``num_servers``, driven by ``SetServerCount`` messages) is
        converged by the plan/diff/apply pipeline, not reset here.
        """
        existing = self.switches
        self.switches = {}
        for node in self.topology.nodes():
            switch = existing.get(node)
            if switch is None:
                switch = GredSwitch(
                    switch_id=node,
                    position=self.positions[node],
                    num_servers=len(self.server_map.get(node, [])),
                )
            self.switches[node] = switch

    def _install_rules(self, *, global_event: bool) -> RuleDelta:
        """Converge the data plane to the desired plan.

        The plan/diff/apply pipeline: compile the desired per-switch
        state (pure), diff it against what is actually installed, and
        ship only the difference southbound.  ``global_event`` marks a
        full :meth:`recompute` — every position may have moved, so the
        global epoch advances and every scoped cache (routing index,
        compiled fast path, route caches) rebuilds.  Scoped events
        (joins, leaves, link changes, failure absorption) bump only
        the version and the generations of the touched switches; the
        routing index is updated in place.
        """
        registry = default_registry()
        if global_event:
            self._global_epoch += 1
            self._routing_index = None
        self._build_switches()
        desired = self._desired_plan()
        removed = (frozenset(self._plan.plans) - frozenset(desired.plans)
                   if self._plan is not None else frozenset())
        delta = diff_plans(snapshot_plan(self.switches), desired)
        with registry.timer("controlplane.phase.rule_install"):
            self._apply(delta, generation=self._version + 1)
        for sid in removed:
            self._pending_deltas.pop(sid, None)
            self._ack_generations.pop(sid, None)
        self._plan = desired
        self._version += 1
        if global_event:
            self._generations = {
                sid: self._version for sid in self.switches}
            self._log_change(None)
        else:
            for sid in delta.touched:
                self._generations[sid] = self._version
            for sid in removed:
                self._generations.pop(sid, None)
            self._log_change(frozenset(delta.touched | removed))
            self._sync_routing_index()
        if registry.enabled:
            total = sum(s.table.num_entries()
                        for s in self.switches.values())
            if global_event:
                registry.counter("controlplane.rules_installed").inc(
                    total)
            else:
                registry.counter("controlplane.rules_installed").inc(
                    len(delta.messages))
            registry.gauge("controlplane.table_entries").set(total)
            registry.gauge("controlplane.switches").set(
                len(self.switches))
        return delta

    def _desired_plan(self) -> RulePlan:
        """Compile the desired plan from the current control view."""
        return compile_plan(
            self.topology, self.positions, self.dt_adjacency(),
            server_counts={node: len(self.server_map.get(node, []))
                           for node in self.topology.nodes()},
        )

    def _apply(self, delta: RuleDelta, *, generation: int) -> None:
        """Ship one delta southbound.

        Without a transport this is the perfect synchronous
        ``apply_delta``.  With one attached, the delta is applied as
        per-switch transactions: fully-acked switches advance their ack
        generation, unconverged ones land on the pending queue (their
        data plane keeps serving stale rules until :meth:`reconcile`
        or a later delta converges them).
        """
        if self._applier is None:
            apply_delta(self.switches, delta,
                        channel=self.southbound_channel)
            return
        self.transport.observer = self.southbound_channel
        report = self._applier.apply(self.switches, delta,
                                     generation=generation)
        self.last_apply_report = report
        for sid in report.acked:
            self._ack_generations[sid] = generation
            self._pending_deltas.pop(sid, None)
        for sid in report.pending:
            self._pending_deltas[sid] = generation
        for sid in report.departed:
            self._pending_deltas.pop(sid, None)
            self._ack_generations.pop(sid, None)

    def _log_change(self, touched: Optional[frozenset]) -> None:
        self._changelog.append((self._version, touched))
        if len(self._changelog) > _CHANGELOG_CAP:
            del self._changelog[:len(self._changelog) - _CHANGELOG_CAP]

    def _sync_routing_index(self) -> None:
        """Bring the (lazily built) routing index's membership in line
        with the current DT participants, in place.

        Scoped events never move surviving positions, so insert/remove
        of the changed participants is sufficient; a missing index
        stays missing until queried.
        """
        index = self._routing_index
        if index is None:
            return
        current = set(index.nodes())
        desired = set(self.dt_participants())
        for node in sorted(current - desired):
            index.remove(node)
        for node in sorted(desired - current):
            index.insert(node, self.positions[node])

    # ------------------------------------------------------------------
    # anti-entropy reconciliation
    # ------------------------------------------------------------------
    def _divergent_switches(self, want: Dict[int, str]) -> Set[int]:
        """Switches whose installed digest differs from the desired
        one (either direction: wrong state, or state with no desired
        counterpart)."""
        have = plan_digests(snapshot_plan(self.switches))
        return {sid for sid in set(want) | set(have)
                if have.get(sid) != want.get(sid)}

    def reconcile(self, max_sweeps: int = 8) -> ReconcileReport:
        """Digest-based anti-entropy: converge live switches to the
        desired plan.

        Each sweep compares per-switch SHA-256 digests of the desired
        plan against a fresh snapshot of the live switches and re-ships
        (via :func:`~repro.controlplane.diff.diff_plans` restricted to
        the divergent set) exactly the switches that differ — the
        repair path for faults that survive ack/retry, e.g. a reordered
        remove/install pair where every message was acked but the final
        state is wrong, or a delayed stale message clobbering newer
        rules.  Sweeps repeat until one finds no reachable divergence
        or ``max_sweeps`` runs out (a resync round over a lossy
        transport can itself be reordered).  Unreachable switches are
        skipped — their pending deltas stay queued and drain on a later
        run after recovery.
        """
        from contextlib import nullcontext

        from ..obs.spans import default_recorder

        registry = default_registry()
        recorder = default_recorder()
        span = (recorder.span("controlplane.reconcile",
                              max_sweeps=max_sweeps)
                if recorder is not None else nullcontext())
        report = ReconcileReport()
        with span:
            # Reconcile against the freshly compiled desired plan, not
            # the remembered one — the remembered plan is only what the
            # controller *believes* it installed.
            desired = self._desired_plan()
            want = plan_digests(desired)
            unreachable = (set(self.transport.unreachable_switches)
                           if self.transport is not None else set())
            divergent = self._divergent_switches(want)
            report.divergent_initial = len(divergent)
            sweeps = 0
            while divergent - unreachable and sweeps < max_sweeps:
                reachable = frozenset(divergent - unreachable)
                delta = diff_plans(snapshot_plan(self.switches),
                                   desired, only=reachable)
                if self._applier is not None:
                    self.transport.observer = self.southbound_channel
                    apply_report = self._applier.apply(
                        self.switches, delta, generation=self._version)
                    report.retries += apply_report.retries
                    report.messages += apply_report.transmissions
                else:
                    report.messages += apply_delta(
                        self.switches, delta,
                        channel=self.southbound_channel)
                report.resynced += len(reachable)
                sweeps += 1
                if registry.enabled:
                    registry.counter(
                        "controlplane.southbound.resyncs").inc(
                            len(reachable))
                divergent = self._divergent_switches(want)
            report.sweeps = sweeps
            report.unreachable = frozenset(unreachable)
            report.divergent_final = frozenset(divergent)
            # Drain the pending queue: a reachable switch that now
            # matches its desired digest has caught up with every delta
            # it ever missed.
            for sid in sorted(self._pending_deltas):
                if sid not in self.switches:
                    self._pending_deltas.pop(sid)
                    continue
                if sid not in divergent and sid not in unreachable:
                    self._pending_deltas.pop(sid)
                    self._ack_generations[sid] = self._version
                    report.drained += 1
        if registry.enabled:
            registry.histogram(
                "controlplane.southbound.divergence_window",
                help="Anti-entropy sweeps needed to reconverge",
                buckets=(0, 1, 2, 3, 4, 6, 8, 12),
            ).observe(sweeps)
            registry.event("reconcile",
                           sweeps=sweeps,
                           divergent_initial=report.divergent_initial,
                           resynced=report.resynced,
                           drained=report.drained,
                           converged=report.converged)
        return report

    @property
    def pending_deltas(self) -> Dict[int, int]:
        """Switches with an unacked delta: id -> the generation whose
        transaction failed to converge (copy)."""
        return dict(self._pending_deltas)

    @property
    def ack_generations(self) -> Dict[int, int]:
        """Per-switch generation of the last fully-acked transactional
        delta (copy; empty until a transport is attached)."""
        return dict(self._ack_generations)

    # ------------------------------------------------------------------
    # range extension (paper Section V-B)
    # ------------------------------------------------------------------
    def extend_range(self, switch_id: int, serial: int) -> ExtensionEntry:
        """Offload an overloaded server to a neighboring switch.

        Picks, among the physical neighbors' servers, the one with the
        most remaining capacity (unbounded servers count as infinite,
        broken by lowest current load), installs the rewrite entry at the
        overloaded switch, and returns it.

        Raises
        ------
        ControlPlaneError
            If the switch/serial is unknown, an extension is already
            active for that server, or no neighbor hosts any server.
        """
        servers = self.server_map.get(switch_id)
        if servers is None or serial >= len(servers):
            raise ControlPlaneError(
                f"unknown server ({switch_id}, {serial})"
            )
        table = self.switches[switch_id].table
        if table.extension_for(serial) is not None:
            raise ControlPlaneError(
                f"server ({switch_id}, {serial}) already has an active "
                f"range extension"
            )
        candidate = self._pick_takeover_server(switch_id)
        if candidate is None:
            raise ControlPlaneError(
                f"no physical neighbor of switch {switch_id} hosts a "
                f"server to take over"
            )
        entry = ExtensionEntry(
            local_serial=serial,
            target_switch=candidate.switch,
            target_serial=candidate.serial,
        )
        table.install_extension(entry)
        registry = default_registry()
        registry.counter("controlplane.extensions_installed").inc()
        registry.counter("controlplane.rules_rewritten").inc()
        registry.event("range_extension_installed", switch=switch_id,
                       serial=serial, target_switch=candidate.switch,
                       target_serial=candidate.serial)
        return entry

    def _pick_takeover_server(self,
                              switch_id: int) -> Optional[EdgeServer]:
        best: Optional[EdgeServer] = None
        best_key = None
        for neighbor in sorted(self.topology.neighbors(switch_id)):
            for server in self.server_map.get(neighbor, []):
                if server.capacity is None:
                    remaining = float("inf")
                else:
                    remaining = server.capacity - server.load
                    if remaining <= 0:
                        continue
                key = (-remaining, server.load, server.switch, server.serial)
                if best_key is None or key < best_key:
                    best_key = key
                    best = server
        return best

    def retract_range(self, switch_id: int, serial: int) -> None:
        """Remove an active range extension (after its data migrated
        back, paper Section V-B end)."""
        table = self.switches[switch_id].table
        if table.extension_for(serial) is None:
            raise ControlPlaneError(
                f"server ({switch_id}, {serial}) has no active extension"
            )
        table.remove_extension(serial)
        registry = default_registry()
        registry.counter("controlplane.extensions_retracted").inc()
        registry.event("range_extension_retracted", switch=switch_id,
                       serial=serial)

    # ------------------------------------------------------------------
    # network dynamics (paper Section VI)
    # ------------------------------------------------------------------
    def add_switch(self, switch_id: int, links: List[int],
                   servers: List[EdgeServer]) -> None:
        """A new switch joins the network.

        The new switch's virtual position is computed *locally* — the
        existing switches keep their positions (the paper: a new node
        "only affects its neighbors") — by minimizing the squared error
        between embedded and network distances against all existing
        switches, then the DT is extended incrementally and rules are
        recompiled.
        """
        if self.topology.has_node(switch_id):
            raise ControlPlaneError(f"switch {switch_id} already exists")
        if not links:
            raise ControlPlaneError("a joining switch needs at least one "
                                    "physical link")
        for peer in links:
            if not self.topology.has_node(peer):
                raise ControlPlaneError(f"unknown link peer {peer}")
        self.topology.add_node(switch_id)
        for peer in links:
            self.topology.add_edge(switch_id, peer)
        self.server_map[switch_id] = list(servers)
        position = self._solve_join_position(switch_id)
        position = deduplicate_points(
            [self.positions[n] for n in self.topology.nodes()
             if n != switch_id] + [position]
        )[-1]
        self.positions[switch_id] = position
        if servers:
            vertex = self._dt.insert_point(position)
            self._dt_vertex_to_switch[vertex] = switch_id
            self._dt_switch_to_vertex[switch_id] = vertex
        self._install_rules(global_event=False)
        registry = default_registry()
        registry.counter("controlplane.switch_joins").inc()
        registry.event("switch_join", switch=switch_id,
                       links=len(links), servers=len(servers))

    def _solve_join_position(self, switch_id: int) -> Point:
        """Least-squares position for a joining switch against the
        existing embedding."""
        from ..graph import bfs_distances

        anchors = []
        hop = bfs_distances(self.topology, switch_id)
        for node, d in hop.items():
            if node != switch_id and node in self.positions and d > 0:
                anchors.append((self.positions[node], float(d)))
        if not anchors:
            return (0.5, 0.5)
        scale = self._embedding_scale()
        neighbor_positions = [
            self.positions[n] for n in self.topology.neighbors(switch_id)
            if n in self.positions
        ]
        if neighbor_positions:
            x0 = (
                sum(p[0] for p in neighbor_positions)
                / len(neighbor_positions),
                sum(p[1] for p in neighbor_positions)
                / len(neighbor_positions),
            )
        else:
            x0 = (0.5, 0.5)
        try:
            from scipy.optimize import least_squares

            def residuals(q):
                return [
                    euclidean((q[0], q[1]), pos) - scale * d
                    for pos, d in anchors
                ]

            solution = least_squares(residuals, x0=list(x0))
            return (float(solution.x[0]), float(solution.x[1]))
        except Exception:  # pragma: no cover - scipy should be present
            return x0

    def _embedding_scale(self) -> float:
        """Least-squares factor mapping hop distances to embedded
        distances over a sample of existing pairs."""
        nodes = [n for n in self.topology.nodes() if n in self.positions]
        if len(nodes) < 2:
            return 0.1
        from ..graph import bfs_distances

        num = 0.0
        den = 0.0
        sample = nodes[: min(len(nodes), 20)]
        for node in sample:
            hops = bfs_distances(self.topology, node)
            for other in nodes:
                d = hops.get(other)
                if other == node or not d:
                    continue
                e = euclidean(self.positions[node], self.positions[other])
                num += e * d
                den += d * d
        if den == 0.0:
            return 0.1
        return num / den

    def add_link(self, u: int, v: int) -> None:
        """A new physical link comes up between two known switches.

        Positions and the DT are unchanged (the virtual space reflects
        distances only approximately and the paper recomputes the
        embedding on its own schedule); the rule compiler re-derives
        ports, greedy candidates and relay paths so the new link is
        used immediately.
        """
        if not self.topology.has_node(u) or not self.topology.has_node(v):
            raise ControlPlaneError(f"unknown link endpoint in ({u}, {v})")
        if self.topology.has_edge(u, v):
            raise ControlPlaneError(f"link ({u}, {v}) already exists")
        self.topology.add_edge(u, v)
        self._install_rules(global_event=False)
        registry = default_registry()
        registry.counter("controlplane.links_added").inc()
        registry.event("link_up", u=u, v=v)

    def remove_link(self, u: int, v: int) -> None:
        """A physical link fails.

        The topology must stay connected (a partition cannot be routed
        around).  Relay paths that crossed the failed link are
        recompiled over the surviving topology; positions and the DT
        are kept.
        """
        if not self.topology.has_edge(u, v):
            raise ControlPlaneError(f"no link ({u}, {v})")
        candidate = self.topology.copy()
        candidate.remove_edge(u, v)
        if not is_connected(candidate):
            raise ControlPlaneError(
                f"removing link ({u}, {v}) would partition the network"
            )
        self.topology = candidate
        self._install_rules(global_event=False)
        registry = default_registry()
        registry.counter("controlplane.links_removed").inc()
        registry.event("link_down", level=EventLevel.WARNING, u=u, v=v)

    def remove_switch(self, switch_id: int) -> None:
        """A switch leaves (or fails).

        The remaining positions are kept; the DT is rebuilt over the
        remaining participants (vertex deletion in a DT is rare enough at
        control-plane scale that a rebuild is the simplest correct
        response) and the rules are recompiled.

        Raises
        ------
        ControlPlaneError
            If removing the switch would disconnect the topology or
            remove the last DT participant.
        """
        if not self.topology.has_node(switch_id):
            raise ControlPlaneError(f"unknown switch {switch_id}")
        candidate = self.topology.copy()
        candidate.remove_node(switch_id)
        if candidate.num_nodes() and not is_connected(candidate):
            raise ControlPlaneError(
                f"removing switch {switch_id} would disconnect the network"
            )
        self.topology = candidate
        self.server_map.pop(switch_id, None)
        self.positions.pop(switch_id, None)
        self.switches.pop(switch_id, None)
        participants = self.dt_participants()
        if not participants:
            raise ControlPlaneError(
                "cannot remove the last server-hosting switch"
            )
        self._build_dt(participants)
        self._install_rules(global_event=False)
        registry = default_registry()
        registry.counter("controlplane.switch_leaves").inc()
        registry.event("switch_leave", level=EventLevel.WARNING,
                       switch=switch_id)

    def absorb_failures(self, dead_switches=(), dead_links=()
                        ) -> List[int]:
        """Repair the control plane after *unannounced* failures.

        Unlike :meth:`remove_switch` (a graceful leave that refuses to
        partition the network), a crash has already happened — the
        controller's job is to keep serving with whatever survives.
        Dead switches and failed links are pruned in one pass; if that
        partitions the topology, the component with the most DT
        participants (ties: most switches, then lowest id) stays under
        management and the rest is stranded — returned to the caller
        and dropped from the controller's view.  Surviving positions
        are kept (the DT is repaired incrementally over the surviving
        participants), extensions pointing at dead targets are
        withdrawn, and all rules are reinstalled.

        Raises
        ------
        ControlPlaneError
            If no switch, or no server-hosting switch, survives.  The
            controller state is untouched in that case.
        """
        dead = sorted({s for s in dead_switches
                       if self.topology.has_node(s)})
        candidate = self.topology.copy()
        for switch_id in dead:
            candidate.remove_node(switch_id)
        for u, v in dead_links:
            if candidate.has_edge(u, v):
                candidate.remove_edge(u, v)
        if candidate.num_nodes() == 0:
            raise ControlPlaneError(
                "cannot absorb failures: every switch is dead")
        components = connected_components(candidate)

        def component_key(component):
            participants = sum(1 for n in component
                               if self.server_map.get(n))
            return (participants, len(component), -min(component))

        keep = max(components, key=component_key)
        if not any(self.server_map.get(n) for n in keep):
            raise ControlPlaneError(
                "cannot absorb failures: no server-hosting switch "
                "survives"
            )
        stranded = sorted(n for component in components
                          if component is not keep for n in component)
        for switch_id in stranded:
            candidate.remove_node(switch_id)
        self.topology = candidate
        for switch_id in dead + stranded:
            self.server_map.pop(switch_id, None)
            self.positions.pop(switch_id, None)
            self.switches.pop(switch_id, None)
        self._drop_dead_extensions()
        participants = self.dt_participants()
        self._build_dt(participants)
        self._install_rules(global_event=False)
        registry = default_registry()
        if registry.enabled:
            registry.counter("controlplane.failures_absorbed").inc()
            if stranded:
                registry.counter("controlplane.switches_stranded").inc(
                    len(stranded))
        registry.event("failures_absorbed", level=EventLevel.WARNING,
                       dead_switches=len(dead),
                       dead_links=len(list(dead_links)),
                       stranded=len(stranded))
        return stranded

    def _drop_dead_extensions(self) -> None:
        """Withdraw range extensions whose takeover server's switch no
        longer exists (its data is unreachable; re-replication is the
        repair path)."""
        for switch in self.switches.values():
            for entry in list(switch.table.extensions()):
                if entry.target_switch not in self.server_map:
                    switch.table.remove_extension(entry.local_serial)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def switch_position(self, switch_id: int) -> Point:
        if switch_id not in self.positions:
            raise ControlPlaneError(f"unknown switch {switch_id}")
        return self.positions[switch_id]

    @property
    def epoch(self) -> int:
        """Monotone counter advanced only by :meth:`recompute` — the
        one event that moves every position.  Globally-scoped caches
        rebuild when it advances; scoped events (joins, leaves, link
        changes, failure absorption) advance :attr:`version` instead."""
        return self._global_epoch

    @property
    def version(self) -> int:
        """Monotone counter advanced on *every* applied change, global
        or scoped.  ``changes_since`` maps a version interval back to
        the set of touched switches for scoped cache invalidation."""
        return self._version

    def generation(self, switch_id: int) -> int:
        """The version of the last change that touched ``switch_id``
        (its rules, its membership, or its server count)."""
        if switch_id not in self._generations:
            raise ControlPlaneError(f"unknown switch {switch_id}")
        return self._generations[switch_id]

    @property
    def generations(self) -> Dict[int, int]:
        """Per-switch generation counters (copy)."""
        return dict(self._generations)

    def changes_since(self, version: int) -> Optional[Set[int]]:
        """Switches touched by every change after ``version``.

        Returns ``None`` when the interval cannot be answered scoped —
        it contains a global event (recompute) or predates the retained
        changelog — meaning the caller must invalidate everything.
        Removed switches are included in the returned set.
        """
        if version >= self._version:
            return set()
        if not self._changelog or self._changelog[0][0] > version + 1:
            return None
        touched: Set[int] = set()
        for entry_version, entry_touched in self._changelog:
            if entry_version <= version:
                continue
            if entry_touched is None:
                return None
            touched |= entry_touched
        return touched

    def routing_index(self) -> RoutingIndex:
        """The grid index over current participant positions (built
        lazily, updated in place on scoped events, rebuilt on
        ``recompute``)."""
        index = self._routing_index
        if index is None:
            index = RoutingIndex(self.dt_participants(), self.positions)
            self._routing_index = index
            self._index_builds += 1
        return index

    @property
    def index_builds(self) -> int:
        """Full routing-index builds so far (scoped events update the
        existing index in place and do not count)."""
        return self._index_builds

    def closest_switch(self, point: Point) -> int:
        """The DT participant whose position is nearest to ``point``
        (ties: lowest x, then y — the paper's rule).

        Served by the epoch-scoped grid index; the exhaustive scan is
        kept as :meth:`closest_switch_bruteforce` (the index's
        correctness oracle in the test suite)."""
        index = self.routing_index()
        if not len(index):
            return None
        return index.closest(point)

    def closest_switch_bruteforce(self, point: Point) -> int:
        """Reference O(participants) scan with the same tie-break."""
        participants = self.dt_participants()
        best = None
        best_key = None
        for node in participants:
            pos = self.positions[node]
            key = (euclidean(pos, point), pos[0], pos[1])
            if best_key is None or key < best_key:
                best_key = key
                best = node
        return best
