"""A lossy southbound control channel.

The paper's controller programs switches over generated Thrift calls
and assumes every install lands.  Real SDN control channels do not
behave that way: messages are dropped, duplicated, reordered inside the
switch agent's receive queue, or delayed long enough to arrive after a
newer reconfiguration.  :class:`FaultyChannel` models exactly those
failure modes, deterministically under a seed, so the plan/diff/apply
pipeline can be exercised against them:

* **drop** — the message never reaches the switch (no ack);
* **dup** — the message is applied twice (rule installs must be
  idempotent for this to be harmless);
* **reorder** — delivery order is permuted within a sliding window,
  which can invert a removals-then-installs pair and leave divergent
  state even though every message was acked;
* **delay** — the message is held over and delivered at the *next*
  transmission, possibly interleaving with a newer generation's
  messages (no ack on the round that sent it).

A switch can also be marked **unreachable**: nothing addressed to it is
delivered or acked until it is marked reachable again — the
transactional applier parks its delta on the pending queue and the data
plane keeps serving on stale rules.

The channel is the unit the reliability stack is built on: the
:class:`~repro.controlplane.apply.TransactionalApplier` retries unacked
messages with jittered exponential backoff, and
:meth:`~repro.controlplane.controller.Controller.reconcile` repairs
whatever ordering faults survive the retries via digest-based
anti-entropy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..dataplane import GredSwitch
from ..obs import default_registry
from .southbound import SouthboundMessage, apply_message


class ControlChannelError(Exception):
    """Raised for invalid channel configuration."""


@dataclass
class ChannelStats:
    """Cumulative delivery accounting of one channel (pure data)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    delayed: int = 0
    unreachable: int = 0
    #: Messages whose target switch left the network while the message
    #: was in flight — acked as no-ops.
    departed_noops: int = 0
    acks: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "delayed": self.delayed,
            "unreachable": self.unreachable,
            "departed_noops": self.departed_noops,
            "acks": self.acks,
        }


class FaultyChannel:
    """Seedable lossy delivery of southbound messages.

    With every fault knob at its default (``drop=dup=delay=0``,
    ``reorder_window=1``) the channel is perfect: every message is
    delivered exactly once, in order, and acked — byte-identical to
    the direct ``apply_message`` loop.

    Parameters
    ----------
    drop, dup, delay:
        Per-message fault probabilities in ``[0, 1]``.
    reorder_window:
        Sliding-window size for delivery permutation; ``1`` preserves
        order.
    seed:
        Seeds the channel's fault generator — two channels with the
        same seed and the same traffic inject identical faults.
    observer:
        Optional :class:`~repro.controlplane.southbound.
        RecordingChannel` observing every *transmission* (including
        retries), the control-traffic accounting surface.
    """

    def __init__(self, *, drop: float = 0.0, dup: float = 0.0,
                 delay: float = 0.0, reorder_window: int = 1,
                 seed: int = 0, observer=None) -> None:
        self.drop = 0.0
        self.dup = 0.0
        self.delay = 0.0
        self.reorder_window = 1
        self.configure(drop=drop, dup=dup, delay=delay,
                       reorder_window=reorder_window)
        self.observer = observer
        self.stats = ChannelStats()
        self._rng = np.random.default_rng(seed)
        self._unreachable: Set[int] = set()
        #: Delayed messages held over for the next transmission.
        self._holdover: List[SouthboundMessage] = []

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def configure(self, *, drop: Optional[float] = None,
                  dup: Optional[float] = None,
                  delay: Optional[float] = None,
                  reorder_window: Optional[int] = None) -> None:
        """Set fault knobs (used by ``control_*`` fault-plan events)."""
        for name, value in (("drop", drop), ("dup", dup),
                            ("delay", delay)):
            if value is None:
                continue
            if not 0.0 <= value <= 1.0:
                raise ControlChannelError(
                    f"{name} probability must be in [0, 1], got {value}")
            setattr(self, name, float(value))
        if reorder_window is not None:
            if int(reorder_window) < 1:
                raise ControlChannelError(
                    f"reorder window must be >= 1, got {reorder_window}")
            self.reorder_window = int(reorder_window)

    @property
    def faultless(self) -> bool:
        """True when every knob is at its perfect-delivery default."""
        return (self.drop == 0.0 and self.dup == 0.0
                and self.delay == 0.0 and self.reorder_window == 1
                and not self._holdover)

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def mark_unreachable(self, switch_id: int) -> None:
        """Sever the control channel to one switch (its data plane
        keeps serving on whatever rules it already has)."""
        self._unreachable.add(switch_id)

    def mark_reachable(self, switch_id: int) -> None:
        """Restore the control channel to one switch."""
        self._unreachable.discard(switch_id)

    def is_reachable(self, switch_id: int) -> bool:
        return switch_id not in self._unreachable

    @property
    def unreachable_switches(self) -> Set[int]:
        return set(self._unreachable)

    @property
    def in_flight(self) -> int:
        """Delayed messages not yet delivered."""
        return len(self._holdover)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def ship(self, switches: Dict[int, GredSwitch],
             messages: Sequence[SouthboundMessage]) -> List[bool]:
        """Transmit ``messages``; returns one ack flag per message.

        Unacked messages were dropped, delayed, or addressed to an
        unreachable switch — the sender must retry them.  A message
        whose target switch no longer exists is acked as a no-op (the
        switch left the network; there is nothing to converge).
        Holdover (delayed) messages from earlier transmissions are
        delivered first, modelling late arrival.
        """
        registry = default_registry()
        acked = [False] * len(messages)
        # (ack index or None, message); None = dup/holdover copies that
        # have no pending ack slot.
        schedule: List[tuple] = [(None, m) for m in self._holdover]
        self._holdover = []
        for i, message in enumerate(messages):
            self.stats.sent += 1
            if self.observer is not None:
                self.observer.send(message)
            if message.switch in self._unreachable:
                self.stats.unreachable += 1
                continue
            if self.drop > 0.0 and self._rng.random() < self.drop:
                self.stats.dropped += 1
                if registry.enabled:
                    registry.counter(
                        "controlplane.southbound.dropped").inc()
                continue
            if self.delay > 0.0 and self._rng.random() < self.delay:
                self.stats.delayed += 1
                self._holdover.append(message)
                continue
            schedule.append((i, message))
            if self.dup > 0.0 and self._rng.random() < self.dup:
                self.stats.duplicated += 1
                schedule.append((None, message))
        if self.reorder_window > 1 and len(schedule) > 1:
            for start in range(0, len(schedule), self.reorder_window):
                chunk = schedule[start:start + self.reorder_window]
                order = self._rng.permutation(len(chunk))
                moved = sum(1 for j, k in enumerate(order) if j != k)
                if moved:
                    self.stats.reordered += moved
                    schedule[start:start + self.reorder_window] = [
                        chunk[k] for k in order]
        for index, message in schedule:
            if message.switch not in switches:
                # Delivered after the switch departed: ack as a no-op.
                if index is not None:
                    acked[index] = True
                    self.stats.departed_noops += 1
                continue
            apply_message(switches, message)
            self.stats.delivered += 1
            if index is not None:
                acked[index] = True
                self.stats.acks += 1
        if registry.enabled:
            delivered_acks = sum(1 for a in acked if a)
            if delivered_acks:
                registry.counter("controlplane.southbound.acks").inc(
                    delivered_acks)
        return acked
