"""Rule compilation: turning the control-plane view (positions + DT +
topology) into per-switch forwarding state.

The compiler produces, for every switch:

* physical-neighbor entries (neighbor -> port, plus the neighbor's
  position when it participates in the DT);
* DT-neighbor positions (the greedy candidates of Algorithm 2);
* virtual-link 4-tuples ``<sour, pred, succ, dest>`` along the physical
  shortest path realizing every multi-hop DT edge.

Relay consistency: relay entries toward a DT switch ``w`` are derived
from a single BFS tree rooted at ``w``, so every relay on any virtual
link toward ``w`` agrees on the successor and the paths cannot loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..dataplane import GredSwitch, VirtualLinkEntry
from ..geometry import Point
from ..graph import Graph


def compile_port_map(topology: Graph) -> Dict[int, Dict[int, int]]:
    """Deterministic port numbering: for each switch, neighbors sorted by
    id get ports 0, 1, 2, ..."""
    ports: Dict[int, Dict[int, int]] = {}
    for node in topology.nodes():
        ports[node] = {
            neighbor: port
            for port, neighbor in enumerate(sorted(topology.neighbors(node)))
        }
    return ports


def bfs_parent_tree(topology: Graph, root: int) -> Dict[int, int]:
    """Parents pointing *toward* ``root`` (root maps to itself).

    Neighbor iteration is sorted so the tree is deterministic.
    """
    parent = {root: root}
    frontier = [root]
    while frontier:
        next_frontier = []
        for u in frontier:
            for v in sorted(topology.neighbors(u)):
                if v not in parent:
                    parent[v] = u
                    next_frontier.append(v)
        frontier = next_frontier
    return parent


def path_toward(parent: Dict[int, int], source: int,
                root: int) -> List[int]:
    """The tree path from ``source`` to ``root`` (both inclusive)."""
    if source not in parent:
        raise ValueError(f"{source} cannot reach {root}")
    path = [source]
    while path[-1] != root:
        path.append(parent[path[-1]])
    return path


def install_all_rules(
    topology: Graph,
    switches: Dict[int, GredSwitch],
    positions: Dict[int, Point],
    dt_adjacency: Dict[int, Set[int]],
) -> None:
    """Install the complete forwarding state into ``switches``.

    Parameters
    ----------
    topology:
        The physical switch graph.
    switches:
        Data-plane objects to configure (must cover all topology nodes).
    positions:
        Virtual positions of every switch.
    dt_adjacency:
        DT neighbor sets over the DT-participating switch ids.
    """
    ports = compile_port_map(topology)
    dt_members = set(dt_adjacency)
    # Reset any previous DT-derived state.
    for switch in switches.values():
        switch.clear_dt_state()
        switch.physical_neighbor_positions.clear()

    for node in topology.nodes():
        switch = switches[node]
        switch.install_position(positions[node])
        for neighbor, port in ports[node].items():
            neighbor_position = (
                positions[neighbor] if neighbor in dt_members else None
            )
            switch.install_physical_neighbor(
                neighbor, port, position=neighbor_position
            )

    # DT neighbor positions.
    for node, nbrs in dt_adjacency.items():
        for other in nbrs:
            switches[node].install_dt_neighbor(other, positions[other])

    # Virtual links for multi-hop DT neighbors, one BFS tree per
    # destination so relay entries are mutually consistent.
    multi_hop_dests = _multi_hop_destinations(topology, dt_adjacency)
    for dest in sorted(multi_hop_dests):
        parent = bfs_parent_tree(topology, dest)
        for sour in sorted(dt_adjacency[dest]):
            if topology.has_edge(sour, dest):
                continue  # single-hop DT neighbor: direct link suffices
            path = path_toward(parent, sour, dest)
            _install_virtual_path(switches, path)


def _multi_hop_destinations(
    topology: Graph, dt_adjacency: Dict[int, Set[int]]
) -> Set[int]:
    """DT switches that are a multi-hop DT neighbor of someone."""
    dests: Set[int] = set()
    for node, nbrs in dt_adjacency.items():
        for other in nbrs:
            if not topology.has_edge(node, other):
                dests.add(other)
    return dests


def _install_virtual_path(switches: Dict[int, GredSwitch],
                          path: List[int]) -> None:
    """Install ``<sour, pred, succ, dest>`` tuples along ``path``."""
    sour, dest = path[0], path[-1]
    for i, node in enumerate(path):
        pred = path[i - 1] if i > 0 else None
        succ = path[i + 1] if i < len(path) - 1 else None
        switches[node].table.install_virtual(
            VirtualLinkEntry(sour=sour, pred=pred, succ=succ, dest=dest)
        )


def average_table_entries(switches: Iterable[GredSwitch]) -> float:
    """Mean forwarding-table size over switches (Fig. 9d metric)."""
    sizes = [s.table.num_entries() for s in switches]
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)


def table_entry_counts(switches: Iterable[GredSwitch]) -> List[int]:
    """Per-switch forwarding-table sizes."""
    return [s.table.num_entries() for s in switches]
