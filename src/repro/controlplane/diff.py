"""The differ of the plan/diff/apply pipeline.

``diff_plans`` compares an installed :class:`~repro.controlplane.plan.
RulePlan` (typically a :func:`~repro.controlplane.plan.snapshot_plan`
of the live switches) against a desired one and emits a
:class:`RuleDelta`: the exact southbound messages that converge the
data plane to the desired plan, nothing more.  An untouched switch
produces zero messages — the property that makes churn cost
neighborhood-sized instead of O(network).

Per switch the messages are ordered removals first (stale ports, DT
candidates, relay tuples), then installs; switches are visited in id
order.  Applying the delta is idempotent: diffing again afterwards
yields an empty delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from .plan import RulePlan, SwitchPlan
from .southbound import (
    InstallDtNeighbor,
    InstallPhysical,
    InstallVirtual,
    RemoveDtNeighbor,
    RemovePhysical,
    RemoveVirtual,
    SetPosition,
    SetServerCount,
    SouthboundMessage,
)


@dataclass(frozen=True)
class RuleDelta:
    """The southbound messages separating two plans.

    ``touched`` names every switch receiving at least one message;
    ``removed`` names switches present in the old plan but absent from
    the new one (they left the network — no messages are addressed to
    them, but every cache keyed on them must drop).
    """

    messages: Tuple[SouthboundMessage, ...]
    touched: FrozenSet[int]
    removed: FrozenSet[int]

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def is_empty(self) -> bool:
        return not self.messages and not self.removed


def diff_plans(old: Optional[RulePlan], new: RulePlan,
               only: Optional[FrozenSet[int]] = None) -> RuleDelta:
    """Messages converging the ``old`` plan's state to ``new``'s.

    ``old`` may be ``None`` (nothing installed): every switch gets a
    full install.  Switches only in ``old`` are reported in
    ``removed``.  ``only`` restricts the diff to a switch subset — the
    anti-entropy sweep re-ships exactly the digest-divergent switches
    and nothing else (``removed`` is filtered the same way).
    """
    old_plans = old.plans if old is not None else {}
    messages: List[SouthboundMessage] = []
    touched: List[int] = []
    for switch_id in sorted(new.plans):
        if only is not None and switch_id not in only:
            continue
        switch_messages = _switch_messages(
            old_plans.get(switch_id), new.plans[switch_id])
        if switch_messages:
            touched.append(switch_id)
            messages.extend(switch_messages)
    removed = frozenset(old_plans) - frozenset(new.plans)
    if only is not None:
        removed = removed & only
    return RuleDelta(messages=tuple(messages),
                     touched=frozenset(touched),
                     removed=frozenset(removed))


def _switch_messages(old: Optional[SwitchPlan],
                     new: SwitchPlan) -> List[SouthboundMessage]:
    """Removals-then-installs converging one switch to its new plan."""
    if old is not None and old == new:
        return []
    sid = new.switch
    old_ports: Dict[int, int] = dict(old.ports) if old else {}
    old_cands = dict(old.candidates) if old else {}
    old_dt = dict(old.dt_neighbors) if old else {}
    old_virtuals = {e.dest: e for e in old.virtuals} if old else {}
    new_ports = dict(new.ports)
    new_cands = dict(new.candidates)
    new_dt = dict(new.dt_neighbors)
    new_virtuals = {e.dest: e for e in new.virtuals}

    messages: List[SouthboundMessage] = []
    # A neighbor that lost its greedy-candidate role (left the DT) but
    # kept its port must be fully removed and reinstalled: an
    # InstallPhysical with position=None would leave the stale
    # candidate position behind.
    demoted = {n for n in old_cands
               if n in new_ports and n not in new_cands}
    for neighbor in sorted(set(old_ports) - set(new_ports) | demoted):
        messages.append(RemovePhysical(switch=sid, neighbor=neighbor))
    for neighbor in sorted(set(old_dt) - set(new_dt)):
        messages.append(RemoveDtNeighbor(switch=sid, neighbor=neighbor))
    for dest in sorted(set(old_virtuals) - set(new_virtuals)):
        messages.append(RemoveVirtual(switch=sid, dest=dest))

    if old is None or old.position != new.position:
        messages.append(SetPosition(switch=sid, position=new.position))
    if new.num_servers is not None and (
            old is None or old.num_servers != new.num_servers):
        messages.append(SetServerCount(switch=sid,
                                       count=new.num_servers))
    for neighbor in sorted(new_ports):
        if (neighbor not in demoted
                and old_ports.get(neighbor) == new_ports[neighbor]
                and old_cands.get(neighbor) == new_cands.get(neighbor)):
            continue
        messages.append(InstallPhysical(
            switch=sid, neighbor=neighbor, port=new_ports[neighbor],
            position=new_cands.get(neighbor)))
    for neighbor in sorted(new_dt):
        if old_dt.get(neighbor) != new_dt[neighbor]:
            messages.append(InstallDtNeighbor(
                switch=sid, neighbor=neighbor,
                position=new_dt[neighbor]))
    for dest in sorted(new_virtuals):
        entry = new_virtuals[dest]
        if old_virtuals.get(dest) != entry:
            messages.append(InstallVirtual(
                switch=sid, sour=entry.sour, pred=entry.pred,
                succ=entry.succ, dest=dest))
    return messages
