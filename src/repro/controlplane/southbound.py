"""The southbound interface: explicit rule-install messages.

The paper's controller programs switches through generated Thrift APIs;
real SDN deployments use OpenFlow/P4Runtime messages.  This module
makes rule distribution explicit: the compiler's decisions are
expressed as message objects which are then applied to switches, and an
optional recording channel observes exactly what the controller pushed
— the basis for counting control-plane traffic.

Message types mirror the switch state surface:

* ``SetPosition`` — the switch's own virtual coordinates;
* ``InstallPhysical`` — a port mapping (optionally with the neighbor's
  position, making it a greedy candidate);
* ``InstallDtNeighbor`` — a DT greedy candidate;
* ``InstallVirtual`` — one ``<sour, pred, succ, dest>`` relay tuple;
* ``InstallExtension`` / ``RemoveExtension`` — range extension
  rewrites;
* ``ClearDtState`` — drop DT-derived state before a reconfiguration.

The delta pipeline (:mod:`repro.controlplane.diff`) additionally needs
targeted *removals* so a reconfiguration can retract exactly the
entries that became stale instead of clearing whole switches:

* ``RemovePhysical`` — drop one port mapping (and its greedy
  candidate, if any);
* ``RemoveDtNeighbor`` — drop one DT greedy candidate;
* ``RemoveVirtual`` — drop the relay tuple toward one destination;
* ``SetServerCount`` — the switch's attached-server count (drives
  ``H(d) mod s`` delivery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..dataplane import ExtensionEntry, GredSwitch, VirtualLinkEntry
from ..geometry import Point


@dataclass(frozen=True)
class SouthboundMessage:
    """Base class: every message targets one switch."""

    switch: int


@dataclass(frozen=True)
class SetPosition(SouthboundMessage):
    position: Point = (0.0, 0.0)


@dataclass(frozen=True)
class ClearDtState(SouthboundMessage):
    pass


@dataclass(frozen=True)
class InstallPhysical(SouthboundMessage):
    neighbor: int = -1
    port: int = -1
    position: Optional[Point] = None


@dataclass(frozen=True)
class InstallDtNeighbor(SouthboundMessage):
    neighbor: int = -1
    position: Point = (0.0, 0.0)


@dataclass(frozen=True)
class InstallVirtual(SouthboundMessage):
    sour: int = -1
    pred: Optional[int] = None
    succ: Optional[int] = None
    dest: int = -1


@dataclass(frozen=True)
class RemovePhysical(SouthboundMessage):
    neighbor: int = -1


@dataclass(frozen=True)
class RemoveDtNeighbor(SouthboundMessage):
    neighbor: int = -1


@dataclass(frozen=True)
class RemoveVirtual(SouthboundMessage):
    dest: int = -1


@dataclass(frozen=True)
class SetServerCount(SouthboundMessage):
    count: int = 0


@dataclass(frozen=True)
class InstallExtension(SouthboundMessage):
    local_serial: int = -1
    target_switch: int = -1
    target_serial: int = -1


@dataclass(frozen=True)
class RemoveExtension(SouthboundMessage):
    local_serial: int = -1


@dataclass(frozen=True)
class Probe(SouthboundMessage):
    """Liveness probe: the controller's heartbeat to one switch.

    Carries no state — a switch that receives it is, by definition,
    reachable.  The failure detector counts probes as control-plane
    traffic through the same :class:`RecordingChannel` used for rule
    installs.
    """


class RecordingChannel:
    """Observes every message the controller pushes."""

    def __init__(self) -> None:
        self.messages: List[SouthboundMessage] = []

    def send(self, message: SouthboundMessage) -> None:
        self.messages.append(message)

    def count(self, message_type=None, *, exclude=()) -> int:
        """Recorded messages, optionally restricted by type.

        ``message_type`` keeps only instances of that type (or tuple of
        types); ``exclude`` drops instances of the given type(s) — e.g.
        ``count(exclude=(Probe,))`` counts rule traffic without the
        failure detector's liveness probes.
        """
        return len(self.filtered(message_type, exclude=exclude))

    def per_switch(self, message_type=None,
                   *, exclude=()) -> Dict[int, int]:
        """Per-switch message counts, with the same filters as
        :meth:`count`."""
        counts: Dict[int, int] = {}
        for message in self.filtered(message_type, exclude=exclude):
            counts[message.switch] = counts.get(message.switch, 0) + 1
        return counts

    def filtered(self, message_type=None,
                 *, exclude=()) -> List[SouthboundMessage]:
        """The recorded messages matching the type filters, in order."""
        messages = list(self.messages)
        if message_type is not None:
            messages = [m for m in messages
                        if isinstance(m, message_type)]
        if exclude:
            excluded = (exclude if isinstance(exclude, tuple)
                        else tuple(exclude))
            messages = [m for m in messages
                        if not isinstance(m, excluded)]
        return messages

    def clear(self) -> None:
        self.messages.clear()


def apply_message(switches: Dict[int, GredSwitch],
                  message: SouthboundMessage) -> None:
    """Apply one message to the data plane.

    Raises
    ------
    repro.core.GredError
        If the message targets a switch absent from ``switches`` —
        e.g. a message delivered after ``remove_switch`` retired its
        target.  Reliable senders (the transactional applier, the
        faulty channel) treat departed targets as acked no-ops instead
        of calling this.
    """
    switch = switches.get(message.switch)
    if switch is None:
        from ..core import GredError

        raise GredError(
            f"southbound {type(message).__name__} targets unknown "
            f"switch {message.switch} (departed or never joined); "
            f"message: {message!r}"
        )
    if isinstance(message, SetPosition):
        switch.install_position(message.position)
    elif isinstance(message, ClearDtState):
        switch.clear_dt_state()
        switch.physical_neighbor_positions.clear()
    elif isinstance(message, InstallPhysical):
        switch.install_physical_neighbor(
            message.neighbor, message.port, position=message.position)
    elif isinstance(message, InstallDtNeighbor):
        switch.install_dt_neighbor(message.neighbor, message.position)
    elif isinstance(message, InstallVirtual):
        switch.table.install_virtual(VirtualLinkEntry(
            sour=message.sour, pred=message.pred, succ=message.succ,
            dest=message.dest))
    elif isinstance(message, RemovePhysical):
        switch.remove_physical_neighbor(message.neighbor)
    elif isinstance(message, RemoveDtNeighbor):
        switch.remove_dt_neighbor(message.neighbor)
    elif isinstance(message, RemoveVirtual):
        switch.table.remove_virtual(message.dest)
    elif isinstance(message, SetServerCount):
        switch.num_servers = message.count
    elif isinstance(message, InstallExtension):
        switch.table.install_extension(ExtensionEntry(
            local_serial=message.local_serial,
            target_switch=message.target_switch,
            target_serial=message.target_serial))
    elif isinstance(message, RemoveExtension):
        switch.table.remove_extension(message.local_serial)
    elif isinstance(message, Probe):
        pass  # liveness only: reaching the switch is the whole effect
    else:
        raise TypeError(f"unknown southbound message {message!r}")


def compile_messages(topology, positions, dt_adjacency
                     ) -> List[SouthboundMessage]:
    """Compile the full rule set as an ordered message sequence.

    Produces exactly the state :func:`repro.controlplane.rules.
    install_all_rules` installs, but as explicit messages.
    """
    from .rules import (
        _multi_hop_destinations,
        bfs_parent_tree,
        compile_port_map,
        path_toward,
    )

    messages: List[SouthboundMessage] = []
    ports = compile_port_map(topology)
    dt_members = set(dt_adjacency)
    for node in topology.nodes():
        messages.append(ClearDtState(switch=node))
        messages.append(SetPosition(switch=node,
                                    position=positions[node]))
        for neighbor, port in ports[node].items():
            messages.append(InstallPhysical(
                switch=node, neighbor=neighbor, port=port,
                position=(positions[neighbor]
                          if neighbor in dt_members else None),
            ))
    for node, nbrs in dt_adjacency.items():
        for other in nbrs:
            messages.append(InstallDtNeighbor(
                switch=node, neighbor=other,
                position=positions[other]))
    for dest in sorted(_multi_hop_destinations(topology, dt_adjacency)):
        parent = bfs_parent_tree(topology, dest)
        for sour in sorted(dt_adjacency[dest]):
            if topology.has_edge(sour, dest):
                continue
            path = path_toward(parent, sour, dest)
            for i, node in enumerate(path):
                messages.append(InstallVirtual(
                    switch=node,
                    sour=sour,
                    pred=path[i - 1] if i > 0 else None,
                    succ=path[i + 1] if i < len(path) - 1 else None,
                    dest=dest,
                ))
    return messages


def install_via_messages(topology, switches, positions, dt_adjacency,
                         channel: Optional[RecordingChannel] = None
                         ) -> int:
    """Compile and apply the full rule set message by message.

    Returns the number of messages sent.  Behaviorally equivalent to
    :func:`repro.controlplane.rules.install_all_rules` (covered by the
    equivalence test).
    """
    messages = compile_messages(topology, positions, dt_adjacency)
    for message in messages:
        if channel is not None:
            channel.send(message)
        apply_message(switches, message)
    return len(messages)
