"""Region map: shard boundaries and gateway links of a federation.

A :class:`RegionMap` validates a ``switch id -> region id`` assignment
against the global topology and derives everything the federated
control plane needs:

* the per-region member sets and induced sub-topologies (intra-region
  links only — each shard controller sees exactly its own region);
* the cross-region physical links and, per region pair, one
  *designated* gateway link (deterministic lowest ``(u, v)``) whose
  endpoints are the regions' gateway switches;
* the region adjacency graph (one node per region, one edge per pair
  with at least one physical cross link), which must be connected for
  the federation to reach every region.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..graph import Graph
from ..graph.algorithms import is_connected

__all__ = ["RegionMap", "RegionError"]


class RegionError(ValueError):
    """An assignment that cannot form a valid federation."""


class RegionMap:
    """Validated shard boundaries over a global topology.

    Parameters
    ----------
    topology:
        The global switch graph (connected, cross-region links
        included).
    assignment:
        ``switch id -> region id`` covering every switch.
    """

    def __init__(self, topology: Graph,
                 assignment: Dict[int, int]) -> None:
        nodes = topology.nodes()
        missing = [n for n in nodes if n not in assignment]
        if missing:
            raise RegionError(
                f"{len(missing)} switches lack a region assignment "
                f"(e.g. {sorted(missing)[:3]})"
            )
        extra = [n for n in assignment if not topology.has_node(n)]
        if extra:
            raise RegionError(
                f"assignment names unknown switches {sorted(extra)[:3]}"
            )
        self._assignment: Dict[int, int] = {
            n: int(assignment[n]) for n in nodes
        }
        regions: Dict[int, List[int]] = {}
        for node in sorted(self._assignment):
            regions.setdefault(self._assignment[node], []).append(node)
        self._regions = {rid: regions[rid] for rid in sorted(regions)}
        # Induced per-region sub-topologies and the cross links.
        self._subtopologies: Dict[int, Graph] = {}
        for rid, members in self._regions.items():
            sub = Graph()
            for n in members:
                sub.add_node(n)
            self._subtopologies[rid] = sub
        self._cross_links: List[Tuple[int, int, float]] = []
        for u, v, w in topology.edges():
            ru, rv = self._assignment[u], self._assignment[v]
            if ru == rv:
                self._subtopologies[ru].add_edge(u, v, w)
            else:
                a, b = (u, v) if ru < rv else (v, u)
                self._cross_links.append((a, b, w))
        self._cross_links.sort(key=lambda e: (e[0], e[1]))
        for rid, sub in self._subtopologies.items():
            if sub.num_nodes() and not is_connected(sub):
                raise RegionError(
                    f"region {rid} is not internally connected — every "
                    f"region must be reachable without leaving it"
                )
        # Designated gateway link per region pair: lowest (u, v) with u
        # in the lower-numbered region.
        self._gateway_link: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for u, v, _ in self._cross_links:
            key = (self._assignment[u], self._assignment[v])
            if key not in self._gateway_link:
                self._gateway_link[key] = (u, v)
        self._region_graph = Graph()
        for rid in self._regions:
            self._region_graph.add_node(rid)
        for a, b in self._gateway_link:
            self._region_graph.add_edge(a, b)
        if len(self._regions) > 1 and not is_connected(self._region_graph):
            raise RegionError(
                "the region adjacency graph is disconnected — some "
                "regions have no gateway link path between them"
            )

    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self._regions)

    @property
    def region_ids(self) -> List[int]:
        return list(self._regions)

    @property
    def assignment(self) -> Dict[int, int]:
        """``switch id -> region id`` (copy)."""
        return dict(self._assignment)

    @property
    def regions(self) -> Dict[int, List[int]]:
        """``region id -> sorted member switches`` (copies)."""
        return {rid: list(m) for rid, m in self._regions.items()}

    @property
    def cross_links(self) -> List[Tuple[int, int, float]]:
        """Every physical cross-region link (sorted, normalized so the
        first endpoint is in the lower-numbered region)."""
        return list(self._cross_links)

    @property
    def region_graph(self) -> Graph:
        """Region adjacency graph (one edge per designated gateway)."""
        return self._region_graph

    def region_of(self, switch: int) -> int:
        try:
            return self._assignment[switch]
        except KeyError:
            raise RegionError(f"unknown switch {switch}") from None

    def members(self, region: int) -> List[int]:
        try:
            return list(self._regions[region])
        except KeyError:
            raise RegionError(f"unknown region {region}") from None

    def subtopology(self, region: int) -> Graph:
        """The induced intra-region topology (the shard's graph)."""
        if region not in self._subtopologies:
            raise RegionError(f"unknown region {region}")
        return self._subtopologies[region]

    def gateway(self, src_region: int, dst_region: int
                ) -> Tuple[int, int]:
        """The designated gateway link crossing from ``src_region``
        into ``dst_region``: ``(egress switch in src, ingress switch
        in dst)``."""
        key = (min(src_region, dst_region), max(src_region, dst_region))
        link = self._gateway_link.get(key)
        if link is None:
            raise RegionError(
                f"regions {src_region} and {dst_region} share no "
                f"gateway link"
            )
        u, v = link
        return (u, v) if src_region < dst_region else (v, u)

    def gateways(self, region: int) -> List[int]:
        """This region's designated gateway switches (sorted)."""
        out = set()
        for (a, b), (u, v) in self._gateway_link.items():
            if a == region:
                out.add(u)
            if b == region:
                out.add(v)
        return sorted(out)

    # ------------------------------------------------------------------
    def overlay_path(self, src_region: int, dst_region: int,
                     avoid: FrozenSet[int] = frozenset()
                     ) -> Optional[List[int]]:
        """Shortest region-level path (BFS, lowest-id tie-break),
        skipping transit through regions in ``avoid`` (source and
        destination are never skipped).  ``None`` when unreachable."""
        if src_region == dst_region:
            return [src_region]
        parent: Dict[int, int] = {src_region: src_region}
        queue = deque([src_region])
        while queue:
            r = queue.popleft()
            for nxt in sorted(self._region_graph.neighbors(r)):
                if nxt in parent:
                    continue
                if nxt in avoid and nxt != dst_region:
                    continue
                parent[nxt] = r
                if nxt == dst_region:
                    path = [nxt]
                    while path[-1] != src_region:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(nxt)
        return None

    def overlay_hops(self, src_region: int, dst_region: int) -> int:
        """Region hops of the unobstructed overlay path."""
        path = self.overlay_path(src_region, dst_region)
        if path is None:  # pragma: no cover - validated connected
            raise RegionError(
                f"regions {src_region} and {dst_region} are not "
                f"connected in the overlay"
            )
        return len(path) - 1

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready form (used by the federation snapshot)."""
        return {
            "assignment": {str(n): rid
                           for n, rid in sorted(self._assignment.items())},
            "cross_links": [[u, v, w] for u, v, w in self._cross_links],
        }
