"""The applier of the plan/diff/apply pipeline.

``apply_delta`` pushes a :class:`~repro.controlplane.diff.RuleDelta`
through the southbound interface message by message, optionally
recording every message on a channel (the control-traffic accounting
used by the churn experiment), and publishes delta telemetry:

* ``controlplane.delta.events`` — reconfigurations applied;
* ``controlplane.delta.messages`` — southbound messages shipped;
* ``controlplane.delta.switches_touched`` — switches that received at
  least one message;
* ``controlplane.delta.switches_removed`` — switches dropped from the
  plan (left the network).

``apply_delta`` assumes a perfect synchronous channel.  The
:class:`TransactionalApplier` is its reliable counterpart for a lossy
:class:`~repro.controlplane.channel.FaultyChannel`: each delta is
applied per switch as a generation-tagged transaction — ship the
switch's messages, collect acks, retry only the unacked ones with
jittered exponential backoff, give up on the switch when the retry
budget or the per-delta deadline runs out (it goes on the caller's
pending queue and keeps serving stale rules), and treat switches that
departed mid-flight as acked no-ops.  With every channel fault knob at
zero the applier transmits exactly the message sequence ``apply_delta``
would (the recorded-channel equality test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from ..dataplane import GredSwitch
from ..obs import default_registry
from .diff import RuleDelta
from .plan import RulePlan, snapshot_plan
from .southbound import RecordingChannel, apply_message


def apply_delta(switches: Dict[int, GredSwitch], delta: RuleDelta,
                channel: Optional[RecordingChannel] = None) -> int:
    """Apply ``delta`` to the data plane; returns the message count.

    Messages are applied in the differ's order (per switch: removals,
    then installs).  ``channel`` observes every message before it is
    applied.  With request tracing on, the reconfiguration is recorded
    as a ``controlplane.apply_delta`` span (its own trace when no
    request is open).
    """
    from contextlib import nullcontext

    from ..obs.spans import default_recorder

    recorder = default_recorder()
    span = (recorder.span("controlplane.apply_delta",
                          messages=len(delta.messages),
                          touched=len(delta.touched),
                          removed=len(delta.removed))
            if recorder is not None else nullcontext())
    with span:
        for message in delta.messages:
            if channel is not None:
                channel.send(message)
            apply_message(switches, message)
    registry = default_registry()
    if registry.enabled:
        registry.counter("controlplane.delta.events").inc()
        registry.counter("controlplane.delta.messages").inc(
            len(delta.messages))
        registry.counter("controlplane.delta.switches_touched").inc(
            len(delta.touched))
        if delta.removed:
            registry.counter("controlplane.delta.switches_removed").inc(
                len(delta.removed))
    return len(delta.messages)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff knobs of the transactional applier.

    Backoff is *simulated* time: the applier never sleeps, it
    accumulates ``base_backoff * backoff_factor**attempt`` (scaled by a
    seeded jitter in ``[1, 1 + jitter]``) and abandons the delta's
    remaining switches once the accumulated backoff exceeds
    ``delta_deadline`` — they land on the pending queue for
    :meth:`~repro.controlplane.controller.Controller.reconcile` to
    drain.
    """

    max_attempts: int = 6
    base_backoff: float = 0.005
    backoff_factor: float = 2.0
    jitter: float = 0.5
    delta_deadline: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.delta_deadline <= 0:
            raise ValueError("backoff must be >= 0 and deadline > 0")
        if self.backoff_factor < 1.0 or self.jitter < 0.0:
            raise ValueError("backoff_factor must be >= 1, jitter >= 0")


@dataclass
class ApplyReport:
    """Outcome of one transactional delta apply."""

    generation: int
    #: Unique messages in the delta.
    messages: int = 0
    #: Transmissions including retries.
    transmissions: int = 0
    #: Message retransmissions (transmissions beyond the first).
    retries: int = 0
    #: Simulated seconds spent backing off.
    backoff_time: float = 0.0
    #: Switches whose transaction fully acked.
    acked: FrozenSet[int] = frozenset()
    #: Switches left unconverged (unreachable, or the retry budget /
    #: delta deadline ran out) — the caller's pending queue.
    pending: FrozenSet[int] = frozenset()
    #: Switches that departed before delivery (acked as no-ops).
    departed: FrozenSet[int] = frozenset()

    @property
    def converged(self) -> bool:
        return not self.pending


class TransactionalApplier:
    """Reliable per-switch delta application over a lossy channel.

    Messages are grouped by target switch (the differ already orders
    removals-then-installs within a switch) and each group is applied
    as one generation-tagged transaction with acks and bounded,
    jitter-backed retries.  Applying any group twice equals applying it
    once — every southbound message is an idempotent upsert/absent-ok
    delete — so retransmission after a lost ack is safe by
    construction.
    """

    def __init__(self, channel, policy: Optional[RetryPolicy] = None,
                 seed: int = 0) -> None:
        self.channel = channel
        self.policy = policy or RetryPolicy()
        self._rng = np.random.default_rng(seed)

    def apply(self, switches: Dict[int, GredSwitch], delta: RuleDelta,
              *, generation: int = 0) -> ApplyReport:
        """Apply ``delta`` transactionally; returns the outcome."""
        from contextlib import nullcontext

        from ..obs.spans import default_recorder

        policy = self.policy
        report = ApplyReport(generation=generation,
                             messages=len(delta.messages))
        groups: Dict[int, List] = {}
        for message in delta.messages:
            groups.setdefault(message.switch, []).append(message)
        acked: List[int] = []
        pending: List[int] = []
        departed: List[int] = []
        recorder = default_recorder()
        span = (recorder.span("controlplane.apply_transactional",
                              generation=generation,
                              messages=len(delta.messages),
                              touched=len(delta.touched))
                if recorder is not None else nullcontext())
        with span:
            for switch_id in sorted(groups):
                if switch_id not in switches:
                    departed.append(switch_id)
                    continue
                if not self.channel.is_reachable(switch_id):
                    pending.append(switch_id)
                    continue
                unacked = groups[switch_id]
                attempts = 0
                while unacked and attempts < policy.max_attempts \
                        and report.backoff_time <= policy.delta_deadline:
                    if attempts > 0:
                        report.retries += len(unacked)
                        backoff = (policy.base_backoff
                                   * policy.backoff_factor
                                   ** (attempts - 1))
                        backoff *= 1.0 + policy.jitter * float(
                            self._rng.random())
                        report.backoff_time += backoff
                        if report.backoff_time > policy.delta_deadline:
                            break
                    acks = self.channel.ship(switches, unacked)
                    report.transmissions += len(unacked)
                    attempts += 1
                    unacked = [m for m, ok in zip(unacked, acks)
                               if not ok]
                if unacked:
                    pending.append(switch_id)
                else:
                    acked.append(switch_id)
        report.acked = frozenset(acked)
        report.pending = frozenset(pending)
        report.departed = frozenset(departed)
        registry = default_registry()
        if registry.enabled:
            registry.counter("controlplane.delta.events").inc()
            registry.counter("controlplane.delta.messages").inc(
                len(delta.messages))
            registry.counter("controlplane.delta.switches_touched").inc(
                len(delta.touched))
            if delta.removed:
                registry.counter(
                    "controlplane.delta.switches_removed").inc(
                        len(delta.removed))
            if report.retries:
                registry.counter("controlplane.southbound.retries").inc(
                    report.retries)
            if pending:
                registry.counter("controlplane.southbound.pending").inc(
                    len(pending))
        return report


def install_plan(switches: Dict[int, GredSwitch], plan: RulePlan,
                 channel: Optional[RecordingChannel] = None) -> RuleDelta:
    """Converge live switches to ``plan`` (diff against their actual
    installed state, then apply); returns the delta that was applied."""
    from .diff import diff_plans

    delta = diff_plans(snapshot_plan(switches), plan)
    apply_delta(switches, delta, channel=channel)
    return delta
