"""The applier of the plan/diff/apply pipeline.

``apply_delta`` pushes a :class:`~repro.controlplane.diff.RuleDelta`
through the southbound interface message by message, optionally
recording every message on a channel (the control-traffic accounting
used by the churn experiment), and publishes delta telemetry:

* ``controlplane.delta.events`` — reconfigurations applied;
* ``controlplane.delta.messages`` — southbound messages shipped;
* ``controlplane.delta.switches_touched`` — switches that received at
  least one message;
* ``controlplane.delta.switches_removed`` — switches dropped from the
  plan (left the network).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..dataplane import GredSwitch
from ..obs import default_registry
from .diff import RuleDelta
from .plan import RulePlan, snapshot_plan
from .southbound import RecordingChannel, apply_message


def apply_delta(switches: Dict[int, GredSwitch], delta: RuleDelta,
                channel: Optional[RecordingChannel] = None) -> int:
    """Apply ``delta`` to the data plane; returns the message count.

    Messages are applied in the differ's order (per switch: removals,
    then installs).  ``channel`` observes every message before it is
    applied.  With request tracing on, the reconfiguration is recorded
    as a ``controlplane.apply_delta`` span (its own trace when no
    request is open).
    """
    from contextlib import nullcontext

    from ..obs.spans import default_recorder

    recorder = default_recorder()
    span = (recorder.span("controlplane.apply_delta",
                          messages=len(delta.messages),
                          touched=len(delta.touched),
                          removed=len(delta.removed))
            if recorder is not None else nullcontext())
    with span:
        for message in delta.messages:
            if channel is not None:
                channel.send(message)
            apply_message(switches, message)
    registry = default_registry()
    if registry.enabled:
        registry.counter("controlplane.delta.events").inc()
        registry.counter("controlplane.delta.messages").inc(
            len(delta.messages))
        registry.counter("controlplane.delta.switches_touched").inc(
            len(delta.touched))
        if delta.removed:
            registry.counter("controlplane.delta.switches_removed").inc(
                len(delta.removed))
    return len(delta.messages)


def install_plan(switches: Dict[int, GredSwitch], plan: RulePlan,
                 channel: Optional[RecordingChannel] = None) -> RuleDelta:
    """Converge live switches to ``plan`` (diff against their actual
    installed state, then apply); returns the delta that was applied."""
    from .diff import diff_plans

    delta = diff_plans(snapshot_plan(switches), plan)
    apply_delta(switches, delta, channel=channel)
    return delta
