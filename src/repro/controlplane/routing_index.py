"""A uniform-grid spatial index over DT-participant positions.

``Controller.closest_switch`` is the control plane's hottest query: the
facade resolves every data identifier's destination through it, and the
brute-force scan is O(participants) per call.  This index buckets the
participant positions into a uniform grid and answers nearest-neighbor
queries by expanding-ring search, which is O(1) amortized for
positions spread over the unit square (CVT-regulated positions are by
construction).

Exactness contract: :meth:`closest` returns the same switch as the
brute-force rule — minimal ``(euclidean(pos, point), pos.x, pos.y)``
key — for every query point.  Candidate keys use the same
correctly-rounded ``math.hypot`` the brute force uses, and the ring
search only stops once the next ring's geometric lower bound (minus a
safety margin for float rounding in the bound itself) strictly exceeds
the best distance, so boundary ties are never cut off.

The grid geometry (origin, cell size, dimensions) is fixed at
construction, but membership is not: :meth:`insert` and :meth:`remove`
update the index in place so switch joins and leaves never force a
rebuild — only a full ``recompute`` (which moves every position) does.
Points inserted outside the original bounding box are clamped into a
border cell; the ring search stays exact because such a point is
geometrically even farther from the query than its cell's boundary, so
the ring lower bound still under-estimates its distance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..geometry import Point

#: Safety margin subtracted from the ring lower bound: the bound is
#: computed with a handful of float additions whose rounding error is
#: orders of magnitude below this, so shaving it can only make the
#: search examine one extra ring, never miss the true nearest.
_BOUND_MARGIN = 1e-9


class RoutingIndex:
    """Nearest-participant index with in-place membership updates.

    Parameters
    ----------
    participants:
        DT-participant switch ids, in ``dt_participants()`` order.
    positions:
        Virtual position of every participant (distinct points — the
        control plane deduplicates them).
    """

    def __init__(self, participants: Sequence[int],
                 positions: Dict[int, Point]) -> None:
        self._nodes: List[int] = list(participants)
        self._xs: List[float] = []
        self._ys: List[float] = []
        for node in self._nodes:
            x, y = positions[node]
            self._xs.append(float(x))
            self._ys.append(float(y))
        #: node id -> slot in the parallel arrays (live nodes only;
        #: removed slots become unreferenced tombstones).
        self._slot: Dict[int, int] = {
            node: i for i, node in enumerate(self._nodes)
        }
        #: In-place update counters (observability + locality tests).
        self.inserts = 0
        self.removes = 0
        n = len(self._nodes)
        if n == 0:
            self._grid: Dict[Tuple[int, int], List[int]] = {}
            self._gx = self._gy = 1
            self._x0 = self._y0 = 0.0
            self._cell = 1.0
            return
        x0, x1 = min(self._xs), max(self._xs)
        y0, y1 = min(self._ys), max(self._ys)
        # ~1 point per cell on average: g ≈ sqrt(n) per axis.
        g = max(1, int(math.sqrt(n)))
        extent = max(x1 - x0, y1 - y0)
        cell = extent / g if extent > 0.0 else 1.0
        self._x0, self._y0 = x0, y0
        self._cell = cell
        self._gx = max(1, min(g, int((x1 - x0) / cell) + 1))
        self._gy = max(1, min(g, int((y1 - y0) / cell) + 1))
        self._grid = {}
        for i in range(n):
            key = self._cell_of(self._xs[i], self._ys[i])
            self._grid.setdefault(key, []).append(i)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slot)

    def __contains__(self, node: int) -> bool:
        return node in self._slot

    def nodes(self) -> List[int]:
        """Live participant ids (unordered membership view)."""
        return list(self._slot)

    def insert(self, node: int, position: Point) -> None:
        """Add one participant in place (O(1)).

        The grid geometry is kept; a position outside the original
        bounding box lands in the nearest border cell, which preserves
        the ring search's exactness (see module docstring).
        """
        if node in self._slot:
            raise ValueError(f"participant {node} already indexed")
        x, y = float(position[0]), float(position[1])
        slot = len(self._nodes)
        self._nodes.append(node)
        self._xs.append(x)
        self._ys.append(y)
        self._slot[node] = slot
        self._grid.setdefault(self._cell_of(x, y), []).append(slot)
        self.inserts += 1

    def remove(self, node: int) -> None:
        """Drop one participant in place (O(cell occupancy))."""
        slot = self._slot.pop(node, None)
        if slot is None:
            raise ValueError(f"participant {node} not indexed")
        key = self._cell_of(self._xs[slot], self._ys[slot])
        cell = self._grid.get(key, [])
        cell.remove(slot)
        if not cell:
            self._grid.pop(key, None)
        self.removes += 1

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        ix = int((x - self._x0) / self._cell)
        iy = int((y - self._y0) / self._cell)
        if ix < 0:
            ix = 0
        elif ix >= self._gx:
            ix = self._gx - 1
        if iy < 0:
            iy = 0
        elif iy >= self._gy:
            iy = self._gy - 1
        return ix, iy

    def closest(self, point: Point) -> int:
        """The participant nearest to ``point`` under the paper's
        ``(distance, x, y)`` tie-break rule.

        Raises
        ------
        ValueError
            If the index is empty (no DT participants).
        """
        if not self._slot:
            raise ValueError("routing index has no participants")
        px = float(point[0])
        py = float(point[1])
        cx, cy = self._cell_of(px, py)
        grid = self._grid
        xs = self._xs
        ys = self._ys
        best_i = -1
        best_d = math.inf
        best_x = best_y = 0.0
        # Rings must reach every in-bounds cell even when the query's
        # clamped cell sits in a corner.
        max_ring = max(cx, self._gx - 1 - cx, cy, self._gy - 1 - cy)
        for ring in range(max_ring + 1):
            if ring > 0 and best_i >= 0:
                # Everything in this ring lies outside the box of cells
                # already examined; its boundary distance lower-bounds
                # every remaining candidate.  Ties (lb == best_d) must
                # keep searching: the (x, y) tie-break could still
                # prefer a boundary point.
                bx0 = self._x0 + (cx - ring + 1) * self._cell
                bx1 = self._x0 + (cx + ring) * self._cell
                by0 = self._y0 + (cy - ring + 1) * self._cell
                by1 = self._y0 + (cy + ring) * self._cell
                lb = min(px - bx0, bx1 - px, py - by0, by1 - py)
                if lb - _BOUND_MARGIN > best_d:
                    break
            for ix, iy in self._ring_cells(cx, cy, ring):
                for i in grid.get((ix, iy), ()):
                    x = xs[i]
                    y = ys[i]
                    d = math.hypot(x - px, y - py)
                    if d > best_d:
                        continue
                    if d < best_d or (x, y) < (best_x, best_y):
                        best_i = i
                        best_d = d
                        best_x = x
                        best_y = y
        return self._nodes[best_i]

    def _ring_cells(self, cx: int, cy: int, ring: int):
        """In-bounds cells at Chebyshev distance ``ring`` from the
        center cell."""
        gx, gy = self._gx, self._gy
        if ring == 0:
            if 0 <= cx < gx and 0 <= cy < gy:
                yield cx, cy
            return
        x_lo, x_hi = cx - ring, cx + ring
        y_lo, y_hi = cy - ring, cy + ring
        for ix in range(max(0, x_lo), min(gx - 1, x_hi) + 1):
            if 0 <= y_lo < gy:
                yield ix, y_lo
            if y_hi != y_lo and 0 <= y_hi < gy:
                yield ix, y_hi
        for iy in range(max(0, y_lo + 1), min(gy - 1, y_hi - 1) + 1):
            if 0 <= x_lo < gx:
                yield x_lo, iy
            if x_hi != x_lo and 0 <= x_hi < gx:
                yield x_hi, iy
