"""Installed-state verification: a consistency checker for the data
plane.

An SDN controller that pushes rules proactively needs a way to audit
what is actually installed — misconfigured relay chains or stale greedy
candidates cause loops or misdeliveries that only appear under
traffic.  ``verify_installed_state`` checks the invariants the GRED
data plane relies on and returns structured violations (empty list =
consistent).  The chaos tests corrupt switches deliberately and assert
the verifier catches every class of fault.

Checked invariants:

1. every DT participant's greedy candidates carry the controller's
   positions (no stale/forged coordinates);
2. every multi-hop DT neighbor has a virtual-link start entry whose
   successor is a physical neighbor;
3. every relay chain, followed hop by hop, terminates at its declared
   destination without revisiting a switch;
4. DT adjacency is symmetric and matches the controller's view;
5. extension entries point at existing servers on physical neighbors;
6. (with ``fault_state``) no installed rule references a crashed
   switch — dead greedy candidates, relay successors or extension
   targets mean a repair sweep has not yet run;
7. every switch's installed port map equals the deterministic
   compiler's output for the current topology, exactly — a stale
   entry for a removed link or a missing entry for a new one means a
   delta update retracted too little or installed too few rules;
8. (with ``desired_plan``) every switch's installed-state digest
   equals the desired plan's — the anti-entropy comparison: a
   mismatch means southbound faults (loss, reordering, stale delayed
   messages) left divergent state that ``Controller.reconcile`` has
   not yet repaired.
9. (federation, :func:`verify_region_scope`) no installed rule on a
   shard's switch references a switch outside that shard — greedy
   candidates, DT neighbors, relay tuples, ports and extension
   targets must all stay region-local.  Only the federation's own
   overlay table may name gateway switches of other regions; shard
   rule tables never do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .controller import Controller
from .plan import RulePlan, plan_digests, snapshot_plan


@dataclass(frozen=True)
class Violation:
    """One detected inconsistency."""

    kind: str
    switch: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] switch {self.switch}: {self.detail}"


def verify_installed_state(
    controller: Controller,
    fault_state: Optional[object] = None,
    desired_plan: Optional[RulePlan] = None,
) -> List[Violation]:
    """Audit the data-plane state against the controller's intent.

    With ``fault_state`` (a :class:`repro.faults.FaultState`), also
    flag rules that reference crashed switches as ``dead-reference``
    violations; with ``desired_plan``, also compare per-switch
    installed-state digests against the plan and flag divergence as
    ``digest-mismatch``; without them the audit is unchanged.
    """
    violations: List[Violation] = []
    topology = controller.topology
    positions = controller.positions
    adjacency = controller.dt_adjacency()

    for switch_id, switch in controller.switches.items():
        # 1. candidate positions match the controller's.
        for nid, pos in switch.physical_neighbor_positions.items():
            if nid not in positions or positions[nid] != pos:
                violations.append(Violation(
                    "stale-position", switch_id,
                    f"physical candidate {nid} at {pos}, controller "
                    f"says {positions.get(nid)}"))
        for nid, pos in switch.dt_neighbor_positions.items():
            if nid not in positions or positions[nid] != pos:
                violations.append(Violation(
                    "stale-position", switch_id,
                    f"DT candidate {nid} at {pos}, controller says "
                    f"{positions.get(nid)}"))
        # 4. DT adjacency matches.
        if switch.in_dt:
            expected = adjacency.get(switch_id, set())
            installed = set(switch.dt_neighbor_positions)
            if installed != expected:
                violations.append(Violation(
                    "dt-adjacency", switch_id,
                    f"installed DT neighbors {sorted(installed)} != "
                    f"expected {sorted(expected)}"))
        # 2. virtual-link start entries for multi-hop DT neighbors.
        for nid in switch.dt_neighbor_positions:
            if topology.has_edge(switch_id, nid):
                continue
            entry = switch.table.virtual_entry(nid)
            if entry is None or entry.succ is None:
                violations.append(Violation(
                    "missing-vl-start", switch_id,
                    f"no virtual-link entry toward DT neighbor {nid}"))
            elif not topology.has_edge(switch_id, entry.succ):
                violations.append(Violation(
                    "bad-vl-succ", switch_id,
                    f"virtual-link successor {entry.succ} toward "
                    f"{nid} is not physically adjacent"))
        # 5. extensions point at real neighbor servers.
        for ext in switch.table.extensions():
            if not topology.has_edge(switch_id, ext.target_switch):
                violations.append(Violation(
                    "bad-extension", switch_id,
                    f"extension target switch {ext.target_switch} is "
                    f"not a physical neighbor"))
                continue
            servers = controller.server_map.get(ext.target_switch, [])
            if ext.target_serial >= len(servers):
                violations.append(Violation(
                    "bad-extension", switch_id,
                    f"extension target serial {ext.target_serial} "
                    f"does not exist on switch {ext.target_switch}"))

    # 7. installed ports match the deterministic port map exactly.
    from .rules import compile_port_map

    expected_ports = compile_port_map(topology)
    for switch_id, switch in controller.switches.items():
        table = switch.table
        installed_ports = {
            neighbor: table.physical_port(neighbor)
            for neighbor in table.physical_neighbors()
        }
        if installed_ports != expected_ports.get(switch_id, {}):
            violations.append(Violation(
                "port-map", switch_id,
                f"installed ports {sorted(installed_ports.items())} != "
                f"compiled {sorted(expected_ports.get(switch_id, {}).items())}"))

    # 3. relay chains terminate.
    violations.extend(_verify_relay_chains(controller))
    # 6. nothing references a crashed switch.
    if fault_state is not None:
        violations.extend(_verify_liveness(controller, fault_state))
    # 8. installed digests match the desired plan (anti-entropy view).
    if desired_plan is not None:
        violations.extend(_verify_digests(controller, desired_plan))
    return violations


def _verify_digests(controller: Controller,
                    desired_plan: RulePlan) -> List[Violation]:
    """Flag switches whose installed-state digest diverges from the
    desired plan's — in either direction."""
    violations: List[Violation] = []
    want = plan_digests(desired_plan)
    have = plan_digests(snapshot_plan(controller.switches))
    for switch_id in sorted(set(want) | set(have)):
        if want.get(switch_id) == have.get(switch_id):
            continue
        if switch_id not in have:
            detail = "desired plan has no installed counterpart"
        elif switch_id not in want:
            detail = "installed state has no desired counterpart"
        else:
            detail = (f"installed digest {have[switch_id][:12]} != "
                      f"desired {want[switch_id][:12]}")
        violations.append(Violation("digest-mismatch", switch_id,
                                    detail))
    return violations


def _verify_liveness(controller: Controller,
                     fault_state) -> List[Violation]:
    """Flag installed rules that reference crashed switches."""
    violations: List[Violation] = []
    for switch_id, switch in controller.switches.items():
        dead_refs = set()
        for nid in switch.physical_neighbor_positions:
            if not fault_state.switch_alive(nid):
                dead_refs.add(nid)
        for nid in switch.dt_neighbor_positions:
            if not fault_state.switch_alive(nid):
                dead_refs.add(nid)
        for entry in switch.table.virtual_entries():
            for nid in (entry.succ, entry.dest):
                if nid is not None and \
                        not fault_state.switch_alive(nid):
                    dead_refs.add(nid)
        for ext in switch.table.extensions():
            if not fault_state.switch_alive(ext.target_switch):
                dead_refs.add(ext.target_switch)
        for nid in sorted(dead_refs):
            violations.append(Violation(
                "dead-reference", switch_id,
                f"installed state references crashed switch {nid}"))
    return violations


def _verify_relay_chains(controller: Controller) -> List[Violation]:
    violations: List[Violation] = []
    topology = controller.topology
    for switch_id, switch in controller.switches.items():
        for entry in switch.table.virtual_entries():
            if entry.succ is None:
                continue
            # Follow successors toward entry.dest.
            seen = {switch_id}
            current = entry.succ
            ok = False
            for _ in range(topology.num_nodes() + 1):
                if current == entry.dest:
                    ok = True
                    break
                if current in seen:
                    break  # loop
                seen.add(current)
                next_switch = controller.switches.get(current)
                if next_switch is None:
                    break
                hop = next_switch.table.virtual_entry(entry.dest)
                if hop is None or hop.succ is None:
                    break
                current = hop.succ
            if not ok:
                violations.append(Violation(
                    "broken-relay-chain", switch_id,
                    f"chain toward {entry.dest} via {entry.succ} never "
                    f"reaches its destination"))
    return violations


def verify_region_scope(controller: Controller, members,
                        region: int = 0) -> List[Violation]:
    """Invariant 9: every switch reference installed on a shard stays
    inside that shard.

    ``members`` is the shard's switch set.  Any installed greedy
    candidate, DT neighbor, relay tuple endpoint, port-map neighbor or
    extension target outside it is a ``region-scope`` violation: a
    shard controller that leaks references to another region would
    re-couple the shards and break churn isolation.  (Gateway switches
    are themselves shard members; the *overlay* table that names
    gateways of other regions lives in the federation, never in a
    shard's rule tables.)
    """
    allowed = set(members)
    violations: List[Violation] = []
    for switch_id, switch in controller.switches.items():
        foreign = set()
        table = switch.table
        foreign.update(n for n in table.physical_neighbors()
                       if n not in allowed)
        foreign.update(n for n in switch.physical_neighbor_positions
                       if n not in allowed)
        foreign.update(n for n in switch.dt_neighbor_positions
                       if n not in allowed)
        for entry in table.virtual_entries():
            for ref in (entry.sour, entry.pred, entry.succ, entry.dest):
                if ref is not None and ref not in allowed:
                    foreign.add(ref)
        for ext in table.extensions():
            if ext.target_switch not in allowed:
                foreign.add(ext.target_switch)
        for ref in sorted(foreign):
            violations.append(Violation(
                "region-scope", switch_id,
                f"installed state references switch {ref} outside "
                f"region {region}"))
    return violations
