"""The pure planner of the plan/diff/apply pipeline.

The legacy install path (:func:`repro.controlplane.rules.
install_all_rules`) clears and rewrites every switch on every
reconfiguration — O(network) southbound traffic for a join that the
paper argues "only affects its neighbors" (Section VI).  This module is
the first stage of the incremental replacement: it compiles the
*desired* per-switch forwarding state into plain values without ever
touching a switch.

A :class:`RulePlan` maps each switch id to a :class:`SwitchPlan` — its
virtual position, deterministic port map, greedy candidate positions,
DT neighbors and relay 4-tuples — exactly the state
``install_all_rules`` would install, expressed as data.  Because plans
are pure values they can be diffed (:mod:`repro.controlplane.diff`) and
the difference applied as a bounded set of southbound messages
(:mod:`repro.controlplane.apply`).

``snapshot_plan`` reads the *installed* state back out of live
switches in the same shape, so the differ always compares desired
against reality rather than against what the controller believes it
installed — out-of-band table mutations are repaired, not preserved.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..dataplane import GredSwitch, VirtualLinkEntry
from ..geometry import Point
from ..graph import Graph
from .rules import (
    _multi_hop_destinations,
    bfs_parent_tree,
    compile_port_map,
    path_toward,
)


@dataclass(frozen=True)
class SwitchPlan:
    """Desired forwarding state of one switch, as a comparable value.

    ``ports`` pairs ``(neighbor, port)``; ``candidates`` pairs
    ``(neighbor, position)`` for physical neighbors that are greedy
    candidates (DT members); ``dt_neighbors`` pairs
    ``(neighbor, position)``; ``virtuals`` holds the relay 4-tuples
    keyed by destination (one entry per dest, like the table).
    ``num_servers`` is ``None`` when the planner has no server view
    (standalone compilation) — the differ then leaves the switch's
    server count alone.
    """

    switch: int
    position: Point
    ports: Tuple[Tuple[int, int], ...]
    candidates: Tuple[Tuple[int, Point], ...]
    dt_neighbors: Tuple[Tuple[int, Point], ...]
    virtuals: Tuple[VirtualLinkEntry, ...]
    num_servers: Optional[int] = None


@dataclass(frozen=True)
class RulePlan:
    """Desired state of the whole switch plane: switch id -> plan."""

    plans: "Dict[int, SwitchPlan]"

    def __len__(self) -> int:
        return len(self.plans)

    def __contains__(self, switch_id: int) -> bool:
        return switch_id in self.plans

    def get(self, switch_id: int) -> Optional[SwitchPlan]:
        return self.plans.get(switch_id)

    def switch_ids(self):
        return sorted(self.plans)


def compile_plan(
    topology: Graph,
    positions: Dict[int, Point],
    dt_adjacency: Dict[int, Set[int]],
    server_counts: Optional[Dict[int, int]] = None,
) -> RulePlan:
    """Compile the desired forwarding state of every switch.

    Pure: reads the control-plane view, touches nothing.  The result
    describes exactly the state ``install_all_rules`` would install —
    same deterministic port numbering, same per-destination BFS trees,
    same later-source-wins overwrite for relay tuples sharing a
    destination — which the differential tests assert.
    """
    ports = compile_port_map(topology)
    dt_members = set(dt_adjacency)
    candidates: Dict[int, Dict[int, Point]] = {}
    virtuals: Dict[int, Dict[int, VirtualLinkEntry]] = {}
    for node in topology.nodes():
        candidates[node] = {
            neighbor: positions[neighbor]
            for neighbor in ports[node]
            if neighbor in dt_members
        }
        virtuals[node] = {}
    # One BFS tree per multi-hop destination, sources in sorted order:
    # identical relay tuples (and identical same-dest overwrites) to
    # the legacy installer.
    for dest in sorted(_multi_hop_destinations(topology, dt_adjacency)):
        parent = bfs_parent_tree(topology, dest)
        for sour in sorted(dt_adjacency[dest]):
            if topology.has_edge(sour, dest):
                continue
            path = path_toward(parent, sour, dest)
            for i, node in enumerate(path):
                virtuals[node][dest] = VirtualLinkEntry(
                    sour=sour,
                    pred=path[i - 1] if i > 0 else None,
                    succ=path[i + 1] if i < len(path) - 1 else None,
                    dest=dest,
                )
    plans: Dict[int, SwitchPlan] = {}
    for node in topology.nodes():
        dt_nbrs = dt_adjacency.get(node, ())
        plans[node] = SwitchPlan(
            switch=node,
            position=positions[node],
            ports=tuple(sorted(ports[node].items())),
            candidates=tuple(sorted(candidates[node].items())),
            dt_neighbors=tuple(sorted(
                (other, positions[other]) for other in dt_nbrs)),
            virtuals=tuple(
                virtuals[node][dest] for dest in sorted(virtuals[node])),
            num_servers=(None if server_counts is None
                         else server_counts.get(node, 0)),
        )
    return RulePlan(plans=plans)


def switch_digest(plan: SwitchPlan) -> str:
    """Content hash of one switch's forwarding state.

    Two plans (or a plan and a :func:`snapshot_plan` row) digest
    equally iff their installed state is byte-identical — the
    anti-entropy comparison unit: the controller compares per-switch
    digests of desired vs installed state and re-ships only the
    switches whose digests diverge.
    """
    rows = (
        plan.switch,
        plan.position,
        plan.ports,
        plan.candidates,
        plan.dt_neighbors,
        tuple((e.sour, e.pred, e.succ, e.dest) for e in plan.virtuals),
        plan.num_servers,
    )
    return hashlib.sha256(repr(rows).encode("utf-8")).hexdigest()


def plan_digests(plan: RulePlan) -> Dict[int, str]:
    """Per-switch digests of a whole plan (switch id -> hex digest)."""
    return {switch_id: switch_digest(switch_plan)
            for switch_id, switch_plan in plan.plans.items()}


def snapshot_plan(switches: Dict[int, GredSwitch]) -> RulePlan:
    """The *installed* state of live switches, in plan form.

    The differ's baseline: comparing the desired plan against this
    snapshot (rather than a remembered plan) makes apply converge the
    data plane to the plan even if tables were mutated out of band.
    """
    plans: Dict[int, SwitchPlan] = {}
    for switch_id, switch in switches.items():
        table = switch.table
        plans[switch_id] = SwitchPlan(
            switch=switch_id,
            position=switch.position,
            ports=tuple(sorted(
                (neighbor, table.physical_port(neighbor))
                for neighbor in table.physical_neighbors())),
            candidates=tuple(sorted(
                switch.physical_neighbor_positions.items())),
            dt_neighbors=tuple(sorted(
                switch.dt_neighbor_positions.items())),
            virtuals=tuple(sorted(
                table.virtual_entries(), key=lambda e: e.dest)),
            num_servers=switch.num_servers,
        )
    return RulePlan(plans=plans)
