"""Control plane: the SDN controller (discovery, embedding, DT, rule
installation, range extension, dynamics), the rule compiler, and the
incremental plan/diff/apply pipeline."""

from .controller import (
    ControlPlaneError,
    Controller,
    ControllerConfig,
    ReconcileReport,
)
from .routing_index import RoutingIndex
from .verification import (
    Violation,
    verify_installed_state,
    verify_region_scope,
)
from .region import RegionError, RegionMap
from .federation import (
    FederatedController,
    FederatedNetwork,
    RegionShard,
)
from .southbound import (
    RecordingChannel,
    SouthboundMessage,
    apply_message,
    compile_messages,
    install_via_messages,
)
from .channel import ChannelStats, ControlChannelError, FaultyChannel
from .rules import (
    average_table_entries,
    bfs_parent_tree,
    compile_port_map,
    install_all_rules,
    path_toward,
    table_entry_counts,
)
from .plan import (
    RulePlan,
    SwitchPlan,
    compile_plan,
    plan_digests,
    snapshot_plan,
    switch_digest,
)
from .diff import RuleDelta, diff_plans
from .apply import (
    ApplyReport,
    RetryPolicy,
    TransactionalApplier,
    apply_delta,
    install_plan,
)

__all__ = [
    "Controller",
    "ControllerConfig",
    "ControlPlaneError",
    "RoutingIndex",
    "install_all_rules",
    "compile_port_map",
    "bfs_parent_tree",
    "path_toward",
    "average_table_entries",
    "table_entry_counts",
    "verify_installed_state",
    "verify_region_scope",
    "Violation",
    "RegionMap",
    "RegionError",
    "RegionShard",
    "FederatedController",
    "FederatedNetwork",
    "SouthboundMessage",
    "RecordingChannel",
    "compile_messages",
    "apply_message",
    "install_via_messages",
    "RulePlan",
    "SwitchPlan",
    "compile_plan",
    "snapshot_plan",
    "RuleDelta",
    "diff_plans",
    "apply_delta",
    "install_plan",
    "switch_digest",
    "plan_digests",
    "FaultyChannel",
    "ChannelStats",
    "ControlChannelError",
    "TransactionalApplier",
    "RetryPolicy",
    "ApplyReport",
    "ReconcileReport",
]
