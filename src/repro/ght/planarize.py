"""Planarization subgraphs for geographic face routing.

GPSR's perimeter mode only works on a planar subgraph of the
connectivity graph; the classical distributed constructions are the
Gabriel graph (GG) and the relative neighborhood graph (RNG).  Both are
computed per edge from local information:

* **GG** keeps edge (u, v) unless some node w lies inside the circle
  with diameter uv;
* **RNG** keeps (u, v) unless some w is closer to both endpoints than
  they are to each other (the lune) — RNG ⊆ GG.

On unit-disk graphs these are connected planar spanners; on arbitrary
edge networks (e.g. Waxman topologies with long links) they may
disconnect the graph or leave crossing edges — the very failure mode
the paper cites when dismissing GHT/GPSR for edge computing
(Section VIII-B).  The experiments measure exactly that.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graph import Graph

Coordinates = Dict[int, Tuple[float, float]]


def _sq(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def gabriel_graph(graph: Graph, coords: Coordinates) -> Graph:
    """The Gabriel subgraph of ``graph`` under ``coords``.

    Witnesses are the endpoints' graph neighbors — the standard
    distributed construction (each node only knows its neighbors).  On
    unit-disk graphs this preserves connectivity; on non-geometric
    graphs it may not, which is part of what the GHT experiments
    measure.
    """
    _check_coords(graph, coords)
    planar = Graph()
    for node in graph.nodes():
        planar.add_node(node)
    for u, v, w in graph.edges():
        mid = ((coords[u][0] + coords[v][0]) / 2.0,
               (coords[u][1] + coords[v][1]) / 2.0)
        radius_sq = _sq(coords[u], coords[v]) / 4.0
        witnesses = set(graph.neighbors(u)) | set(graph.neighbors(v))
        blocked = any(
            x not in (u, v) and _sq(coords[x], mid) < radius_sq - 1e-15
            for x in witnesses
        )
        if not blocked:
            planar.add_edge(u, v, weight=w)
    return planar


def relative_neighborhood_graph(graph: Graph,
                                coords: Coordinates) -> Graph:
    """The RNG subgraph of ``graph`` under ``coords``."""
    _check_coords(graph, coords)
    planar = Graph()
    for node in graph.nodes():
        planar.add_node(node)
    for u, v, w in graph.edges():
        duv = _sq(coords[u], coords[v])
        witnesses = set(graph.neighbors(u)) | set(graph.neighbors(v))
        blocked = any(
            x not in (u, v)
            and _sq(coords[u], coords[x]) < duv - 1e-15
            and _sq(coords[v], coords[x]) < duv - 1e-15
            for x in witnesses
        )
        if not blocked:
            planar.add_edge(u, v, weight=w)
    return planar


def _check_coords(graph: Graph, coords: Coordinates) -> None:
    missing = [n for n in graph.nodes() if n not in coords]
    if missing:
        raise ValueError(f"coordinates missing for nodes: {missing}")
