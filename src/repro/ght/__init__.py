"""GHT/GPSR baseline: geographic hashing with greedy + perimeter
routing over planarized subgraphs (paper §VIII-B related work)."""

from .planarize import gabriel_graph, relative_neighborhood_graph
from .gpsr import GpsrOutcome, GpsrRouter, RouteStatus
from .network import GhtError, GhtNetwork, GhtRouteResult

__all__ = [
    "gabriel_graph",
    "relative_neighborhood_graph",
    "GpsrRouter",
    "GpsrOutcome",
    "RouteStatus",
    "GhtNetwork",
    "GhtRouteResult",
    "GhtError",
]
