"""GHT: geographic hash tables over GPSR (the paper's §VIII-B
baseline).

GHT hashes a data identifier to a geographic point and stores the item
at the *home node* — the node closest to that point, found by greedy
routing with perimeter-mode fallback.  Unlike GRED's virtual space, the
coordinates here are physical node positions (the Waxman plane), so
network distance is only reflected as far as geography correlates with
hop count, and delivery is only guaranteed on unit-disk-like graphs.

``GhtNetwork`` mirrors enough of the ``GredNetwork`` surface for the
comparison experiments: ``route_for``, ``place``, ``load_vector`` — and
explicitly reports undeliverable requests instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import utils
from ..edge import ServerMap, attach_uniform, load_vector
from ..graph import Graph
from ..hashing import sha256_digest
from .gpsr import GpsrOutcome, GpsrRouter, RouteStatus
from .planarize import gabriel_graph

Point = Tuple[float, float]


class GhtError(Exception):
    """Raised on invalid GHT configuration or requests."""


@dataclass
class GhtRouteResult:
    """Outcome of routing one GHT request."""

    data_id: str
    entry_switch: int
    delivered: bool
    home_switch: Optional[int]
    physical_hops: int
    status: RouteStatus


class GhtNetwork:
    """A GHT deployment over a physical topology with coordinates.

    Parameters
    ----------
    topology:
        Connectivity graph.
    coords:
        Node positions on the plane (e.g. from the Waxman generator).
    server_map:
        Edge servers per switch.
    """

    def __init__(self, topology: Graph, coords: Dict[int, Point],
                 server_map: Optional[ServerMap] = None,
                 servers_per_switch: int = 10) -> None:
        missing = [n for n in topology.nodes() if n not in coords]
        if missing:
            raise GhtError(f"coordinates missing for nodes: {missing}")
        if server_map is None:
            server_map = attach_uniform(
                topology.nodes(), servers_per_switch=servers_per_switch
            )
        self.topology = topology
        self.coords = dict(coords)
        self.server_map = server_map
        self.planar = gabriel_graph(topology, coords)
        self.router = GpsrRouter(topology, self.planar, coords)
        # The hash space spans the coordinate bounding box.
        xs = [c[0] for c in coords.values()]
        ys = [c[1] for c in coords.values()]
        self._x_range = (min(xs), max(xs) or 1.0)
        self._y_range = (min(ys), max(ys) or 1.0)

    # ------------------------------------------------------------------
    def hash_point(self, data_id: str) -> Point:
        """Geographic hash of an identifier: uniform over the node
        bounding box (GHT's 'hash to a location')."""
        digest = sha256_digest(data_id)
        x_unit = int.from_bytes(digest[-8:-4], "big") / (2 ** 32 - 1)
        y_unit = int.from_bytes(digest[-4:], "big") / (2 ** 32 - 1)
        x = self._x_range[0] + x_unit * (self._x_range[1]
                                         - self._x_range[0])
        y = self._y_range[0] + y_unit * (self._y_range[1]
                                         - self._y_range[0])
        return (x, y)

    def route_for(self, data_id: str,
                  entry_switch: int) -> GhtRouteResult:
        """Route toward the item's hash location; the home node is
        where the walk legitimately ends (greedy end or completed
        perimeter)."""
        if not self.topology.has_node(entry_switch):
            raise GhtError(f"unknown entry switch {entry_switch}")
        target = self.hash_point(data_id)
        outcome: GpsrOutcome = self.router.route(entry_switch, target)
        delivered = outcome.status in (RouteStatus.DELIVERED,
                                       RouteStatus.PERIMETER_LOOP)
        home = outcome.final_node if delivered else None
        if outcome.status == RouteStatus.PERIMETER_LOOP:
            # GHT home-node rule: the perimeter enclosing the target;
            # the closest node on the walked face is the home.
            home = min(
                set(outcome.path),
                key=lambda n: (
                    (self.coords[n][0] - target[0]) ** 2
                    + (self.coords[n][1] - target[1]) ** 2
                ),
            )
        return GhtRouteResult(
            data_id=data_id,
            entry_switch=entry_switch,
            delivered=delivered,
            home_switch=home,
            physical_hops=outcome.physical_hops,
            status=outcome.status,
        )

    def place(self, data_id: str, payload=None,
              entry_switch: Optional[int] = None,
              rng: Optional[np.random.Generator] = None
              ) -> GhtRouteResult:
        """Place an item at its home node's first server (when
        deliverable)."""
        entry = self._resolve_entry(entry_switch, rng)
        result = self.route_for(data_id, entry)
        if result.delivered and result.home_switch is not None:
            servers = self.server_map.get(result.home_switch)
            if servers:
                digest = sha256_digest(data_id)
                serial = int.from_bytes(digest[:8], "big") % len(servers)
                servers[serial].store(data_id, payload)
        return result

    def load_vector(self) -> List[int]:
        return load_vector(self.server_map)

    def _resolve_entry(self, entry_switch: Optional[int],
                       rng: Optional[np.random.Generator]) -> int:
        if entry_switch is not None:
            return entry_switch
        ids = self.topology.nodes()
        rng = utils.rng(rng)
        return ids[int(rng.integers(0, len(ids)))]
