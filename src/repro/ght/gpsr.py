"""GPSR-style geographic routing: greedy + perimeter mode.

The baseline family the paper's related work discusses (GFG/GPSR,
Section VIII-B): packets are forwarded greedily toward a geographic
target over the *full* connectivity graph; at a local minimum they
switch to perimeter mode — a right-hand-rule walk over a planarized
subgraph — until they reach a node closer to the target than where they
got stuck.

On unit-disk-like graphs (grids, dense geometric graphs) this delivers;
on arbitrary edge networks planarization can disconnect or misbehave,
so routing reports explicit outcomes rather than pretending: the
experiments quantify the failure rate the paper alludes to.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph import Graph

Coordinates = Dict[int, Tuple[float, float]]
Point = Tuple[float, float]


class RouteStatus(enum.Enum):
    DELIVERED = "delivered"
    PERIMETER_LOOP = "perimeter_loop"
    DEAD_END = "dead_end"
    HOP_LIMIT = "hop_limit"


@dataclass
class GpsrOutcome:
    """Result of one geographic route."""

    status: RouteStatus
    path: List[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.status == RouteStatus.DELIVERED

    @property
    def physical_hops(self) -> int:
        return max(0, len(self.path) - 1)

    @property
    def final_node(self) -> Optional[int]:
        return self.path[-1] if self.path else None


def _dist(a: Point, b: Point) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _segment_intersection(a: Point, b: Point, c: Point,
                          d: Point) -> Optional[Point]:
    """Intersection point of segments (a, b) and (c, d), or None.

    Touching at endpoints counts as an intersection; collinear overlaps
    return None (no unique crossing).
    """
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if denom == 0.0:
        return None
    qp = (c[0] - a[0], c[1] - a[1])
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    if -1e-12 <= t <= 1 + 1e-12 and -1e-12 <= u <= 1 + 1e-12:
        return (a[0] + t * r[0], a[1] + t * r[1])
    return None


class GpsrRouter:
    """Greedy + perimeter routing over a graph with coordinates.

    Parameters
    ----------
    graph:
        Full connectivity graph (greedy mode uses all links).
    planar:
        Planarized subgraph (perimeter mode walks only these links).
    coords:
        Node positions in the plane.
    """

    def __init__(self, graph: Graph, planar: Graph,
                 coords: Coordinates) -> None:
        self.graph = graph
        self.planar = planar
        self.coords = coords
        # Pre-sort planar neighbors by angle for the right-hand rule.
        self._angular: Dict[int, List[int]] = {}
        for node in planar.nodes():
            nbrs = list(planar.neighbors(node))
            origin = coords[node]
            nbrs.sort(key=lambda v: math.atan2(
                coords[v][1] - origin[1], coords[v][0] - origin[0]))
            self._angular[node] = nbrs

    # ------------------------------------------------------------------
    def route(self, source: int, target: Point,
              max_hops: Optional[int] = None) -> GpsrOutcome:
        """Route from ``source`` toward the geographic ``target``.

        Greedy over the full graph; at a local minimum, GPSR perimeter
        mode over the planar subgraph with the face-change rule: the
        walk follows the right-hand rule and, whenever the next edge
        crosses the (stuck-point -> target) segment closer to the
        target than any previous crossing, it enters the next face.
        Returning to the first edge of the current face without
        progress means the target region is enclosed — for GHT, the
        home perimeter (``PERIMETER_LOOP``); reaching a node strictly
        closer than the stuck point resumes greedy mode.
        """
        if max_hops is None:
            max_hops = 8 * self.graph.num_nodes() + 32
        path = [source]
        current = source
        mode = "greedy"
        # Perimeter state (GPSR packet fields).
        lp: Optional[Point] = None     # where greedy got stuck
        lf: Optional[Point] = None     # face entry point on (lp, D)
        first_edge: Optional[Tuple[int, int]] = None
        prev: Optional[int] = None
        for _ in range(max_hops):
            if mode == "greedy":
                if _dist(self.coords[current], target) == 0.0:
                    return GpsrOutcome(RouteStatus.DELIVERED, path)
                nxt = self._greedy_next(current, target)
                if nxt is not None:
                    path.append(nxt)
                    current = nxt
                    continue
                # Local minimum: enter perimeter mode.
                lp = self.coords[current]
                lf = lp
                start = self._perimeter_first(current, target)
                if start is None:
                    return GpsrOutcome(RouteStatus.DELIVERED, path)
                first_edge = (current, start)
                prev = current
                path.append(start)
                current = start
                mode = "perimeter"
                continue
            # Perimeter mode: resume greedy on real progress.
            if _dist(self.coords[current], target) < _dist(lp, target):
                mode = "greedy"
                prev = None
                continue
            nxt = self._right_hand_next(current, prev)
            if nxt is None:
                return GpsrOutcome(RouteStatus.DEAD_END, path)
            if (current, nxt) == first_edge:
                # Completed a face without progress or face change: the
                # target region is enclosed (GHT home perimeter).
                return GpsrOutcome(RouteStatus.PERIMETER_LOOP, path)
            # Face-change rule: does edge (current, nxt) cross the
            # (lp, target) segment closer to the target than lf?
            crossing = _segment_intersection(
                self.coords[current], self.coords[nxt], lp, target)
            if crossing is not None and \
                    _dist(crossing, target) < _dist(lf, target) - 1e-15:
                lf = crossing
                first_edge = (current, nxt)
            prev = current
            path.append(nxt)
            current = nxt
        return GpsrOutcome(RouteStatus.HOP_LIMIT, path)

    # ------------------------------------------------------------------
    def _greedy_next(self, node: int, target: Point) -> Optional[int]:
        best = None
        best_d = _dist(self.coords[node], target)
        for neighbor in self.graph.neighbors(node):
            d = _dist(self.coords[neighbor], target)
            if d < best_d:
                best_d = d
                best = neighbor
        return best

    def _is_closest_locally(self, node: int, target: Point) -> bool:
        return self._greedy_next(node, target) is None

    def _perimeter_first(self, node: int,
                         target: Point) -> Optional[int]:
        """First perimeter edge: the planar neighbor that is the first
        counterclockwise from the direction toward the target."""
        nbrs = self._angular.get(node, [])
        if not nbrs:
            return None
        origin = self.coords[node]
        ref = math.atan2(target[1] - origin[1], target[0] - origin[0])

        def ccw_gap(v):
            angle = math.atan2(self.coords[v][1] - origin[1],
                               self.coords[v][0] - origin[0])
            return (angle - ref) % (2 * math.pi)

        return min(nbrs, key=ccw_gap)

    def _right_hand_next(self, node: int,
                         prev: Optional[int]) -> Optional[int]:
        """Next edge counterclockwise from the incoming edge."""
        nbrs = self._angular.get(node, [])
        if not nbrs:
            return None
        if prev is None or prev not in nbrs:
            return nbrs[0]
        origin = self.coords[node]
        ref = math.atan2(self.coords[prev][1] - origin[1],
                         self.coords[prev][0] - origin[0])

        def ccw_gap(v):
            angle = math.atan2(self.coords[v][1] - origin[1],
                               self.coords[v][0] - origin[0])
            gap = (angle - ref) % (2 * math.pi)
            return gap if gap > 1e-12 else 2 * math.pi

        return min(nbrs, key=ccw_gap)
