"""TTL-bound storage: data placement "is not everlasting" (paper §V-B).

The paper's range-extension drain scenario rests on items becoming
invalid over time ("some data could be invalid or migrated to the
Cloud").  This service adds explicit lifetimes: items are placed with a
time-to-live against a logical clock, and a reaper sweep deletes
whatever expired — which is exactly what lets overloaded servers drain
back under their watermarks and extensions retract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core import GredNetwork, RetrievalResult


@dataclass(frozen=True)
class TtlRecord:
    """Lifetime bookkeeping for one stored item."""

    data_id: str
    expires_at: float
    copies: int


class TtlStore:
    """Expiring storage over a :class:`GredNetwork`.

    The clock is logical: the application advances it via ``now`` on
    each call or with :meth:`advance`.  Expired items stay on disk
    until the next :meth:`reap` (matching real TTL stores that expire
    lazily), but :meth:`get` already refuses them.
    """

    def __init__(self, net: GredNetwork,
                 default_ttl: float = 60.0) -> None:
        if default_ttl <= 0:
            raise ValueError(f"default_ttl must be positive, got "
                             f"{default_ttl}")
        self.net = net
        self.default_ttl = default_ttl
        self._clock = 0.0
        self._records: Dict[str, TtlRecord] = {}

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock

    def advance(self, delta: float) -> float:
        """Move the logical clock forward; returns the new time."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards ({delta})")
        self._clock += delta
        return self._clock

    # ------------------------------------------------------------------
    def put(self, data_id: str, payload=None,
            ttl: Optional[float] = None,
            entry_switch: Optional[int] = None,
            copies: int = 1,
            rng: Optional[np.random.Generator] = None) -> TtlRecord:
        """Store an item with a lifetime (``ttl`` defaults to the
        store's default)."""
        ttl = self.default_ttl if ttl is None else ttl
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.net.place(data_id, payload=payload,
                       entry_switch=entry_switch, copies=copies,
                       rng=rng)
        record = TtlRecord(data_id=data_id,
                           expires_at=self._clock + ttl,
                           copies=copies)
        self._records[data_id] = record
        return record

    def get(self, data_id: str,
            entry_switch: Optional[int] = None,
            rng: Optional[np.random.Generator] = None
            ) -> RetrievalResult:
        """Retrieve a live item; expired items read as not-found even
        before the reaper ran."""
        record = self._records.get(data_id)
        if record is None or record.expires_at <= self._clock:
            return RetrievalResult(
                data_id=data_id, found=False, payload=None,
                entry_switch=entry_switch if entry_switch is not None
                else -1,
                destination_switch=None, server_id=None,
                request_hops=0, response_hops=0,
            )
        return self.net.retrieve(data_id, entry_switch=entry_switch,
                                 copies=record.copies, rng=rng)

    def touch(self, data_id: str, ttl: Optional[float] = None) -> bool:
        """Refresh a live item's lifetime; returns False when the item
        is unknown or already expired."""
        record = self._records.get(data_id)
        if record is None or record.expires_at <= self._clock:
            return False
        ttl = self.default_ttl if ttl is None else ttl
        self._records[data_id] = TtlRecord(
            data_id=data_id, expires_at=self._clock + ttl,
            copies=record.copies)
        return True

    def reap(self) -> List[str]:
        """Delete every expired item from the network; returns their
        ids."""
        expired = [r for r in self._records.values()
                   if r.expires_at <= self._clock]
        for record in expired:
            self.net.delete(record.data_id, copies=record.copies)
            del self._records[record.data_id]
        return sorted(r.data_id for r in expired)

    def live_items(self) -> List[str]:
        return sorted(
            r.data_id for r in self._records.values()
            if r.expires_at > self._clock
        )
