"""Upper-layer services built on the public GRED API: adaptive
replication for skewed workloads and automatic range-extension
management."""

from .adaptive_replication import (
    AdaptiveReplicationService,
    ReplicationStats,
)
from .overload_manager import OverloadEvent, OverloadManager
from .ttl import TtlRecord, TtlStore

__all__ = [
    "AdaptiveReplicationService",
    "ReplicationStats",
    "OverloadManager",
    "OverloadEvent",
    "TtlStore",
    "TtlRecord",
]
