"""Adaptive replication: an upper-layer service on the GRED API.

The paper's replication mechanism (§VI) is static — the application
chooses a copy count at placement.  Real edge workloads are skewed, so
this service adapts: it tracks per-item retrieval counts and adds
copies for items whose popularity crosses a threshold, up to a cap.
Retrievals then use nearest-copy selection over however many copies an
item currently has, cutting the mean path length for the hot head of
the distribution at a bounded storage overhead.

Built purely on the public ``GredNetwork`` API (place/retrieve with
replica ids) — this is what a downstream application would write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core import GredNetwork, RetrievalResult
from ..hashing import replica_id


@dataclass
class ReplicationStats:
    """Bookkeeping the service exposes."""

    items: int = 0
    total_copies: int = 0
    promotions: int = 0

    @property
    def storage_overhead(self) -> float:
        """Extra copies per item (0.0 = no replication happened)."""
        if self.items == 0:
            return 0.0
        return self.total_copies / self.items - 1.0


class AdaptiveReplicationService:
    """Popularity-driven replication over a :class:`GredNetwork`.

    Parameters
    ----------
    net:
        The underlying GRED deployment.
    promote_threshold:
        Retrieval count at which an item earns its next copy.  Each
        further copy requires another ``promote_threshold`` accesses
        (copy ``k`` at ``k * promote_threshold`` retrievals).
    max_copies:
        Hard cap on copies per item.
    """

    def __init__(self, net: GredNetwork, promote_threshold: int = 10,
                 max_copies: int = 4) -> None:
        if promote_threshold < 1:
            raise ValueError(
                f"promote_threshold must be >= 1, got {promote_threshold}"
            )
        if max_copies < 1:
            raise ValueError(f"max_copies must be >= 1, got {max_copies}")
        self.net = net
        self.promote_threshold = promote_threshold
        self.max_copies = max_copies
        self._copies: Dict[str, int] = {}
        self._accesses: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def put(self, data_id: str, payload=None,
            entry_switch: Optional[int] = None,
            rng: Optional[np.random.Generator] = None) -> None:
        """Store an item (single primary copy)."""
        self.net.place(data_id, payload=payload,
                       entry_switch=entry_switch, copies=1, rng=rng)
        self._copies[data_id] = 1
        self._accesses.setdefault(data_id, 0)

    def get(self, data_id: str,
            entry_switch: Optional[int] = None,
            rng: Optional[np.random.Generator] = None
            ) -> RetrievalResult:
        """Retrieve an item from its nearest copy, promoting it when its
        popularity crosses the next threshold."""
        copies = self._copies.get(data_id, 1)
        result = self.net.retrieve(data_id, entry_switch=entry_switch,
                                   copies=copies, rng=rng)
        if result.found:
            count = self._accesses.get(data_id, 0) + 1
            self._accesses[data_id] = count
            self._maybe_promote(data_id, count, result)
        return result

    def _maybe_promote(self, data_id: str, count: int,
                       result: RetrievalResult) -> None:
        copies = self._copies.get(data_id, 1)
        if copies >= self.max_copies:
            return
        if count < copies * self.promote_threshold:
            return
        # Fetch the payload (we just retrieved it) and place the next
        # copy at its own hash position.
        new_copy = replica_id(data_id, copies)
        self.net._place_one(new_copy, result.payload,
                            result.entry_switch)
        self._copies[data_id] = copies + 1

    def copies_of(self, data_id: str) -> int:
        return self._copies.get(data_id, 0)

    def copies_catalog(self) -> Dict[str, int]:
        """Current target copy count of every managed item — the
        catalog a :class:`repro.faults.FailureDetector` re-replicates
        against."""
        return dict(self._copies)

    def stats(self) -> ReplicationStats:
        return ReplicationStats(
            items=len(self._copies),
            total_copies=sum(self._copies.values()),
            promotions=sum(c - 1 for c in self._copies.values()),
        )

    def evict_copies(self, data_id: str) -> int:
        """Drop an item's extra copies (keeping the primary); returns
        how many were removed.  Used when storage pressure demands it."""
        copies = self._copies.get(data_id, 1)
        removed = 0
        for i in range(1, copies):
            copy_id = replica_id(data_id, i)
            removed += self.net.delete(copy_id, copies=1)
        self._copies[data_id] = 1
        self._accesses[data_id] = 0
        return removed
