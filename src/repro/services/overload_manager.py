"""Overload manager: automatic range-extension control (paper §V-B).

The paper's mechanism is reactive — "when the upper layer application
finds that an edge server would be overloaded, the corresponding switch
sends an extending request to the control plane" — and symmetric on the
way down ("the overloaded edge server could become underloaded again").
This service implements that upper layer: it watches server utilization
and drives ``extend_range``/``retract_range`` on hysteresis thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..controlplane import ControlPlaneError
from ..core import GredError, GredNetwork
from ..obs import default_registry


@dataclass
class OverloadEvent:
    """One management action taken by a monitoring sweep."""

    action: str  # "extend" or "retract"
    switch: int
    serial: int
    utilization: float


@dataclass
class OverloadManager:
    """Hysteresis controller over server utilization.

    Parameters
    ----------
    net:
        The managed deployment (servers should have capacities; servers
        without a capacity are never considered overloaded).
    high_watermark:
        Utilization at or above which a server's range is extended.
    low_watermark:
        Utilization at or below which an active extension is retracted
        (when everything fits back).
    """

    net: GredNetwork
    high_watermark: float = 0.85
    low_watermark: float = 0.4
    _extended: Set[Tuple[int, int]] = field(default_factory=set)
    #: Actions taken by the most recent :meth:`sweep` (exposed via
    #: ``gred stats --json``).
    last_events: List[OverloadEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high <= 1, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )

    def sweep(self) -> List[OverloadEvent]:
        """One monitoring pass; returns the actions taken.

        Every action (and every refused action) lands in telemetry:
        ``services.overload_extends`` / ``services.overload_retracts``
        count the successes, ``services.overload_extend_failures`` /
        ``services.overload_retract_failures`` the refusals, and each
        action appends a structured ``overload_action`` event.
        """
        registry = default_registry()
        events: List[OverloadEvent] = []
        for switch in self.net.switch_ids():
            for server in self.net.server_map.get(switch, []):
                if server.capacity is None or server.capacity == 0:
                    continue
                # Bounded, nonzero capacity: the utilization property
                # is a plain float here (no None/inf sentinels).
                utilization = server.utilization
                key = (switch, server.serial)
                if key not in self._extended \
                        and utilization >= self.high_watermark:
                    try:
                        self.net.extend_range(switch, server.serial)
                    except (GredError, ControlPlaneError):
                        # No capacity anywhere nearby.
                        if registry.enabled:
                            registry.counter(
                                "services.overload_extend_failures"
                            ).inc()
                        continue
                    self._extended.add(key)
                    events.append(OverloadEvent(
                        "extend", switch, server.serial, utilization))
                elif key in self._extended \
                        and utilization <= self.low_watermark:
                    try:
                        self.net.retract_range(switch, server.serial)
                    except GredError:
                        # Redirected data does not fit back yet.
                        if registry.enabled:
                            registry.counter(
                                "services.overload_retract_failures"
                            ).inc()
                        continue
                    self._extended.discard(key)
                    events.append(OverloadEvent(
                        "retract", switch, server.serial, utilization))
        if registry.enabled:
            registry.counter("services.overload_sweeps").inc()
            for event in events:
                name = ("services.overload_extends"
                        if event.action == "extend"
                        else "services.overload_retracts")
                registry.counter(name).inc()
                registry.event("overload_action", action=event.action,
                               switch=event.switch, serial=event.serial,
                               utilization=event.utilization)
            registry.gauge("services.overload_active_extensions").set(
                len(self._extended))
        self.last_events = events
        return events

    def active_extensions(self) -> List[Tuple[int, int]]:
        return sorted(self._extended)
