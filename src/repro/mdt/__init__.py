"""Distributed multi-hop DT maintenance (the MDT protocol the paper's
guaranteed-delivery argument builds on, Section II-B)."""

from .node import MdtNode
from .system import MdtError, MdtSystem

__all__ = ["MdtNode", "MdtSystem", "MdtError"]
