"""The distributed MDT system: joins, leaves and stabilization.

Message-level simulation of the MDT maintenance protocol:

* **Join** — the new node greedily walks (over current DT neighbor
  links) to the existing node closest to its position, pulls that
  node's candidate set, and then iteratively exchanges candidate sets
  with its computed DT neighbors until its own neighbor set stops
  changing.  Finally it notifies its neighbors, which recompute — by
  the locality of Delaunay insertion, only the new node's neighbors can
  be affected.
* **Leave** — neighbors of the departed node drop it and exchange
  candidate sets among themselves until stable (the hole is re-covered
  by its former neighborhood).
* **Stabilize** — global anti-entropy rounds (neighbor pairs exchange
  candidate sets, everyone recomputes) until a fixpoint; used after
  bulk changes and by the validation tests.

Every candidate-set transfer counts as one protocol message, so the
tests can check the join cost stays local (no flooding).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from ..geometry import DelaunayTriangulation, Point, squared_distance
from .node import MdtNode


class MdtError(Exception):
    """Raised on invalid MDT operations."""


class MdtSystem:
    """A set of MDT nodes plus the maintenance protocol."""

    def __init__(self) -> None:
        self.nodes: Dict[int, MdtNode] = {}
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # protocol primitives
    # ------------------------------------------------------------------
    def _exchange(self, src: int, dst: int) -> bool:
        """dst pulls src's candidate set (one message).  Returns True
        when dst learned something."""
        self.messages_sent += 1
        return self.nodes[dst].learn(self.nodes[src].knowledge())

    def _greedy_locate(self, position: Point,
                       start: Optional[int] = None) -> int:
        """Walk over DT neighbor links to the node closest to
        ``position`` (the MDT search used to bootstrap a join)."""
        if not self.nodes:
            raise MdtError("no nodes in the system")
        current = start if start is not None else next(iter(self.nodes))
        while True:
            node = self.nodes[current]
            best = current
            best_d = squared_distance(node.position, position)
            for neighbor in node.neighbors:
                d = squared_distance(self.nodes[neighbor].position,
                                     position)
                if d < best_d:
                    best_d = d
                    best = neighbor
            if best == current:
                return current
            self.messages_sent += 1  # forwarding the search message
            current = best

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join(self, node_id: int, position: Point,
             via: Optional[int] = None) -> MdtNode:
        """A node joins the distributed DT.

        ``via`` is an arbitrary existing contact node (any member works;
        defaults to the first).  Raises on duplicate ids or coincident
        positions.
        """
        if node_id in self.nodes:
            raise MdtError(f"node {node_id} already joined")
        for other in self.nodes.values():
            if squared_distance(other.position, position) == 0.0:
                raise MdtError(
                    f"position {position} already taken by node "
                    f"{other.node_id}"
                )
        node = MdtNode(node_id, position)
        self.nodes[node_id] = node
        if len(self.nodes) == 1:
            return node
        anchor = self._greedy_locate(position, start=via)
        self._exchange(anchor, node_id)
        node.recompute_neighbors()
        # Pull candidate sets from newly discovered neighbors until the
        # local view stops changing.
        queried: Set[int] = set()
        for _ in range(4 * len(self.nodes) + 8):
            pending = [n for n in node.neighbors if n not in queried]
            if not pending:
                break
            for neighbor in pending:
                queried.add(neighbor)
                self._exchange(neighbor, node_id)
            node.recompute_neighbors()
        # Notify the affected region: the new node's neighbors learn of
        # it (and of each other, through the new node's knowledge).
        for neighbor in sorted(node.neighbors):
            self._exchange(node_id, neighbor)
            self.nodes[neighbor].recompute_neighbors()
        return node

    def leave(self, node_id: int) -> None:
        """A node departs; its former neighborhood repairs the hole."""
        if node_id not in self.nodes:
            raise MdtError(f"unknown node {node_id}")
        departed = self.nodes.pop(node_id)
        affected = sorted(departed.neighbors)
        for member in self.nodes.values():
            member.forget(node_id)
        # The former neighbors exchange candidate sets pairwise so every
        # witness needed to re-triangulate the hole is locally known.
        for a in affected:
            for b in affected:
                if a != b and a in self.nodes and b in self.nodes:
                    self._exchange(a, b)
        for a in affected:
            if a in self.nodes:
                self.nodes[a].recompute_neighbors()

    # ------------------------------------------------------------------
    # convergence
    # ------------------------------------------------------------------
    def stabilize(self, max_rounds: int = 64) -> int:
        """Anti-entropy until fixpoint; returns rounds used.

        Each round: every node pulls the candidate sets of its current
        neighbors, then everyone recomputes.  Terminates when no
        neighbor set changes.
        """
        for round_index in range(max_rounds):
            for node_id in sorted(self.nodes):
                for neighbor in sorted(self.nodes[node_id].neighbors):
                    if neighbor in self.nodes:
                        self._exchange(neighbor, node_id)
            changed = False
            for node_id in sorted(self.nodes):
                if self.nodes[node_id].recompute_neighbors():
                    changed = True
            if not changed:
                return round_index + 1
        raise MdtError(f"did not stabilize in {max_rounds} rounds")

    # ------------------------------------------------------------------
    # introspection / validation
    # ------------------------------------------------------------------
    def neighbor_map(self) -> Dict[int, Set[int]]:
        return {node_id: set(node.neighbors)
                for node_id, node in self.nodes.items()}

    def is_consistent(self) -> bool:
        """Neighbor relation symmetric across nodes."""
        nbrs = self.neighbor_map()
        return all(
            node in nbrs.get(other, set())
            for node, owned in nbrs.items()
            for other in owned
        )

    def matches_centralized_dt(self) -> bool:
        """Distributed neighbor sets equal the centralized DT's."""
        ids = sorted(self.nodes)
        if len(ids) <= 1:
            return all(not self.nodes[i].neighbors for i in ids)
        points = [self.nodes[i].position for i in ids]
        dt = DelaunayTriangulation(points, rng=np.random.default_rng(0))
        reference = {
            ids[v]: {ids[u] for u in nbrs}
            for v, nbrs in dt.neighbor_map().items()
        }
        return self.neighbor_map() == reference
