"""A node of the distributed Multi-hop Delaunay Triangulation (MDT).

The paper's guaranteed-delivery foundation (Section II-B) is the MDT
protocol of Lam & Qian: every node maintains a *candidate set* of known
nodes and derives its DT neighbor set locally, as its neighborhood in
the Delaunay triangulation of the candidate set.  The key soundness
property: once a node's candidate set contains all of its true DT
neighbors (and the witnesses that invalidate non-edges), the local
computation yields exactly the true neighbor set.

GRED centralizes this in the SDN controller; this module reproduces the
*distributed* variant so the reproduction also covers the substrate the
paper cites, and so the two constructions can be cross-validated.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from ..geometry import DelaunayTriangulation, Point


class MdtNode:
    """One participant in the distributed DT."""

    def __init__(self, node_id: int, position: Point) -> None:
        self.node_id = node_id
        self.position = (float(position[0]), float(position[1]))
        #: Known nodes and their positions (always includes self).
        self.candidates: Dict[int, Point] = {node_id: self.position}
        #: Current belief about the DT neighbor set.
        self.neighbors: Set[int] = set()

    def learn(self, nodes: Dict[int, Point]) -> bool:
        """Merge peer knowledge into the candidate set.

        Returns True when anything new was learned.
        """
        changed = False
        for node_id, position in nodes.items():
            if node_id not in self.candidates:
                self.candidates[node_id] = (float(position[0]),
                                            float(position[1]))
                changed = True
        return changed

    def forget(self, node_id: int) -> None:
        """Remove a departed node from local state."""
        self.candidates.pop(node_id, None)
        self.neighbors.discard(node_id)

    def recompute_neighbors(self) -> bool:
        """Recompute the neighbor set from the candidate set.

        Builds the Delaunay triangulation of all candidates and takes
        this node's neighborhood in it.  Returns True when the neighbor
        set changed.
        """
        ids = sorted(self.candidates)
        if len(ids) == 1:
            new_neighbors: Set[int] = set()
        else:
            points = [self.candidates[i] for i in ids]
            dt = DelaunayTriangulation(
                points, rng=np.random.default_rng(0))
            index = ids.index(self.node_id)
            new_neighbors = {
                ids[v] for v in dt.neighbor_map()[index]
            }
        changed = new_neighbors != self.neighbors
        self.neighbors = new_neighbors
        return changed

    def knowledge(self) -> Dict[int, Point]:
        """Snapshot of the candidate set (what this node shares with
        peers on a neighbor-set exchange)."""
        return dict(self.candidates)
