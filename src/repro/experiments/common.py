"""Shared plumbing for the figure-reproduction experiments.

Every experiment module exposes a ``run_*`` function that returns a list
of row dictionaries (one per x-axis point and protocol) plus a
``print_table`` helper, so the same code serves the benchmarks, the
examples and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core import GredNetwork
from ..chord import ChordNetwork
from ..edge import attach_uniform
from ..graph import Graph
from ..topology import brite_waxman_graph


def build_topology(num_switches: int, min_degree: int,
                   seed: int) -> Graph:
    """The standard experiment topology: BRITE-style Waxman."""
    topology, _ = brite_waxman_graph(
        num_switches, min_degree=min_degree,
        rng=np.random.default_rng(seed),
    )
    return topology


def build_gred(topology: Graph, servers_per_switch: int,
               cvt_iterations: int, seed: int) -> GredNetwork:
    """A GRED network with fresh uniform servers."""
    servers = attach_uniform(topology.nodes(),
                             servers_per_switch=servers_per_switch)
    return GredNetwork(
        topology, servers, cvt_iterations=cvt_iterations, seed=seed
    )


def build_chord(topology: Graph, servers_per_switch: int,
                virtual_nodes: int = 1) -> ChordNetwork:
    """A Chord network with fresh uniform servers."""
    servers = attach_uniform(topology.nodes(),
                             servers_per_switch=servers_per_switch)
    return ChordNetwork(topology, servers, virtual_nodes=virtual_nodes)


def gred_load_vector(net: GredNetwork, num_items: int,
                     prefix: str = "data") -> List[int]:
    """Per-server loads after (virtually) placing ``num_items`` items.

    Uses the closed-form destination (closest switch + ``H(d) mod s``)
    instead of routing each packet, which is equivalent by the delivery
    guarantee and keeps million-item sweeps fast.  The equivalence is
    covered by tests (routing and closed form agree on every item).
    The nearest-switch assignment is vectorized with numpy; ties (zero
    measure for hashed positions) resolve to the lowest index, matching
    the deterministic x-then-y rule up to relabeling.
    """
    from ..geometry import assign_to_sites
    from ..hashing import data_position, sha256_digest

    participants = net.controller.dt_participants()
    sites = [net.controller.positions[p] for p in participants]
    ids = [f"{prefix}-{i}" for i in range(num_items)]
    positions = np.array([data_position(d) for d in ids])
    owners = assign_to_sites(positions, sites)
    counts: Dict[tuple, int] = {}
    for data_id, owner_idx in zip(ids, owners):
        switch = participants[int(owner_idx)]
        digest = sha256_digest(data_id)
        serial = int.from_bytes(digest[:8], "big") % len(
            net.server_map[switch])
        key = (switch, serial)
        counts[key] = counts.get(key, 0) + 1
    loads = []
    for switch in sorted(net.server_map):
        for server in net.server_map[switch]:
            loads.append(counts.get((switch, server.serial), 0))
    return loads


def chord_load_vector(net: ChordNetwork, num_items: int,
                      prefix: str = "data") -> List[int]:
    """Per-server loads for Chord under the same workload."""
    counts: Dict[str, int] = {}
    for i in range(num_items):
        node = net.ring.store_node(f"{prefix}-{i}")
        counts[node.owner] = counts.get(node.owner, 0) + 1
    from ..chord import server_name

    loads = []
    for switch in sorted(net.server_map):
        for server in net.server_map[switch]:
            loads.append(counts.get(server_name(switch, server.serial), 0))
    return loads


def print_table(rows: Sequence[Dict], columns: Iterable[str],
                title: str) -> None:
    """Print rows as a fixed-width table (the bench harness output)."""
    columns = list(columns)
    print(f"\n== {title} ==")
    header = "  ".join(f"{c:>14}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                cells.append(f"{value:>14.3f}")
            else:
                cells.append(f"{str(value):>14}")
        print("  ".join(cells))
