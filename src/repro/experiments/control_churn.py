"""X6 — control-plane update cost of a node join.

When an edge node joins, how much installed routing state must change
across the network?

* **GRED**: the controller computes the join position locally and the
  DT insertion only affects the new switch's neighborhood (paper §VI:
  a new node "only affects its neighbors").  We diff the semantic
  per-switch state (position, greedy candidates, relay tuples, ports)
  before and after the join.
* **Chord**: a new ring node takes over part of its successor's key
  range and appears in the finger tables of O(log n) other nodes; we
  diff all finger tables before and after.

Both counts are *semantic* diffs of installed state, independent of how
each implementation schedules its updates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from ..chord import ChordRing
from ..edge import EdgeServer, attach_uniform
from .common import build_topology, print_table


def _gred_switch_state(switch) -> FrozenSet:
    """Canonical, comparable snapshot of one switch's installed state."""
    table = switch.table
    entries = set()
    entries.add(("pos", switch.position))
    for neighbor in table.physical_neighbors():
        entries.add(("port", neighbor, table.physical_port(neighbor)))
    for neighbor, pos in switch.physical_neighbor_positions.items():
        entries.add(("phys-cand", neighbor, pos))
    for neighbor, pos in switch.dt_neighbor_positions.items():
        entries.add(("dt-cand", neighbor, pos))
    for entry in table.virtual_entries():
        entries.add(("vl", entry.sour, entry.pred, entry.succ,
                     entry.dest))
    for ext in table.extensions():
        entries.add(("ext", ext.local_serial, ext.target_switch,
                     ext.target_serial))
    return frozenset(entries)


def _diff_states(before: Dict[int, FrozenSet],
                 after: Dict[int, FrozenSet]) -> Tuple[int, int]:
    """(switches touched, entries added+removed) between two snapshots,
    ignoring switches present on only one side (the joiner itself)."""
    touched = 0
    entries = 0
    for switch_id in before:
        if switch_id not in after:
            continue
        delta = len(before[switch_id] ^ after[switch_id])
        if delta:
            touched += 1
            entries += delta
    return touched, entries


def _chord_finger_state(ring: ChordRing) -> Dict[str, Tuple]:
    """owner -> tuple of (position id, finger target owners...)."""
    state: Dict[str, Tuple] = {}
    for node in ring.ring_nodes():
        fingers = tuple(f.owner for f in ring.finger_table(node.node_id))
        state.setdefault(node.owner, ())
        state[node.owner] = state[node.owner] + ((node.node_id,)
                                                 + fingers,)
    return state


def run_control_churn(
    num_switches: int = 50,
    servers_per_switch: int = 4,
    num_joins: int = 5,
    seed: int = 0,
) -> List[Dict]:
    """Average installed-state changes per join, GRED vs Chord."""
    from ..controlplane import Controller, ControllerConfig

    rows = []
    # ---------------- GRED ------------------------------------------
    topology = build_topology(num_switches, 3, seed)
    controller = Controller(
        topology, attach_uniform(topology.nodes(), servers_per_switch),
        config=ControllerConfig(cvt_iterations=30, seed=seed),
    )
    rng = np.random.default_rng(seed + 1)
    touched_total = 0
    entries_total = 0
    for j in range(num_joins):
        before = {
            sid: _gred_switch_state(sw)
            for sid, sw in controller.switches.items()
        }
        new_id = 1000 + j
        peers = [int(p) for p in rng.choice(num_switches, size=2,
                                            replace=False)]
        controller.add_switch(
            new_id, links=peers,
            servers=[EdgeServer(new_id, s)
                     for s in range(servers_per_switch)],
        )
        after = {
            sid: _gred_switch_state(sw)
            for sid, sw in controller.switches.items()
        }
        touched, entries = _diff_states(before, after)
        touched_total += touched
        entries_total += entries
    rows.append({
        "protocol": "GRED",
        "avg_nodes_touched": touched_total / num_joins,
        "avg_entries_changed": entries_total / num_joins,
        "population": num_switches,
    })
    # ---------------- Chord -----------------------------------------
    members = {
        f"server-{sw}-{s}": sw
        for sw in range(num_switches)
        for s in range(servers_per_switch)
    }
    touched_total = 0
    entries_total = 0
    for j in range(num_joins):
        ring_before = ChordRing(members, bits=32)
        state_before = _chord_finger_state(ring_before)
        members[f"server-{1000 + j}-0"] = 1000 + j
        ring_after = ChordRing(members, bits=32)
        state_after = _chord_finger_state(ring_after)
        touched = 0
        entries = 0
        for owner, fingers in state_before.items():
            new_fingers = state_after.get(owner)
            if new_fingers is None or new_fingers == fingers:
                continue
            touched += 1
            for old_pos, new_pos in zip(fingers, new_fingers):
                entries += sum(
                    1 for a, b in zip(old_pos, new_pos) if a != b
                )
        touched_total += touched
        entries_total += entries
    rows.append({
        "protocol": "Chord",
        "avg_nodes_touched": touched_total / num_joins,
        "avg_entries_changed": entries_total / num_joins,
        "population": num_switches * servers_per_switch,
    })
    return rows


def main() -> None:
    print_table(run_control_churn(),
                ["protocol", "avg_nodes_touched",
                 "avg_entries_changed", "population"],
                "X6: installed-state churn per node join")


if __name__ == "__main__":
    main()
