"""X6 — control-plane update cost of a node join.

When an edge node joins, how much installed routing state must change
across the network?

* **GRED**: the controller computes the join position locally and the
  DT insertion only affects the new switch's neighborhood (paper §VI:
  a new node "only affects its neighbors").  We diff the semantic
  per-switch state (position, greedy candidates, relay tuples, ports)
  before and after the join.
* **Chord**: a new ring node takes over part of its successor's key
  range and appears in the finger tables of O(log n) other nodes; we
  diff all finger tables before and after.

Both counts are *semantic* diffs of installed state, independent of how
each implementation schedules its updates.

Since the control plane moved to the plan/diff/apply pipeline, the
experiment also counts what the controller *actually ships*: every
southbound message is recorded on a channel, so the reported delta is
the real control traffic, not just the semantic diff.
:func:`run_churn_scaling` runs the same join workload across network
sizes and reports, per size, the delta message count against the
pre-refactor full-reinstall message count — the locality claim of the
refactor (delta flat in n, full reinstall O(n)) as a committed JSON
report (``gred churn``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..chord import ChordRing
from ..edge import EdgeServer, attach_uniform
from .common import build_topology, print_table

#: Format marker of the ``gred churn`` JSON report.
CHURN_FORMAT = "gred-churn-v1"


def _gred_switch_state(switch) -> FrozenSet:
    """Canonical, comparable snapshot of one switch's installed state."""
    table = switch.table
    entries = set()
    entries.add(("pos", switch.position))
    for neighbor in table.physical_neighbors():
        entries.add(("port", neighbor, table.physical_port(neighbor)))
    for neighbor, pos in switch.physical_neighbor_positions.items():
        entries.add(("phys-cand", neighbor, pos))
    for neighbor, pos in switch.dt_neighbor_positions.items():
        entries.add(("dt-cand", neighbor, pos))
    for entry in table.virtual_entries():
        entries.add(("vl", entry.sour, entry.pred, entry.succ,
                     entry.dest))
    for ext in table.extensions():
        entries.add(("ext", ext.local_serial, ext.target_switch,
                     ext.target_serial))
    return frozenset(entries)


def _diff_states(before: Dict[int, FrozenSet],
                 after: Dict[int, FrozenSet]) -> Tuple[int, int]:
    """(switches touched, entries added+removed) between two snapshots,
    ignoring switches present on only one side (the joiner itself)."""
    touched = 0
    entries = 0
    for switch_id in before:
        if switch_id not in after:
            continue
        delta = len(before[switch_id] ^ after[switch_id])
        if delta:
            touched += 1
            entries += delta
    return touched, entries


def _chord_finger_state(ring: ChordRing) -> Dict[str, Tuple]:
    """owner -> tuple of (position id, finger target owners...)."""
    state: Dict[str, Tuple] = {}
    for node in ring.ring_nodes():
        fingers = tuple(f.owner for f in ring.finger_table(node.node_id))
        state.setdefault(node.owner, ())
        state[node.owner] = state[node.owner] + ((node.node_id,)
                                                 + fingers,)
    return state


def run_control_churn(
    num_switches: int = 50,
    servers_per_switch: int = 4,
    num_joins: int = 5,
    seed: int = 0,
) -> List[Dict]:
    """Average installed-state changes per join, GRED vs Chord."""
    from ..controlplane import Controller, ControllerConfig

    from ..controlplane import RecordingChannel
    from ..controlplane.southbound import Probe

    rows = []
    # ---------------- GRED ------------------------------------------
    topology = build_topology(num_switches, 3, seed)
    controller = Controller(
        topology, attach_uniform(topology.nodes(), servers_per_switch),
        config=ControllerConfig(cvt_iterations=30, seed=seed),
    )
    # Record the actual southbound traffic of every join, so the row
    # reports what the controller ships, not just the semantic diff.
    channel = RecordingChannel()
    controller.southbound_channel = channel
    rng = np.random.default_rng(seed + 1)
    touched_total = 0
    entries_total = 0
    messages_total = 0
    switches_messaged_total = 0
    for j in range(num_joins):
        before = {
            sid: _gred_switch_state(sw)
            for sid, sw in controller.switches.items()
        }
        new_id = 1000 + j
        peers = [int(p) for p in rng.choice(num_switches, size=2,
                                            replace=False)]
        channel.clear()
        controller.add_switch(
            new_id, links=peers,
            servers=[EdgeServer(new_id, s)
                     for s in range(servers_per_switch)],
        )
        # Exclude liveness probes: the row reports rule traffic, and a
        # failure-detector sweep sharing the channel must not inflate
        # the join's apparent cost.
        messages_total += channel.count(exclude=(Probe,))
        switches_messaged_total += len(
            channel.per_switch(exclude=(Probe,)))
        after = {
            sid: _gred_switch_state(sw)
            for sid, sw in controller.switches.items()
        }
        touched, entries = _diff_states(before, after)
        touched_total += touched
        entries_total += entries
    rows.append({
        "protocol": "GRED",
        "avg_nodes_touched": touched_total / num_joins,
        "avg_entries_changed": entries_total / num_joins,
        "avg_messages_sent": messages_total / num_joins,
        "avg_switches_messaged": switches_messaged_total / num_joins,
        "population": num_switches,
    })
    # ---------------- Chord -----------------------------------------
    members = {
        f"server-{sw}-{s}": sw
        for sw in range(num_switches)
        for s in range(servers_per_switch)
    }
    touched_total = 0
    entries_total = 0
    for j in range(num_joins):
        ring_before = ChordRing(members, bits=32)
        state_before = _chord_finger_state(ring_before)
        members[f"server-{1000 + j}-0"] = 1000 + j
        ring_after = ChordRing(members, bits=32)
        state_after = _chord_finger_state(ring_after)
        touched = 0
        entries = 0
        for owner, fingers in state_before.items():
            new_fingers = state_after.get(owner)
            if new_fingers is None or new_fingers == fingers:
                continue
            touched += 1
            for old_pos, new_pos in zip(fingers, new_fingers):
                entries += sum(
                    1 for a, b in zip(old_pos, new_pos) if a != b
                )
        touched_total += touched
        entries_total += entries
    rows.append({
        "protocol": "Chord",
        "avg_nodes_touched": touched_total / num_joins,
        "avg_entries_changed": entries_total / num_joins,
        "population": num_switches * servers_per_switch,
    })
    return rows


def run_churn_scaling(
    sizes: Sequence[int] = (50, 100, 200, 400),
    servers_per_switch: int = 2,
    num_joins: int = 5,
    cvt_iterations: int = 30,
    seed: int = 0,
    regions: int = 1,
) -> Dict:
    """Churn locality across network sizes: delta vs full reinstall.

    For each size, a network is built, the request fast path is warmed,
    and ``num_joins`` switches join one by one while a recording
    channel counts the actual southbound messages.  Each row reports:

    * ``avg_delta_messages`` / ``avg_switches_touched`` — what the
      plan/diff/apply pipeline actually shipped (neighborhood-sized,
      flat in n);
    * ``avg_full_reinstall_messages`` — what the pre-refactor
      clear-and-reinstall path would have shipped (O(n));
    * ``avg_semantic_*`` — the installed-state diff of surviving
      switches (the paper's §VI locality claim);
    * ``index_builds_during_joins`` — full routing-index rebuilds
      triggered by the joins (0 = updated in place);
    * ``router_reused`` / ``avg_router_recompiles`` — whether the
      compiled fast-path router object survived all joins and how many
      per-switch recompilations each join cost;
    * ``route_cache_survival`` — fraction of cached routes that
      survived the joins' scoped eviction;
    * ``untouched_generations_preserved`` — no un-messaged switch had
      its generation counter bumped.

    With ``regions > 1`` the same workload runs against a
    :class:`~repro.controlplane.FederatedNetwork` over a metro
    topology: joins round-robin across regions, per-region recording
    channels split the southbound traffic into home vs foreign, and
    each row gains ``per_region_touched`` (per join event: which
    regions saw messages and how many switches each) plus
    ``avg_foreign_touched`` / ``avg_foreign_messages`` — the
    cross-shard locality gate of ``gred churn --max-foreign-touched``
    (both must be exactly zero).  The fast-path cache fields are the
    monolith's and are ``None`` in federated rows.
    """
    from ..controlplane import RecordingChannel, compile_messages
    from ..controlplane.southbound import Probe
    from ..core import GredNetwork

    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    if regions > 1:
        return _federated_churn_scaling(
            sizes, servers_per_switch, num_joins, cvt_iterations,
            seed, regions)
    rows: List[Dict] = []
    for num_switches in sizes:
        topology = build_topology(num_switches, 3, seed)
        net = GredNetwork(
            topology, servers_per_switch=servers_per_switch,
            cvt_iterations=cvt_iterations, seed=seed,
        )
        controller = net.controller
        channel = RecordingChannel()
        controller.southbound_channel = channel
        # Warm the scoped caches so the joins have something to
        # preserve: the routing index, the compiled router, and a
        # populated route cache.
        controller.closest_switch((0.5, 0.5))
        ids = [f"churn/{num_switches}/{i}" for i in range(256)]
        net.place_many(ids, rng=np.random.default_rng(seed + 2))
        fast = getattr(net, "_fastpath", None)
        router_before = fast.router if fast is not None else None
        compiles_before = (router_before.switch_compiles
                           if router_before is not None else 0)
        cached_before = (set(fast.routes) if fast is not None
                         else set())
        index_builds_before = controller.index_builds
        rng = np.random.default_rng(seed + 1)
        delta_messages: List[int] = []
        touched_counts: List[int] = []
        full_messages: List[int] = []
        semantic_touched: List[int] = []
        semantic_entries: List[int] = []
        generations_preserved = True
        for j in range(num_joins):
            before = {
                sid: _gred_switch_state(sw)
                for sid, sw in controller.switches.items()
            }
            generations_before = controller.generations
            new_id = 100_000 + j
            peers = [int(p) for p in rng.choice(num_switches, size=2,
                                                replace=False)]
            channel.clear()
            controller.add_switch(
                new_id, links=peers,
                servers=[EdgeServer(new_id, s)
                         for s in range(servers_per_switch)],
            )
            delta_messages.append(channel.count(exclude=(Probe,)))
            touched = set(channel.per_switch(exclude=(Probe,)))
            touched_counts.append(len(touched))
            # The pre-refactor path cleared and reinstalled every
            # switch: its cost is the full compiled message sequence
            # over the post-join network.
            full_messages.append(len(compile_messages(
                controller.topology, controller.positions,
                controller.dt_adjacency())))
            after = {
                sid: _gred_switch_state(sw)
                for sid, sw in controller.switches.items()
            }
            touched_sem, entries_sem = _diff_states(before, after)
            semantic_touched.append(touched_sem)
            semantic_entries.append(entries_sem)
            generations_after = controller.generations
            for sid, generation in generations_before.items():
                if sid not in touched and \
                        generations_after.get(sid) != generation:
                    generations_preserved = False
            controller.closest_switch((0.25, 0.75))
        # Force the scoped fast-path update and measure what survived.
        state = net._fast_state()
        router_reused = (router_before is not None
                         and state.router is router_before)
        recompiles = (state.router.switch_compiles - compiles_before
                      if router_reused else None)
        surviving = len(cached_before & set(state.routes))
        survival = (surviving / len(cached_before)
                    if cached_before else None)
        rows.append({
            "switches": num_switches,
            "regions": 1,
            "avg_delta_messages": _mean(delta_messages),
            "avg_switches_touched": _mean(touched_counts),
            "avg_foreign_touched": 0.0,
            "avg_foreign_messages": 0.0,
            "avg_full_reinstall_messages": _mean(full_messages),
            "avg_semantic_switches_touched": _mean(semantic_touched),
            "avg_semantic_entries_changed": _mean(semantic_entries),
            "index_builds_during_joins": (controller.index_builds
                                          - index_builds_before),
            "router_reused": router_reused,
            "avg_router_recompiles": (
                recompiles / num_joins if recompiles is not None
                else None),
            "route_cache_survival": survival,
            "untouched_generations_preserved": generations_preserved,
        })
    return {
        "format": CHURN_FORMAT,
        "sizes": list(sizes),
        "servers_per_switch": servers_per_switch,
        "num_joins": num_joins,
        "cvt_iterations": cvt_iterations,
        "seed": seed,
        "regions": regions,
        "rows": rows,
    }


def _federated_churn_scaling(
    sizes: Sequence[int],
    servers_per_switch: int,
    num_joins: int,
    cvt_iterations: int,
    seed: int,
    regions: int,
) -> Dict:
    """The ``regions > 1`` arm of :func:`run_churn_scaling`.

    Each size becomes a metro federation (``size // regions`` switches
    per region); every join homes into one region and the per-region
    recording channels prove the cross-shard locality claim: all
    southbound traffic lands in the home region, zero elsewhere.
    """
    from ..controlplane import (FederatedNetwork, compile_messages)
    from ..controlplane.southbound import Probe
    from ..topology import federated_topology

    rows: List[Dict] = []
    for num_switches in sizes:
        per_region = max(4, num_switches // regions)
        topology, assignment = federated_topology(
            regions, per_region, min_degree=3, seed=seed)
        fed = FederatedNetwork(
            topology, assignment=assignment,
            servers_per_switch=servers_per_switch,
            cvt_iterations=cvt_iterations, seed=seed)
        channels = fed.controller.attach_channels()
        index_builds_before = {
            rid: shard.controller.index_builds
            for rid, shard in fed.shards.items()
        }
        # Warm every shard's planes so the joins exercise the scoped
        # invalidation paths, exactly like the monolithic arm.
        ids = [f"churn/{num_switches}/{i}" for i in range(256)]
        fed.place_many(ids, rng=np.random.default_rng(seed + 2))
        rng = np.random.default_rng(seed + 1)
        region_ids = sorted(fed.shards)
        delta_messages: List[int] = []
        touched_counts: List[int] = []
        foreign_touched: List[int] = []
        foreign_messages: List[int] = []
        full_messages: List[int] = []
        semantic_touched: List[int] = []
        semantic_entries: List[int] = []
        join_events: List[Dict] = []
        generations_preserved = True
        for j in range(num_joins):
            rid = region_ids[j % regions]
            home = fed.shard(rid).net.controller
            before = {
                sid: _gred_switch_state(sw)
                for sid, sw in home.switches.items()
            }
            generations_before = home.generations
            members = fed.shard(rid).net.switch_ids()
            peers = [int(members[int(v)]) for v in
                     rng.choice(len(members), size=2, replace=False)]
            for channel in channels.values():
                channel.clear()
            new_id = 100_000 + j
            fed.add_switch(
                new_id, peers,
                servers=[EdgeServer(new_id, s)
                         for s in range(servers_per_switch)],
            )
            per_region_touched = {
                str(other): len(channels[other].per_switch(
                    exclude=(Probe,)))
                for other in region_ids
                if channels[other].count(exclude=(Probe,))
            }
            delta_messages.append(
                channels[rid].count(exclude=(Probe,)))
            touched = set(channels[rid].per_switch(exclude=(Probe,)))
            touched_counts.append(len(touched))
            foreign_touched.append(sum(
                count for other, count in per_region_touched.items()
                if other != str(rid)))
            foreign_messages.append(sum(
                channels[other].count(exclude=(Probe,))
                for other in region_ids if other != rid))
            join_events.append({
                "join": j,
                "home_region": rid,
                "touched_per_region": per_region_touched,
            })
            # The full-reinstall oracle is per home shard: the
            # pre-refactor path would clear and reinstall that whole
            # region (never the federation — regions were the unit of
            # blast radius even before the delta pipeline).
            full_messages.append(len(compile_messages(
                home.topology, home.positions, home.dt_adjacency())))
            after = {
                sid: _gred_switch_state(sw)
                for sid, sw in home.switches.items()
            }
            touched_sem, entries_sem = _diff_states(before, after)
            semantic_touched.append(touched_sem)
            semantic_entries.append(entries_sem)
            generations_after = home.generations
            for sid, generation in generations_before.items():
                if sid not in touched and \
                        generations_after.get(sid) != generation:
                    generations_preserved = False
        index_builds = sum(
            shard.controller.index_builds - index_builds_before[rid]
            for rid, shard in fed.shards.items())
        rows.append({
            "switches": num_switches,
            "regions": regions,
            "avg_delta_messages": _mean(delta_messages),
            "avg_switches_touched": _mean(touched_counts),
            "avg_foreign_touched": _mean(foreign_touched),
            "avg_foreign_messages": _mean(foreign_messages),
            "avg_full_reinstall_messages": _mean(full_messages),
            "avg_semantic_switches_touched": _mean(semantic_touched),
            "avg_semantic_entries_changed": _mean(semantic_entries),
            "index_builds_during_joins": index_builds,
            "router_reused": None,
            "avg_router_recompiles": None,
            "route_cache_survival": None,
            "untouched_generations_preserved": generations_preserved,
            "join_events": join_events,
        })
    return {
        "format": CHURN_FORMAT,
        "sizes": list(sizes),
        "servers_per_switch": servers_per_switch,
        "num_joins": num_joins,
        "cvt_iterations": cvt_iterations,
        "seed": seed,
        "regions": regions,
        "rows": rows,
    }


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def main() -> None:
    print_table(run_control_churn(),
                ["protocol", "avg_nodes_touched",
                 "avg_entries_changed", "avg_messages_sent",
                 "avg_switches_messaged", "population"],
                "X6: installed-state churn per node join")
    print_table(run_churn_scaling()["rows"],
                ["switches", "avg_delta_messages",
                 "avg_switches_touched",
                 "avg_full_reinstall_messages",
                 "route_cache_survival"],
                "X6b: delta vs full-reinstall control traffic")


if __name__ == "__main__":
    main()
