"""Ablation experiments (A1-A3 in DESIGN.md) for the design decisions.

A1 — C-regulation sample count: convergence speed of the CVT energy for
different Monte-Carlo sample counts (the paper fixes 1000 and notes more
samples converge in fewer iterations at higher per-iteration cost).

A2 — Embedding quality vs routing stretch: how Kruskal stress of the
M-position embedding relates to greedy stretch, and what C-regulation
does to both.

A3 — Chord virtual nodes: the classical load-balance lever the paper
mentions; more virtual nodes improve Chord's max/avg at the price of
larger finger state.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..embedding import c_regulation, kruskal_stress, m_position
from ..graph import all_pairs_hop_matrix
from ..metrics import max_avg_ratio, measure_gred_stretch, summarize
from .common import (
    build_chord,
    build_gred,
    build_topology,
    chord_load_vector,
    print_table,
)


def run_cvt_samples(
    sample_counts: Sequence[int] = (100, 500, 1000, 5000),
    num_switches: int = 50,
    iterations: int = 60,
    seed: int = 0,
) -> List[Dict]:
    """A1: CVT energy trajectory vs Monte-Carlo sample count.

    Energies are evaluated at fixed iteration checkpoints against one
    common, independent evaluation sample set — the per-iteration
    estimates inside :func:`c_regulation` use each run's own samples
    and are not comparable across sample counts.
    """
    from ..geometry import cvt_energy, sample_unit_square

    topology = build_topology(num_switches, 3, seed)
    matrix, _ = all_pairs_hop_matrix(topology)
    sites = m_position(matrix)
    eval_samples = sample_unit_square(
        50_000, np.random.default_rng(seed + 99))
    checkpoints = [c for c in (10, 30, iterations) if c <= iterations]
    rows = []
    for samples in sample_counts:
        row = {"samples": samples}
        for checkpoint in checkpoints:
            result = c_regulation(
                sites, iterations=checkpoint,
                samples_per_iteration=samples,
                rng=np.random.default_rng(seed + samples),
            )
            key = ("energy_final" if checkpoint == iterations
                   else f"energy_at_{checkpoint}")
            row[key] = cvt_energy(result.sites, eval_samples)
        if "energy_final" not in row:
            row["energy_final"] = None
        rows.append(row)
    return rows


def run_embedding_quality(
    sizes: Sequence[int] = (20, 50, 80),
    num_items: int = 100,
    seed: int = 0,
) -> List[Dict]:
    """A2: embedding stress vs greedy routing stretch, with/without CVT."""
    rows = []
    for size in sizes:
        topology = build_topology(size, 3, seed + size)
        matrix, order = all_pairs_hop_matrix(topology)
        for label, t in (("GRED-NoCVT", 0), ("GRED", 50)):
            net = build_gred(topology, 10, cvt_iterations=t, seed=seed)
            points = [net.controller.positions[node] for node in order]
            stress = kruskal_stress(matrix, points)
            stretch = summarize(measure_gred_stretch(
                net, num_items, np.random.default_rng(seed + 3)
            )).mean
            rows.append({
                "switches": size,
                "protocol": label,
                "stress": stress,
                "stretch_mean": stretch,
            })
    return rows


def run_chord_virtual_nodes(
    virtual_node_counts: Sequence[int] = (1, 2, 4, 8, 16),
    num_switches: int = 50,
    num_items: int = 50_000,
    seed: int = 0,
) -> List[Dict]:
    """A3: Chord load balance and table size vs virtual nodes."""
    topology = build_topology(num_switches, 3, seed)
    rows = []
    for v in virtual_node_counts:
        chord = build_chord(topology, 10, virtual_nodes=v)
        rows.append({
            "virtual_nodes": v,
            "max_avg": max_avg_ratio(chord_load_vector(chord, num_items)),
            "avg_finger_entries": chord.average_finger_table_size() * v,
        })
    return rows


def run_embedding_methods(
    sizes: Sequence[int] = (20, 50, 80),
    num_items: int = 100,
    seed: int = 0,
) -> List[Dict]:
    """A4: classical MDS vs SMACOF stress majorization.

    Compares the two embedding back ends on distance preservation
    (Kruskal stress) and the routing stretch of the resulting GRED
    network (both without CVT, to isolate the embedding itself).
    """
    from ..controlplane import ControllerConfig
    from ..core import GredNetwork
    from ..edge import attach_uniform

    rows = []
    for size in sizes:
        topology = build_topology(size, 3, seed + size)
        matrix, order = all_pairs_hop_matrix(topology)
        for method in ("classical", "smacof"):
            servers = attach_uniform(topology.nodes(), 10)
            net = GredNetwork.__new__(GredNetwork)
            from ..hashing import data_position
            from ..controlplane import Controller

            net._position_fn = data_position
            net.controller = Controller(
                topology, servers,
                config=ControllerConfig(cvt_iterations=0, seed=seed,
                                        embedding=method),
            )
            points = [net.controller.positions[node] for node in order]
            stretch = summarize(measure_gred_stretch(
                net, num_items, np.random.default_rng(seed + 3))).mean
            rows.append({
                "switches": size,
                "embedding": method,
                "stress": kruskal_stress(matrix, points),
                "stretch_mean": stretch,
            })
    return rows


def run_topology_families(
    num_items: int = 100,
    load_items: int = 20_000,
    seed: int = 0,
) -> List[Dict]:
    """A5: robustness of the headline results across topology families.

    The paper evaluates on BRITE/Waxman only; this ablation re-runs the
    stretch and load-balance comparison on structurally different
    families (denser Waxman, grid, random-regular, unit-disk geometric)
    to show the conclusions aren't an artifact of one generator.
    """
    from ..core import GredNetwork
    from ..chord import ChordNetwork
    from ..edge import attach_uniform
    from ..metrics import (
        max_avg_ratio,
        measure_chord_stretch,
        measure_gred_stretch,
    )
    from ..topology import (
        grid_graph,
        random_geometric_graph,
        random_regular_graph,
    )
    from .common import chord_load_vector, gred_load_vector

    families = []
    families.append(("waxman-d3", build_topology(64, 3, seed)))
    families.append(("waxman-d6", build_topology(64, 6, seed + 1)))
    families.append(("grid-8x8", grid_graph(8, 8)))
    families.append((
        "regular-4",
        random_regular_graph(64, 4, rng=np.random.default_rng(seed)),
    ))
    geometric, _ = random_geometric_graph(
        64, 0.22, rng=np.random.default_rng(seed + 2))
    families.append(("geometric", geometric))

    rows = []
    for label, topology in families:
        gred = GredNetwork(topology,
                           attach_uniform(topology.nodes(), 5),
                           cvt_iterations=50, seed=seed)
        chord = ChordNetwork(topology,
                             attach_uniform(topology.nodes(), 5))
        gred_s = summarize(measure_gred_stretch(
            gred, num_items, np.random.default_rng(seed + 9))).mean
        chord_s = summarize(measure_chord_stretch(
            chord, num_items, np.random.default_rng(seed + 9))).mean
        rows.append({
            "family": label,
            "gred_stretch": gred_s,
            "chord_stretch": chord_s,
            "gred_max_avg": max_avg_ratio(
                gred_load_vector(gred, load_items)),
            "chord_max_avg": max_avg_ratio(
                chord_load_vector(chord, load_items)),
        })
    return rows


def main() -> None:
    print_table(run_cvt_samples(),
                ["samples", "energy_at_10", "energy_at_30",
                 "energy_final"],
                "A1: CVT convergence vs sample count")
    print_table(run_embedding_quality(),
                ["switches", "protocol", "stress", "stretch_mean"],
                "A2: embedding stress vs routing stretch")
    print_table(run_chord_virtual_nodes(),
                ["virtual_nodes", "max_avg", "avg_finger_entries"],
                "A3: Chord virtual nodes vs load balance")
    print_table(run_embedding_methods(),
                ["switches", "embedding", "stress", "stretch_mean"],
                "A4: classical MDS vs SMACOF")
    print_table(run_topology_families(),
                ["family", "gred_stretch", "chord_stretch",
                 "gred_max_avg", "chord_max_avg"],
                "A5: robustness across topology families")


if __name__ == "__main__":
    main()
