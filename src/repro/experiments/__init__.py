"""Experiment harness: one runner per paper figure plus ablations.

Run everything from the command line::

    python -m repro.experiments.fig7_testbed
    python -m repro.experiments.fig8_response
    python -m repro.experiments.fig9_stretch
    python -m repro.experiments.fig10_load
    python -m repro.experiments.ablations
"""

from .common import (
    build_chord,
    build_gred,
    build_topology,
    chord_load_vector,
    gred_load_vector,
    print_table,
)
from .fig7_testbed import run_fig7a, run_fig7b
from .fig8_response import run_fig8
from .fig9_stretch import run_fig9a, run_fig9b, run_fig9c, run_fig9d
from .fig10_load import run_fig10a, run_fig10b, run_fig10c
from .ablations import (
    run_chord_virtual_nodes,
    run_cvt_samples,
    run_embedding_methods,
    run_embedding_quality,
    run_topology_families,
)
from .control_churn import run_control_churn
from .convergence import run_convergence
from .durability import run_durability
from .federation import run_federation_scaling, single_region_differential
from .extensions import (
    run_adaptive_replication,
    run_failure_availability,
    run_ght_comparison,
    run_link_utilization,
    run_mobility,
    run_overflow_protection,
    run_saturation,
    run_state_stretch_tradeoff,
)

__all__ = [
    "build_topology",
    "build_gred",
    "build_chord",
    "gred_load_vector",
    "chord_load_vector",
    "print_table",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_fig9a",
    "run_fig9b",
    "run_fig9c",
    "run_fig9d",
    "run_fig10a",
    "run_fig10b",
    "run_fig10c",
    "run_cvt_samples",
    "run_embedding_quality",
    "run_chord_virtual_nodes",
    "run_mobility",
    "run_failure_availability",
    "run_state_stretch_tradeoff",
    "run_link_utilization",
    "run_embedding_methods",
    "run_saturation",
    "run_control_churn",
    "run_convergence",
    "run_durability",
    "run_federation_scaling",
    "single_region_differential",
    "run_adaptive_replication",
    "run_ght_comparison",
    "run_topology_families",
    "run_overflow_protection",
]
