"""Experiments E1/E2 — the paper's testbed results (Fig. 7).

Fig. 7(a): average routing stretch of GRED and GRED-NoCVT on the
6-switch / 12-server prototype is close to 1.

Fig. 7(b): GRED achieves a visibly lower ``max/avg`` than GRED-NoCVT on
the same prototype.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import GredNetwork
from ..edge import attach_uniform
from ..metrics import max_avg_ratio, measure_gred_stretch, summarize
from ..topology import (
    TESTBED_SERVERS_PER_SWITCH,
    testbed_topology,
)
from .common import gred_load_vector, print_table


def _testbed_network(cvt_iterations: int, seed: int = 0) -> GredNetwork:
    topology = testbed_topology()
    servers = attach_uniform(
        topology.nodes(),
        servers_per_switch=TESTBED_SERVERS_PER_SWITCH,
    )
    return GredNetwork(topology, servers,
                       cvt_iterations=cvt_iterations, seed=seed)


def run_fig7a(num_items: int = 100, seed: int = 0) -> List[Dict]:
    """Average routing stretch, testbed topology, GRED vs GRED-NoCVT."""
    rows = []
    for label, iterations in (("GRED-NoCVT", 0), ("GRED", 50)):
        net = _testbed_network(iterations, seed=seed)
        samples = measure_gred_stretch(
            net, num_items, np.random.default_rng(seed + 10)
        )
        summary = summarize(samples)
        rows.append({
            "protocol": label,
            "stretch_mean": summary.mean,
            "stretch_ci_low": summary.ci_low,
            "stretch_ci_high": summary.ci_high,
            "samples": summary.count,
        })
    return rows


def run_fig7b(num_items: int = 1000, seed: int = 0) -> List[Dict]:
    """Load balance (max/avg), testbed topology, GRED vs GRED-NoCVT."""
    rows = []
    for label, iterations in (("GRED-NoCVT", 0), ("GRED", 50)):
        net = _testbed_network(iterations, seed=seed)
        loads = gred_load_vector(net, num_items)
        rows.append({
            "protocol": label,
            "max_avg": max_avg_ratio(loads),
            "items": num_items,
            "servers": len(loads),
        })
    return rows


def main() -> None:
    print_table(
        run_fig7a(),
        ["protocol", "stretch_mean", "stretch_ci_low", "stretch_ci_high"],
        "Fig 7(a): testbed routing stretch",
    )
    print_table(
        run_fig7b(),
        ["protocol", "max_avg", "items", "servers"],
        "Fig 7(b): testbed load balance (max/avg)",
    )


if __name__ == "__main__":
    main()
