"""Experiments E4-E7 — large-scale routing stretch and table sizes
(Fig. 9).

Fig. 9(a): routing stretch vs network size — Chord > 3.5 everywhere,
GRED and GRED-NoCVT < ~1.5 and flat.

Fig. 9(b): routing stretch vs the minimum switch degree (100 switches,
1000 servers) — modest impact; slight decrease with more ports.

Fig. 9(c): GRED vs extended-GRED — extension adds a small amount of
stretch, still far below Chord.

Fig. 9(d): average forwarding-table entries per switch vs network size —
grows only modestly (near-constant DT degree ~6 plus physical ports and
relay tuples).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..controlplane import table_entry_counts
from ..graph import hop_count
from ..metrics import (
    measure_chord_stretch,
    measure_gred_stretch,
    summarize,
)
from .common import build_chord, build_gred, build_topology, print_table

DEFAULT_SIZES = (20, 40, 60, 80, 100)
DEFAULT_DEGREES = (3, 4, 5, 6, 7, 8, 9, 10)
SERVERS_PER_SWITCH = 10
NUM_ITEMS = 100


def run_fig9a(
    sizes: Sequence[int] = DEFAULT_SIZES,
    min_degree: int = 3,
    num_items: int = NUM_ITEMS,
    seed: int = 0,
) -> List[Dict]:
    """Routing stretch vs network size for Chord / GRED / GRED-NoCVT."""
    rows = []
    for size in sizes:
        topology = build_topology(size, min_degree, seed + size)
        gred = build_gred(topology, SERVERS_PER_SWITCH,
                          cvt_iterations=50, seed=seed)
        nocvt = build_gred(topology, SERVERS_PER_SWITCH,
                           cvt_iterations=0, seed=seed)
        chord = build_chord(topology, SERVERS_PER_SWITCH)
        for label, samples in (
            ("Chord", measure_chord_stretch(
                chord, num_items, np.random.default_rng(seed + 1))),
            ("GRED", measure_gred_stretch(
                gred, num_items, np.random.default_rng(seed + 1))),
            ("GRED-NoCVT", measure_gred_stretch(
                nocvt, num_items, np.random.default_rng(seed + 1))),
        ):
            summary = summarize(samples)
            rows.append({
                "switches": size,
                "protocol": label,
                "stretch_mean": summary.mean,
                "ci_low": summary.ci_low,
                "ci_high": summary.ci_high,
            })
    return rows


def run_fig9b(
    degrees: Sequence[int] = DEFAULT_DEGREES,
    num_switches: int = 100,
    num_items: int = NUM_ITEMS,
    seed: int = 0,
) -> List[Dict]:
    """Routing stretch vs minimum switch degree (100 switches)."""
    rows = []
    for degree in degrees:
        topology = build_topology(num_switches, degree, seed + degree)
        gred = build_gred(topology, SERVERS_PER_SWITCH,
                          cvt_iterations=50, seed=seed)
        nocvt = build_gred(topology, SERVERS_PER_SWITCH,
                           cvt_iterations=0, seed=seed)
        chord = build_chord(topology, SERVERS_PER_SWITCH)
        for label, samples in (
            ("Chord", measure_chord_stretch(
                chord, num_items, np.random.default_rng(seed + 1))),
            ("GRED", measure_gred_stretch(
                gred, num_items, np.random.default_rng(seed + 1))),
            ("GRED-NoCVT", measure_gred_stretch(
                nocvt, num_items, np.random.default_rng(seed + 1))),
        ):
            summary = summarize(samples)
            rows.append({
                "min_degree": degree,
                "protocol": label,
                "stretch_mean": summary.mean,
                "ci_low": summary.ci_low,
                "ci_high": summary.ci_high,
            })
    return rows


def run_fig9c(
    sizes: Sequence[int] = DEFAULT_SIZES,
    min_degree: int = 3,
    num_items: int = NUM_ITEMS,
    seed: int = 0,
) -> List[Dict]:
    """GRED vs extended-GRED routing stretch vs network size.

    Extended-GRED models every placement being redirected by a range
    extension: the data ends at a server on a physical neighbor of the
    destination switch, adding the extra hop(s) to the route, and the
    stretch baseline becomes the shortest path to that neighbor.
    """
    rows = []
    for size in sizes:
        topology = build_topology(size, min_degree, seed + size)
        gred = build_gred(topology, SERVERS_PER_SWITCH,
                          cvt_iterations=50, seed=seed)
        rng = np.random.default_rng(seed + 1)
        plain: List[float] = []
        extended: List[float] = []
        switches = gred.switch_ids()
        for i in range(num_items):
            data_id = f"ext-item-{i}"
            entry = switches[int(rng.integers(0, len(switches)))]
            route = gred.route_for(data_id, entry)
            dest = route.destination_switch
            shortest = hop_count(topology, entry, dest)
            if shortest > 0:
                plain.append(route.physical_hops / shortest)
            # Extension target: the lowest-id physical neighbor (the
            # controller's deterministic choice for equal capacities).
            neighbor = min(topology.neighbors(dest))
            ext_hops = route.physical_hops + hop_count(topology, dest,
                                                       neighbor)
            ext_shortest = hop_count(topology, entry, neighbor)
            if ext_shortest > 0:
                extended.append(ext_hops / ext_shortest)
        rows.append({
            "switches": size,
            "protocol": "GRED",
            "stretch_mean": summarize(plain).mean,
        })
        rows.append({
            "switches": size,
            "protocol": "extended-GRED",
            "stretch_mean": summarize(extended).mean,
        })
    return rows


def run_fig9d(
    sizes: Sequence[int] = DEFAULT_SIZES,
    min_degree: int = 3,
    seed: int = 0,
) -> List[Dict]:
    """Average forwarding-table entries per switch vs network size."""
    rows = []
    for size in sizes:
        topology = build_topology(size, min_degree, seed + size)
        gred = build_gred(topology, SERVERS_PER_SWITCH,
                          cvt_iterations=50, seed=seed)
        counts = table_entry_counts(gred.controller.switches.values())
        summary = summarize([float(c) for c in counts])
        rows.append({
            "switches": size,
            "avg_entries": summary.mean,
            "ci_low": summary.ci_low,
            "ci_high": summary.ci_high,
            "max_entries": summary.maximum,
        })
    return rows


def main() -> None:
    print_table(run_fig9a(),
                ["switches", "protocol", "stretch_mean", "ci_low",
                 "ci_high"],
                "Fig 9(a): routing stretch vs network size")
    print_table(run_fig9b(),
                ["min_degree", "protocol", "stretch_mean", "ci_low",
                 "ci_high"],
                "Fig 9(b): routing stretch vs minimum degree")
    print_table(run_fig9c(),
                ["switches", "protocol", "stretch_mean"],
                "Fig 9(c): GRED vs extended-GRED stretch")
    print_table(run_fig9d(),
                ["switches", "avg_entries", "ci_low", "ci_high",
                 "max_entries"],
                "Fig 9(d): forwarding-table entries per switch")


if __name__ == "__main__":
    main()
