"""Experiment E3 — average response delay on the testbed (Fig. 8).

The paper places data items on the prototype and measures the average
response delay of retrieval requests, finding that the delay is low and
changes only modestly with the number of requests, for both GRED and
GRED-NoCVT.  The reproduction substitutes a discrete-event simulation
with FIFO server queues (DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core import GredNetwork
from ..edge import attach_uniform
from ..simulation import LatencyModel, ResponseDelaySimulator
from ..topology import TESTBED_SERVERS_PER_SWITCH, testbed_topology
from ..workloads import sequential_ids, uniform_retrieval_trace
from .common import print_table

#: The request counts on the paper's x-axis.
DEFAULT_REQUEST_COUNTS = (100, 200, 400, 600, 800, 1000)

#: Injection window for the trace (seconds).
TRACE_DURATION = 1.0


def run_fig8(
    request_counts: Sequence[int] = DEFAULT_REQUEST_COUNTS,
    num_items: int = 200,
    seed: int = 0,
    latency: LatencyModel = None,
) -> List[Dict]:
    """Average response delay vs number of retrieval requests."""
    latency = latency or LatencyModel()
    rows = []
    items = sequential_ids(num_items, prefix="testbed-data")
    for label, iterations in (("GRED-NoCVT", 0), ("GRED", 50)):
        topology = testbed_topology()
        servers = attach_uniform(
            topology.nodes(),
            servers_per_switch=TESTBED_SERVERS_PER_SWITCH,
        )
        net = GredNetwork(topology, servers,
                          cvt_iterations=iterations, seed=seed)
        rng = np.random.default_rng(seed + 20)
        for item in items:
            net.place(item, payload=b"x", rng=rng)
        for count in request_counts:
            trace = uniform_retrieval_trace(
                items, net.switch_ids(), count, TRACE_DURATION,
                np.random.default_rng(seed + count),
            )
            simulator = ResponseDelaySimulator(net, latency)
            simulator.run(trace)
            rows.append({
                "protocol": label,
                "requests": count,
                "avg_delay_ms": simulator.average_response_delay() * 1e3,
                "avg_request_hops": sum(
                    c.request_hops for c in simulator.completed
                ) / len(simulator.completed),
            })
    return rows


def main() -> None:
    print_table(
        run_fig8(),
        ["protocol", "requests", "avg_delay_ms", "avg_request_hops"],
        "Fig 8: average response delay vs number of retrieval requests",
    )


if __name__ == "__main__":
    main()
