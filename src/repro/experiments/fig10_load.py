"""Experiments E8-E10 — large-scale load balance (Figs. 10/11).

Fig. 10(a): ``max/avg`` vs network size (200-1000 servers) — Chord grows
with size; GRED(T=10) and GRED(T=50) stay low, T=50 below T=10.

Fig. 10(b): ``max/avg`` vs the number of data items (100k-1M, 1000
servers) — Chord worst (>6 in the paper), GRED(T=10) < 2.5,
GRED(T=50) < 2.

Fig. 10(c): ``max/avg`` vs the C-regulation iteration count ``T`` —
Chord and GRED-NoCVT are flat (independent of T); GRED decreases with T
and flattens around T ~ 70.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..metrics import max_avg_ratio
from .common import (
    build_chord,
    build_gred,
    build_topology,
    chord_load_vector,
    gred_load_vector,
    print_table,
)

SERVERS_PER_SWITCH = 10
DEFAULT_SERVER_COUNTS = (200, 400, 600, 800, 1000)
DEFAULT_DATA_COUNTS = (100_000, 250_000, 500_000, 750_000, 1_000_000)
DEFAULT_ITERATIONS = (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def run_fig10a(
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS,
    num_items: int = 100_000,
    min_degree: int = 3,
    seed: int = 0,
) -> List[Dict]:
    """Load balance vs network size: Chord vs GRED(T=10) vs GRED(T=50)."""
    rows = []
    for servers in server_counts:
        num_switches = servers // SERVERS_PER_SWITCH
        topology = build_topology(num_switches, min_degree, seed + servers)
        chord = build_chord(topology, SERVERS_PER_SWITCH)
        rows.append({
            "servers": servers,
            "protocol": "Chord",
            "max_avg": max_avg_ratio(
                chord_load_vector(chord, num_items)),
        })
        for t in (10, 50):
            gred = build_gred(topology, SERVERS_PER_SWITCH,
                              cvt_iterations=t, seed=seed)
            rows.append({
                "servers": servers,
                "protocol": f"GRED (T={t})",
                "max_avg": max_avg_ratio(
                    gred_load_vector(gred, num_items)),
            })
    return rows


def run_fig10b(
    data_counts: Sequence[int] = DEFAULT_DATA_COUNTS,
    num_servers: int = 1000,
    min_degree: int = 3,
    seed: int = 0,
) -> List[Dict]:
    """Load balance vs the amount of data (1000 servers)."""
    num_switches = num_servers // SERVERS_PER_SWITCH
    topology = build_topology(num_switches, min_degree, seed + 7)
    chord = build_chord(topology, SERVERS_PER_SWITCH)
    gred10 = build_gred(topology, SERVERS_PER_SWITCH,
                        cvt_iterations=10, seed=seed)
    gred50 = build_gred(topology, SERVERS_PER_SWITCH,
                        cvt_iterations=50, seed=seed)
    rows = []
    for count in data_counts:
        rows.append({
            "items": count,
            "protocol": "Chord",
            "max_avg": max_avg_ratio(chord_load_vector(chord, count)),
        })
        rows.append({
            "items": count,
            "protocol": "GRED (T=10)",
            "max_avg": max_avg_ratio(gred_load_vector(gred10, count)),
        })
        rows.append({
            "items": count,
            "protocol": "GRED (T=50)",
            "max_avg": max_avg_ratio(gred_load_vector(gred50, count)),
        })
    return rows


def run_fig10c(
    iterations: Sequence[int] = DEFAULT_ITERATIONS,
    num_servers: int = 1000,
    num_items: int = 100_000,
    min_degree: int = 3,
    seed: int = 0,
) -> List[Dict]:
    """Load balance vs the C-regulation iteration count ``T``.

    Chord and GRED-NoCVT do not depend on T, so they are computed once
    and repeated across the axis, exactly as the flat lines in the
    paper's figure.
    """
    num_switches = num_servers // SERVERS_PER_SWITCH
    topology = build_topology(num_switches, min_degree, seed + 7)
    chord = build_chord(topology, SERVERS_PER_SWITCH)
    chord_value = max_avg_ratio(chord_load_vector(chord, num_items))
    nocvt = build_gred(topology, SERVERS_PER_SWITCH,
                       cvt_iterations=0, seed=seed)
    nocvt_value = max_avg_ratio(gred_load_vector(nocvt, num_items))
    rows = []
    for t in iterations:
        rows.append({"T": t, "protocol": "Chord",
                     "max_avg": chord_value})
        rows.append({"T": t, "protocol": "GRED-NoCVT",
                     "max_avg": nocvt_value})
        gred = build_gred(topology, SERVERS_PER_SWITCH,
                          cvt_iterations=t, seed=seed)
        rows.append({
            "T": t,
            "protocol": "GRED",
            "max_avg": max_avg_ratio(gred_load_vector(gred, num_items)),
        })
    return rows


def main() -> None:
    print_table(run_fig10a(),
                ["servers", "protocol", "max_avg"],
                "Fig 10(a): load balance vs network size")
    print_table(run_fig10b(),
                ["items", "protocol", "max_avg"],
                "Fig 10(b): load balance vs amount of data")
    print_table(run_fig10c(),
                ["T", "protocol", "max_avg"],
                "Fig 10(c): load balance vs iterations T")


if __name__ == "__main__":
    main()
