"""Federation scaling: flat per-shard cost as the edge grows.

The federated control plane's claim is that every per-shard cost —
embedding recompute, join handling, southbound traffic — depends on the
*region* size, not the total switch count, while churn stays perfectly
region-local (zero southbound messages into any foreign region).  This
experiment grows the federation from 1k to 5k switches at a constant
region size and measures, per total size:

* per-shard full-recompute wall time (flat: the shard never sees the
  other regions);
* per-join southbound message count and touched switches in the
  joining region (flat: PR 5's delta pipeline, now per shard);
* southbound messages observed in *foreign* regions per join (must be
  exactly zero — each join mutates one shard controller);
* cross-region request behavior: fraction of requests whose home
  region differs from the entry region and the gateway-overlay hop
  overhead they pay;
* a single-region differential: a 1-region federation and a
  monolithic :class:`~repro.core.GredNetwork`, same topology and
  seed, compared record-for-record and message-for-message.

``gred federate`` renders the report and gates on the foreign-message
count (``--max-foreign-touched``, default 0).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..controlplane import FederatedNetwork, RecordingChannel
from ..controlplane.southbound import Probe
from ..core import GredNetwork
from ..edge import EdgeServer
from ..topology import federated_topology
from .common import build_topology, print_table

#: Format marker of the ``gred federate`` JSON report.
FEDERATE_FORMAT = "gred-federate-v1"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def single_region_differential(num_switches: int = 40,
                               servers_per_switch: int = 3,
                               cvt_iterations: int = 10,
                               num_requests: int = 64,
                               seed: int = 0) -> Dict:
    """Byte-identity of a 1-region federation vs the monolith.

    Same topology, servers and seed; compares batch placement records,
    retrieval results, the load vector, and the southbound message
    stream of one join.  All four must be exactly equal — the 1-region
    federation *is* the monolithic controller.
    """
    mono = GredNetwork(build_topology(num_switches, 3, seed),
                       servers_per_switch=servers_per_switch,
                       cvt_iterations=cvt_iterations, seed=seed)
    fed = FederatedNetwork(build_topology(num_switches, 3, seed),
                           num_regions=1,
                           servers_per_switch=servers_per_switch,
                           cvt_iterations=cvt_iterations, seed=seed)
    ids = [f"diff/{i}" for i in range(num_requests)]
    placed_equal = (
        mono.place_many(ids, copies=2, rng=np.random.default_rng(seed))
        == fed.place_many(ids, copies=2,
                          rng=np.random.default_rng(seed)))
    retrieved_equal = (
        mono.retrieve_many(ids, copies=2,
                           rng=np.random.default_rng(seed + 1))
        == fed.retrieve_many(ids, copies=2,
                             rng=np.random.default_rng(seed + 1)))
    mono_channel = RecordingChannel()
    mono.controller.southbound_channel = mono_channel
    fed_channels = fed.controller.attach_channels()
    joiner = 10_000
    mono.add_switch(joiner, links=[0, 1],
                    servers=[EdgeServer(joiner, 0)])
    fed.add_switch(joiner, links=[0, 1],
                   servers=[EdgeServer(joiner, 0)])
    rid = next(iter(fed_channels))
    messages_equal = (mono_channel.messages
                      == fed_channels[rid].messages)
    return {
        "switches": num_switches,
        "placements_identical": placed_equal,
        "retrievals_identical": retrieved_equal,
        "load_identical": mono.load_vector() == fed.load_vector(),
        "join_messages_identical": messages_equal,
    }


def run_federation_scaling(
    total_switches: Sequence[int] = (1000, 5000),
    switches_per_region: int = 250,
    min_regions: int = 4,
    servers_per_switch: int = 2,
    cvt_iterations: int = 8,
    num_joins: int = 8,
    num_requests: int = 256,
    copies: int = 2,
    seed: int = 0,
) -> Dict:
    """The federation scaling report (see module docstring).

    Region count grows with the total (``total // switches_per_region``,
    at least ``min_regions``); the per-shard metrics must stay flat
    across rows while the totals grow 5x.
    """
    rows: List[Dict] = []
    for total in total_switches:
        regions = max(min_regions, total // switches_per_region)
        per_region = max(4, total // regions)
        topology, assignment = federated_topology(
            regions, per_region, min_degree=3, seed=seed)
        fed = FederatedNetwork(
            topology, assignment=assignment,
            servers_per_switch=servers_per_switch,
            cvt_iterations=cvt_iterations, seed=seed)
        # Per-shard full recompute: the cost of rebuilding one region's
        # embedding + DT + rules from scratch, which in the monolith
        # grew with the global n.
        recompute_seconds: List[float] = []
        for rid in sorted(fed.shards):
            start = time.perf_counter()
            fed.shards[rid].controller.recompute()
            recompute_seconds.append(time.perf_counter() - start)
        channels = fed.controller.attach_channels()
        # Warm each shard's planes with a batch round before churn.
        ids = [f"fed/{total}/{i}" for i in range(num_requests)]
        digests = fed.shards[sorted(fed.shards)[0]].net.prehash(
            ids, copies)
        place_results = fed.place_many(
            ids, copies=copies, rng=np.random.default_rng(seed + 2),
            digests=digests)
        # Joins round-robin across regions: per-join home cost and the
        # foreign-region message count (the churn-isolation claim).
        rng = np.random.default_rng(seed + 1)
        home_messages: List[int] = []
        home_touched: List[int] = []
        foreign_messages_total = 0
        join_seconds: List[float] = []
        for j in range(num_joins):
            rid = sorted(fed.shards)[j % regions]
            members = fed.shards[rid].net.switch_ids()
            peers = [int(members[int(v)]) for v in
                     rng.choice(len(members), size=2, replace=False)]
            for channel in channels.values():
                channel.clear()
            new_id = 1_000_000 + j
            start = time.perf_counter()
            fed.add_switch(new_id, peers,
                           servers=[EdgeServer(new_id, s)
                                    for s in range(servers_per_switch)])
            join_seconds.append(time.perf_counter() - start)
            home_messages.append(
                channels[rid].count(exclude=(Probe,)))
            home_touched.append(
                len(channels[rid].per_switch(exclude=(Probe,))))
            foreign_messages_total += fed.controller.foreign_messages(
                channels, rid)
        # Request-path behavior across the overlay.
        retrieved = fed.retrieve_many(
            ids, copies=copies, rng=np.random.default_rng(seed + 3),
            digests=digests)
        found = sum(1 for r in retrieved if r.found)
        cross = 0
        cross_hops: List[int] = []
        intra_hops: List[int] = []
        for result in place_results:
            for record in result.records:
                entry_region = fed.region_of(record.entry_switch)
                home = fed.region_of(record.destination_switch)
                if home != entry_region:
                    cross += 1
                    cross_hops.append(record.physical_hops)
                else:
                    intra_hops.append(record.physical_hops)
        total_records = cross + len(intra_hops)
        rows.append({
            "total_switches": total + num_joins,
            "regions": regions,
            "switches_per_region": per_region,
            "mean_shard_recompute_s": round(_mean(recompute_seconds),
                                            4),
            "max_shard_recompute_s": round(max(recompute_seconds), 4),
            "avg_join_messages": _mean(home_messages),
            "avg_join_switches_touched": _mean(home_touched),
            "avg_join_seconds": round(_mean(join_seconds), 4),
            "foreign_messages": foreign_messages_total,
            "cross_region_fraction": round(cross / total_records, 4),
            "avg_intra_place_hops": round(_mean(intra_hops), 3),
            "avg_cross_place_hops": round(_mean(cross_hops), 3),
            "retrieved_found": found,
            "requests": len(ids),
        })
    return {
        "format": FEDERATE_FORMAT,
        "total_switches": list(total_switches),
        "switches_per_region": switches_per_region,
        "min_regions": min_regions,
        "servers_per_switch": servers_per_switch,
        "cvt_iterations": cvt_iterations,
        "num_joins": num_joins,
        "num_requests": num_requests,
        "copies": copies,
        "seed": seed,
        "single_region_differential": single_region_differential(
            seed=seed),
        "rows": rows,
    }


def main() -> None:
    report = run_federation_scaling(total_switches=(120, 240),
                                    switches_per_region=30,
                                    cvt_iterations=5, num_joins=4,
                                    num_requests=96)
    print_table(report["rows"],
                ["total_switches", "regions",
                 "mean_shard_recompute_s", "avg_join_messages",
                 "foreign_messages", "cross_region_fraction"],
                "Federation scaling: flat per-shard cost")
    print("single-region differential:",
          report["single_region_differential"])


if __name__ == "__main__":
    main()
