"""X8 — self-healing storage under crash, partition and delete churn.

The paper's placement/retrieval services assume replicas, once placed,
stay where ``H(d || i)`` put them.  This experiment drops that
assumption: a deterministic fault schedule crashes a fraction of the
edge servers, partitions the data plane, and drives a delete-heavy
write workload through the degraded network (hinted handoff parks the
writes whose homes are unreachable).  After heal and repair, the
storage plane is *divergent* — stale replicas, undrained hints,
resurrection candidates — and the claim under test is that one
``net.scrub()`` (versioned replicas + tombstones + hash-range
anti-entropy, :mod:`repro.core.scrub`) converges every reachable
replica to a fault-free oracle's catalog: **zero** divergent ranges,
**zero** resurrected deletes, **zero** lost items.

The committed ``DURABILITY_report.json`` (CI artifact of the ``gred
scrub`` command) records the fault schedule, the divergence before and
after the scrub, the scrub's own accounting, and the oracle verdicts.
Everything is deterministic under the seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.scrub import storage_divergence
from ..edge import NO_STAMP, EdgeServer
from ..faults import FailureDetector, FaultInjector
from ..hashing import parse_replica_id, replica_id
from ..obs import MetricsRegistry, default_registry, set_default_registry
from .common import build_gred, build_topology

#: Format marker of the ``gred scrub`` JSON report.
DURABILITY_FORMAT = "gred-durability-v1"

#: Oracle sentinel for a deleted item.
_DELETED = object()


def _live_holders(net, fault) -> Dict[str, Set[Tuple[int, int]]]:
    """Per replica id, the alive servers currently holding it."""
    holders: Dict[str, Set[Tuple[int, int]]] = {}
    for switch in sorted(net.server_map):
        for server in net.server_map[switch]:
            if fault is not None and \
                    not fault.server_alive(server.server_id):
                continue
            for copy_id in server.stored_ids():
                holders.setdefault(copy_id, set()).add(server.server_id)
    return holders


def _best_stamp_elsewhere(net, fault,
                          exclude: Tuple[int, int]) -> Dict[str, tuple]:
    """Per base item, the newest stamp visible anywhere *except* on the
    ``exclude`` server: live replicas (even misplaced ones left behind
    by degraded-mode rerouting) and parked hints both count."""
    best: Dict[str, tuple] = {}
    for switch in sorted(net.server_map):
        for server in net.server_map[switch]:
            if server.server_id == exclude:
                continue
            if fault is not None and \
                    not fault.server_alive(server.server_id):
                continue
            for copy_id in server.stored_ids():
                base, _ = parse_replica_id(copy_id)
                stamp = server.stamp_of(copy_id) or NO_STAMP
                if stamp > best.get(base, NO_STAMP):
                    best[base] = stamp
            for hint in server.hints():
                base, _ = parse_replica_id(hint.copy_id)
                if hint.stamp > best.get(base, NO_STAMP):
                    best[base] = hint.stamp
    return best


def _crash_safe(net, injector, candidate: EdgeServer,
                catalog: Dict[str, int]) -> bool:
    """Whether crashing ``candidate`` keeps every item at >= 1 live
    replica, keeps every item's *newest version* recoverable, and
    loses no parked hint (the experiment verifies durability of the
    *protocol*, not of unrecoverable data loss)."""
    if candidate.hint_count:
        return False
    holders = _live_holders(net, injector.state)
    best = _best_stamp_elsewhere(net, injector.state,
                                 candidate.server_id)
    for copy_id in candidate.stored_ids():
        base, _ = parse_replica_id(copy_id)
        copies = catalog.get(base, 1)
        survivors = 0
        for i in range(copies):
            for server_id in holders.get(replica_id(base, i), ()):
                if server_id != candidate.server_id:
                    survivors += 1
        if survivors == 0:
            return False
        # A rerouted write may exist only here: crashing the unique
        # holder of the newest stamp is unrecoverable data loss, not
        # a divergence the scrub could ever repair.
        stamp = candidate.stamp_of(copy_id) or NO_STAMP
        if stamp > best.get(base, NO_STAMP):
            return False
    return True


def _crash_window(net, injector, rng, catalog: Dict[str, int],
                  count: int) -> List[Dict]:
    """Crash up to ``count`` servers, never losing an item's last live
    replica; returns the event rows (skips recorded explicitly)."""
    events: List[Dict] = []
    crashed = 0
    pool = [server for switch in sorted(net.server_map)
            for server in net.server_map[switch]]
    order = rng.permutation(len(pool))
    for k in order:
        if crashed >= count:
            break
        victim = pool[int(k)]
        if not injector.state.server_alive(victim.server_id):
            continue
        if not _crash_safe(net, injector, victim, catalog):
            events.append({"kind": "server_crash_skipped",
                           "server": list(victim.server_id),
                           "avoid_total_loss": True})
            continue
        destroyed = injector.crash_server(*victim.server_id)
        events.append({"kind": "server_crash",
                       "server": list(victim.server_id),
                       "items_destroyed": destroyed})
        crashed += 1
    return events


def _alive_entry(net, injector, rng) -> int:
    ids = [s for s in net.switch_ids()
           if injector.state.switch_alive(s)]
    return int(ids[int(rng.integers(0, len(ids)))])


def run_durability(
    switches: int = 40,
    servers_per_switch: int = 2,
    items: int = 120,
    copies: int = 2,
    ops: int = 80,
    crash_fraction: float = 0.2,
    partition_fraction: float = 0.3,
    late_crashes: int = 3,
    cvt_iterations: int = 10,
    seed: int = 0,
    max_sweeps: int = 6,
) -> Dict:
    """Crash + partition + delete-heavy churn, then one scrub.

    Returns the deterministic ``gred-durability-v1`` report.  The run
    swaps in a fresh enabled metrics registry (restored on exit) so
    the ``durability.*`` counters in the report belong to this
    experiment alone.
    """
    previous = default_registry()
    registry = MetricsRegistry(enabled=True)
    set_default_registry(registry)
    try:
        return _run_durability(
            switches=switches, servers_per_switch=servers_per_switch,
            items=items, copies=copies, ops=ops,
            crash_fraction=crash_fraction,
            partition_fraction=partition_fraction,
            late_crashes=late_crashes, cvt_iterations=cvt_iterations,
            seed=seed, max_sweeps=max_sweeps, registry=registry)
    finally:
        set_default_registry(previous)


def _run_durability(*, switches, servers_per_switch, items, copies,
                    ops, crash_fraction, partition_fraction,
                    late_crashes, cvt_iterations, seed, max_sweeps,
                    registry) -> Dict:
    topology = build_topology(switches, 3, seed)
    net = build_gred(topology, servers_per_switch, cvt_iterations, seed)
    injector = FaultInjector(net, seed=seed + 1)
    net.hinted_handoff = True
    rng = np.random.default_rng(seed + 2)
    oracle: Dict[str, Any] = {}
    catalog: Dict[str, int] = {}
    events: List[Dict] = []

    # Phase 1 — seed the catalog (stamped: the fault state is attached).
    for i in range(items):
        data_id = f"item-{i:04d}"
        payload = f"v1:{data_id}"
        net.place(data_id, payload=payload,
                  entry_switch=_alive_entry(net, injector, rng),
                  copies=copies)
        oracle[data_id] = payload
        catalog[data_id] = copies
    detector = FailureDetector(net, catalog=catalog)

    # Phase 2 — crash window (>= crash_fraction of all servers), then
    # repair: re-replication restores the replica counts.
    total_servers = sum(len(v) for v in net.server_map.values())
    crash_count = int(np.ceil(crash_fraction * total_servers))
    events += _crash_window(net, injector, rng, catalog, crash_count)
    repair_1 = detector.repair()
    events.append({"kind": "repair",
                   "servers_replaced": repair_1.servers_replaced,
                   "re_replicated": repair_1.re_replicated,
                   "lost": repair_1.items_lost})

    # Phase 3 — partition window: split ~partition_fraction of the
    # switches away and drive a delete-heavy workload from entries on
    # both sides.  Writes toward the far side park as hints; replicas
    # split across the cut go stale.
    ids = sorted(net.switch_ids())
    side_size = max(1, int(partition_fraction * len(ids)))
    side = [int(ids[int(k)]) for k in rng.choice(len(ids),
                                                 size=side_size,
                                                 replace=False)]
    injector.partition(side)
    events.append({"kind": "partition", "switches": sorted(side)})
    version = 2
    known = sorted(oracle)
    for j in range(ops):
        op = str(rng.choice(["delete", "update", "place"],
                            p=[0.5, 0.3, 0.2]))
        entry = _alive_entry(net, injector, rng)
        if op == "delete":
            target = known[int(rng.integers(0, len(known)))]
            if oracle[target] is _DELETED:
                continue
            net.delete(target, copies=catalog[target],
                       entry_switch=entry)
            oracle[target] = _DELETED
            events.append({"kind": "delete", "data_id": target,
                           "entry": entry})
        elif op == "update":
            target = known[int(rng.integers(0, len(known)))]
            if oracle[target] is _DELETED:
                continue
            payload = f"v{version}:{target}"
            version += 1
            net.place(target, payload=payload, entry_switch=entry,
                      copies=catalog[target])
            oracle[target] = payload
            events.append({"kind": "update", "data_id": target,
                           "entry": entry})
        else:
            data_id = f"late-{j:04d}"
            payload = f"v1:{data_id}"
            net.place(data_id, payload=payload, entry_switch=entry,
                      copies=copies)
            oracle[data_id] = payload
            catalog[data_id] = copies
            detector.register(data_id, copies)
            events.append({"kind": "place", "data_id": data_id,
                           "entry": entry})

    # Phase 4 — crashes *inside* the partition, heal, repair: the
    # tombstone-aware re-replication rebuilds from survivors that may
    # be stale, manufacturing exactly the divergence a scrub must fix.
    events += _crash_window(net, injector, rng, catalog, late_crashes)
    injector.heal_partition()
    events.append({"kind": "heal_partition"})
    repair_2 = detector.repair()
    events.append({
        "kind": "repair",
        "servers_replaced": repair_2.servers_replaced,
        "re_replicated": repair_2.re_replicated,
        "lost": repair_2.items_lost,
        "suppressed_resurrections": repair_2.suppressed_resurrections,
    })

    # Phase 5 — measure, scrub, re-measure.
    hints_parked = sum(server.hint_count
                       for switch in sorted(net.server_map)
                       for server in net.server_map[switch])
    divergence_before = storage_divergence(net, catalog)
    scrub_report = net.scrub(catalog, max_sweeps=max_sweeps)
    divergence_after = storage_divergence(net, catalog)

    # Phase 6 — oracle verdicts + retrieval availability.
    fault = net.fault_state
    holders = _live_holders(net, fault)
    resurrected: List[str] = []
    lost: List[str] = []
    stale: List[str] = []
    unavailable: List[str] = []
    for data_id in sorted(oracle):
        want = oracle[data_id]
        copy_ids = [replica_id(data_id, i)
                    for i in range(catalog[data_id])]
        live = [c for c in copy_ids if holders.get(c)]
        if want is _DELETED:
            if live:
                resurrected.append(data_id)
            continue
        if not live:
            lost.append(data_id)
            continue
        for copy_id in live:
            for server_id in sorted(holders[copy_id]):
                if net.server(*server_id).retrieve(copy_id) != want:
                    stale.append(data_id)
                    break
            else:
                continue
            break
        result = net.retrieve(data_id,
                              entry_switch=_alive_entry(net, injector,
                                                        rng),
                              copies=catalog[data_id])
        if not result.found or result.payload != want:
            unavailable.append(data_id)

    deleted_total = sum(1 for v in oracle.values() if v is _DELETED)
    return {
        "format": DURABILITY_FORMAT,
        "config": {
            "switches": switches,
            "servers_per_switch": servers_per_switch,
            "items": items,
            "copies": copies,
            "ops": ops,
            "crash_fraction": crash_fraction,
            "partition_fraction": partition_fraction,
            "late_crashes": late_crashes,
            "cvt_iterations": cvt_iterations,
            "seed": seed,
            "max_sweeps": max_sweeps,
            "avoid_total_loss": True,
        },
        "events": events,
        "workload": {
            "items_placed": len(oracle),
            "items_deleted": deleted_total,
            "crashes": sum(1 for e in events
                           if e["kind"] == "server_crash"),
            "crash_fraction_actual": round(
                sum(1 for e in events
                    if e["kind"] == "server_crash") / total_servers, 4),
            "hints_parked_pre_scrub": hints_parked,
        },
        "divergence": {
            "before_scrub": divergence_before,
            "after_scrub": divergence_after,
        },
        "scrub": scrub_report.to_dict(),
        # Headline verdicts (acceptance criteria of ``gred scrub``).
        "resurrected": resurrected,
        "lost": lost,
        "stale": stale,
        "unavailable": unavailable,
        "oracle_match": not (resurrected or lost or stale
                             or unavailable),
        "durability_metrics": registry.counter_values("durability."),
    }


def main() -> None:
    report = run_durability(switches=24, items=60, ops=40,
                            cvt_iterations=5)
    print(f"divergence before/after scrub: "
          f"{report['divergence']['before_scrub']}/"
          f"{report['divergence']['after_scrub']}")
    print(f"resurrected/lost/stale: {len(report['resurrected'])}/"
          f"{len(report['lost'])}/{len(report['stale'])}")
    print(f"oracle match: {report['oracle_match']}")


if __name__ == "__main__":
    main()
