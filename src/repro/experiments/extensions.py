"""Extension experiments beyond the paper's figures.

The paper motivates GRED with user mobility (Section I, Section VIII-A)
and sketches replication (Section VI) but does not evaluate them; these
experiments complete the picture:

* **Mobility** — a user walks across access points retrieving a working
  set; replica count vs. retrieval cost (the paper's "which copy is
  closest to the access point" mechanism).
* **Failure availability** — fraction of items still locatable after a
  random set of switches fails simultaneously, vs. replica count.
* **State/stretch trade-off** — per-node routing state and stretch of
  GRED vs Chord vs one-hop consistent hashing (full membership), the
  design space the introduction argues about.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..baselines import ConsistentHashingNetwork
from ..controlplane import average_table_entries
from ..edge import attach_uniform
from ..graph import bfs_distances, hop_count
from ..hashing import replica_id
from ..metrics import (
    measure_chord_stretch,
    measure_gred_stretch,
    summarize,
)
from .common import build_chord, build_gred, build_topology, print_table


def run_mobility(
    copies_list: Sequence[int] = (1, 2, 3, 5),
    num_switches: int = 50,
    walk_length: int = 30,
    working_set: int = 20,
    seed: int = 0,
) -> List[Dict]:
    """Mean retrieval hops along a mobile user's walk vs replica count."""
    topology = build_topology(num_switches, 3, seed)
    rows = []
    for copies in copies_list:
        net = build_gred(topology, 4, cvt_iterations=50, seed=seed)
        rng = np.random.default_rng(seed + copies)
        items = [f"mob-{i}" for i in range(working_set)]
        for item in items:
            net.place(item, payload=b"x", entry_switch=0, copies=copies)
        # Random walk over physically adjacent switches.
        position = int(rng.integers(0, num_switches))
        hops = []
        for _ in range(walk_length):
            neighbors = sorted(topology.neighbors(position))
            position = neighbors[int(rng.integers(0, len(neighbors)))]
            for item in items:
                result = net.retrieve(item, entry_switch=position,
                                      copies=copies)
                assert result.found
                hops.append(float(result.request_hops))
        summary = summarize(hops)
        rows.append({
            "copies": copies,
            "mean_request_hops": summary.mean,
            "p_max": summary.maximum,
        })
    return rows


def run_failure_availability(
    copies_list: Sequence[int] = (1, 2, 3),
    failure_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.3),
    num_switches: int = 60,
    num_items: int = 2000,
    seed: int = 0,
) -> List[Dict]:
    """Item availability after simultaneous switch failures.

    An item is available when at least one replica's destination switch
    survives and remains reachable from the (surviving) probe switch.
    Uses the closed-form destination mapping so no state is mutated.
    """
    topology = build_topology(num_switches, 3, seed)
    net = build_gred(topology, 4, cvt_iterations=50, seed=seed)
    items = [f"fa-{i}" for i in range(num_items)]
    max_copies = max(copies_list)
    destinations = {
        item: [net.destination_switch(replica_id(item, c))
               for c in range(max_copies)]
        for item in items
    }
    rows = []
    rng = np.random.default_rng(seed + 1)
    switch_ids = net.switch_ids()
    for fraction in failure_fractions:
        kill_count = max(1, int(round(fraction * num_switches)))
        killed = set(
            int(i) for i in rng.choice(len(switch_ids), size=kill_count,
                                       replace=False)
        )
        killed = {switch_ids[i] for i in killed}
        survivors = [s for s in switch_ids if s not in killed]
        probe = survivors[0]
        reachable = set(_reachable_excluding(topology, probe, killed))
        for copies in copies_list:
            available = sum(
                1 for item in items
                if any(dest in reachable
                       for dest in destinations[item][:copies])
            )
            rows.append({
                "failed_fraction": fraction,
                "copies": copies,
                "availability": available / num_items,
            })
    return rows


def _reachable_excluding(topology, source, excluded):
    """Switches reachable from ``source`` avoiding ``excluded``."""
    keep = [n for n in topology.nodes() if n not in excluded]
    sub = topology.subgraph(keep)
    return bfs_distances(sub, source).keys()


def run_state_stretch_tradeoff(
    sizes: Sequence[int] = (20, 60, 100),
    num_items: int = 100,
    seed: int = 0,
) -> List[Dict]:
    """Per-node routing state vs routing stretch across designs."""
    rows = []
    for size in sizes:
        topology = build_topology(size, 3, seed + size)
        gred = build_gred(topology, 10, cvt_iterations=50, seed=seed)
        chord = build_chord(topology, 10)
        onehop = ConsistentHashingNetwork(
            topology, attach_uniform(topology.nodes(), 10))
        gred_stretch = summarize(measure_gred_stretch(
            gred, num_items, np.random.default_rng(seed + 1))).mean
        chord_stretch = summarize(measure_chord_stretch(
            chord, num_items, np.random.default_rng(seed + 1))).mean
        onehop_stretch = _onehop_stretch(onehop, num_items,
                                         np.random.default_rng(seed + 1))
        rows.extend([
            {
                "switches": size,
                "protocol": "GRED",
                "state_per_node": average_table_entries(
                    gred.controller.switches.values()),
                "stretch_mean": gred_stretch,
            },
            {
                "switches": size,
                "protocol": "Chord",
                "state_per_node": chord.average_finger_table_size(),
                "stretch_mean": chord_stretch,
            },
            {
                "switches": size,
                "protocol": "OneHop-CH",
                "state_per_node": float(
                    onehop.routing_state_per_node()),
                "stretch_mean": onehop_stretch,
            },
        ])
    return rows


def _onehop_stretch(onehop, num_items, rng) -> float:
    """One-hop CH routes on shortest paths: stretch is 1 by
    construction; measured anyway for the table."""
    switches = onehop.topology.nodes()
    values = []
    for i in range(num_items):
        entry = switches[int(rng.integers(0, len(switches)))]
        result = onehop.route_for(f"item-{i}", entry)
        shortest = hop_count(onehop.topology, entry,
                             result.destination_switch)
        if shortest > 0:
            values.append(result.physical_hops / shortest)
    return sum(values) / len(values) if values else 1.0


def run_link_utilization(
    num_switches: int = 60,
    num_requests: int = 500,
    seed: int = 0,
) -> List[Dict]:
    """X4: bandwidth cost and link congestion, GRED vs Chord.

    The paper argues "shorter routing path indicates less bandwidth
    consumption"; this experiment quantifies it: per-link traversal
    counts for the same retrieval workload, reporting the total
    traversals (bandwidth cost) and the most-loaded link (congestion
    hot spot).
    """
    from ..graph import bfs_path

    topology = build_topology(num_switches, 3, seed)
    gred = build_gred(topology, 5, cvt_iterations=50, seed=seed)
    chord = build_chord(topology, 5)
    rng = np.random.default_rng(seed + 1)
    switches = gred.switch_ids()
    requests = [
        (f"bw-{i}", switches[int(rng.integers(0, len(switches)))])
        for i in range(num_requests)
    ]

    def link_loads_gred():
        loads: Dict[frozenset, int] = {}
        for data_id, entry in requests:
            trace = gred.route_for(data_id, entry).trace
            for a, b in zip(trace, trace[1:]):
                key = frozenset((a, b))
                loads[key] = loads.get(key, 0) + 1
        return loads

    def link_loads_chord():
        loads: Dict[frozenset, int] = {}
        for data_id, entry in requests:
            result = chord.route_for(data_id, entry)
            overlay = result.overlay_path
            hosts = [chord.ring.node_of_owner(o).host_switch
                     for o in overlay]
            for a, b in zip(hosts, hosts[1:]):
                path = bfs_path(topology, a, b)
                for u, v in zip(path, path[1:]):
                    key = frozenset((u, v))
                    loads[key] = loads.get(key, 0) + 1
        return loads

    rows = []
    num_links = topology.num_edges()
    for label, loads in (("GRED", link_loads_gred()),
                         ("Chord", link_loads_chord())):
        total = sum(loads.values())
        rows.append({
            "protocol": label,
            "total_link_traversals": total,
            "max_link_load": max(loads.values()) if loads else 0,
            "mean_link_load": total / num_links,
            "links_used": len(loads),
        })
    return rows


def run_saturation(
    rates_per_s: Sequence[int] = (500, 1000, 2000, 4000, 8000),
    num_switches: int = 40,
    num_items: int = 100,
    window: float = 0.2,
    seed: int = 0,
) -> List[Dict]:
    """X5: response delay vs offered load (packet-level simulation).

    GRED's shorter paths consume less aggregate link bandwidth per
    request than Chord's O(log n)-overlay-hop routes, so under the same
    physical network it sustains a higher request rate before queueing
    delay takes off.
    """
    from ..simulation import LinkModel, PacketLevelSimulator
    from ..workloads import sequential_ids, uniform_retrieval_trace

    topology = build_topology(num_switches, 3, seed)
    gred = build_gred(topology, 5, cvt_iterations=50, seed=seed)
    chord = build_chord(topology, 5)
    items = sequential_ids(num_items, prefix="sat")
    # A deliberately constrained network so saturation is visible at
    # simulation-friendly rates: 1 Gbps links, 100 KB responses.
    model = LinkModel(bandwidth_bytes_per_s=1.25e8,
                      propagation_delay=5e-6,
                      switch_processing=2e-6,
                      server_service_time=50e-6)
    rows = []
    for rate in rates_per_s:
        count = max(1, int(rate * window))
        trace = uniform_retrieval_trace(
            items, topology.nodes(), count, window,
            np.random.default_rng(seed + rate),
        )
        for label, net in (("GRED", gred), ("Chord", chord)):
            sim = PacketLevelSimulator(net, model)
            sim.run(trace, request_size=256, response_size=100_000)
            rows.append({
                "rate_per_s": rate,
                "protocol": label,
                "avg_delay_ms": sim.average_response_delay() * 1e3,
                "p99_delay_ms": sim.p99_response_delay() * 1e3,
            })
    return rows


def run_adaptive_replication(
    zipf_exponents: Sequence[float] = (0.0, 0.8, 1.2),
    num_switches: int = 40,
    num_items: int = 200,
    num_requests: int = 4000,
    promote_threshold: int = 20,
    max_copies: int = 4,
    seed: int = 0,
) -> List[Dict]:
    """X7: adaptive replication under skewed workloads.

    Drives a Zipf retrieval workload through the adaptive-replication
    service and compares mean request hops and storage overhead against
    the static single-copy deployment.  The more skewed the workload,
    the more the hot head earns copies and the larger the hop saving.
    """
    from ..services import AdaptiveReplicationService
    from ..workloads import sequential_ids, zipf_choices
    from .common import build_gred

    topology = build_topology(num_switches, 3, seed)
    items = sequential_ids(num_items, prefix="zipf")
    rows = []
    for exponent in zipf_exponents:
        rng = np.random.default_rng(seed + int(exponent * 10))
        requests = zipf_choices(items, num_requests, exponent, rng)
        entries = rng.integers(0, num_switches, size=num_requests)

        static_net = build_gred(topology, 4, cvt_iterations=30,
                                seed=seed)
        adaptive_net = build_gred(topology, 4, cvt_iterations=30,
                                  seed=seed)
        adaptive = AdaptiveReplicationService(
            adaptive_net, promote_threshold=promote_threshold,
            max_copies=max_copies,
        )
        for item in items:
            static_net.place(item, payload=b"x", entry_switch=0)
            adaptive.put(item, payload=b"x", entry_switch=0)

        static_hops = 0
        adaptive_hops = 0
        for data_id, entry in zip(requests, entries):
            entry = int(entry)
            static_hops += static_net.retrieve(
                data_id, entry_switch=entry).request_hops
            adaptive_hops += adaptive.get(
                data_id, entry_switch=entry).request_hops
        stats = adaptive.stats()
        rows.append({
            "zipf": exponent,
            "static_mean_hops": static_hops / num_requests,
            "adaptive_mean_hops": adaptive_hops / num_requests,
            "storage_overhead": stats.storage_overhead,
            "promotions": stats.promotions,
        })
    return rows


def run_ght_comparison(
    num_switches: int = 50,
    num_items: int = 300,
    seed: int = 0,
) -> List[Dict]:
    """X8: GHT/GPSR vs GRED across topology families.

    The paper's related work dismisses GHT because GPSR "requires the
    network topology to be a planar graph in 2D to avoid routing
    failures".  This experiment measures it: on a unit-disk graph
    (GHT's intended setting) and on a Waxman edge network (the paper's
    setting), report delivery rate, mean stretch of successful routes,
    and load balance for GHT vs GRED on the identical topology.
    """
    from ..core import GredNetwork
    from ..edge import attach_uniform
    from ..ght import GhtNetwork
    from ..metrics import max_avg_ratio
    from ..topology import random_geometric_graph, waxman_graph

    rows = []
    rng = np.random.default_rng(seed)
    scenarios = []
    udg, udg_coords = random_geometric_graph(
        num_switches, 0.25, rng=np.random.default_rng(seed + 1))
    scenarios.append(("unit-disk", udg, udg_coords))
    wax, wax_coords = waxman_graph(
        num_switches, rng=np.random.default_rng(seed + 2))
    scenarios.append(("waxman", wax, wax_coords))

    for label, topology, coords in scenarios:
        ght = GhtNetwork(topology, coords,
                         attach_uniform(topology.nodes(), 2))
        gred = GredNetwork(topology,
                           attach_uniform(topology.nodes(), 2),
                           cvt_iterations=50, seed=seed)
        ght_delivered = 0
        ght_stretch: List[float] = []
        gred_stretch: List[float] = []
        ght_loads: Dict[int, int] = {}
        gred_loads: Dict[int, int] = {}
        switches = topology.nodes()
        for i in range(num_items):
            data_id = f"ghtcmp-{i}"
            entry = switches[int(rng.integers(0, len(switches)))]
            result = ght.route_for(data_id, entry)
            if result.delivered:
                ght_delivered += 1
                ght_loads[result.home_switch] = \
                    ght_loads.get(result.home_switch, 0) + 1
                shortest = hop_count(topology, entry,
                                     result.home_switch)
                if shortest > 0:
                    ght_stretch.append(result.physical_hops / shortest)
            route = gred.route_for(data_id, entry)
            gred_loads[route.destination_switch] = \
                gred_loads.get(route.destination_switch, 0) + 1
            shortest = hop_count(topology, entry,
                                 route.destination_switch)
            if shortest > 0:
                gred_stretch.append(route.physical_hops / shortest)

        def ratio(loads):
            vec = [loads.get(s, 0) for s in switches]
            return max_avg_ratio(vec)

        rows.append({
            "topology": label,
            "protocol": "GHT",
            "delivery_rate": ght_delivered / num_items,
            "stretch_mean": (sum(ght_stretch) / len(ght_stretch))
            if ght_stretch else float("nan"),
            "max_avg": ratio(ght_loads) if ght_loads else float("nan"),
        })
        rows.append({
            "topology": label,
            "protocol": "GRED",
            "delivery_rate": 1.0,
            "stretch_mean": sum(gred_stretch) / len(gred_stretch),
            "max_avg": ratio(gred_loads),
        })
    return rows


def run_overflow_protection(
    small_fractions: Sequence[float] = (0.2, 0.4),
    small_capacity: int = 10,
    large_capacity: int = 200,
    num_switches: int = 30,
    num_items: int = 600,
    seed: int = 0,
) -> List[Dict]:
    """X9: how much data loss range extension prevents.

    The paper's §V-B scenario exactly: "some edge servers with low
    storage capacity would be overloaded when switches connect to
    ... servers with heterogeneous capacity".  A fraction of switches
    host tiny servers among well-provisioned neighbors.  Without
    management, placements hashed to a full tiny server are rejected
    (data loss); with the overload manager driving range extensions,
    the load spills to the neighbors' headroom.
    """
    from ..edge import EdgeServer, StorageFull
    from ..core import GredNetwork
    from ..services import OverloadManager

    topology = build_topology(num_switches, 3, seed)
    rows = []
    for fraction in small_fractions:
        rng = np.random.default_rng(seed + int(fraction * 100))
        small = set(
            int(i) for i in rng.choice(
                num_switches,
                size=max(1, int(round(fraction * num_switches))),
                replace=False)
        )
        results = {}
        extensions_used = 0
        for managed in (False, True):
            servers = {
                node: [EdgeServer(
                    node, 0,
                    capacity=(small_capacity if node in small
                              else large_capacity))]
                for node in topology.nodes()
            }
            net = GredNetwork(topology, servers, cvt_iterations=30,
                              seed=seed)
            manager = OverloadManager(net, high_watermark=0.7,
                                      low_watermark=0.2) \
                if managed else None
            rejected = 0
            for i in range(num_items):
                data_id = f"ovf-{i}"
                try:
                    net.place(data_id, payload=i,
                              entry_switch=i % num_switches)
                except StorageFull:
                    rejected += 1
                if manager is not None:
                    manager.sweep()
            results[managed] = rejected
            if managed:
                extensions_used = len(manager.active_extensions())
        rows.append({
            "small_fraction": fraction,
            "rejected_unmanaged": results[False],
            "rejected_managed": results[True],
            "extensions_used": extensions_used,
        })
    return rows


def main() -> None:
    print_table(run_mobility(),
                ["copies", "mean_request_hops", "p_max"],
                "X1: mobility — retrieval hops vs replica count")
    print_table(run_failure_availability(),
                ["failed_fraction", "copies", "availability"],
                "X2: availability under simultaneous switch failures")
    print_table(run_state_stretch_tradeoff(),
                ["switches", "protocol", "state_per_node",
                 "stretch_mean"],
                "X3: routing state vs stretch across designs")
    print_table(run_link_utilization(),
                ["protocol", "total_link_traversals", "max_link_load",
                 "mean_link_load", "links_used"],
                "X4: bandwidth cost and link congestion")


if __name__ == "__main__":
    main()
