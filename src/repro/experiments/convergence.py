"""X7 — churn-under-loss convergence of the reliable southbound path.

The paper's controller assumes every rule install lands.  This
experiment drops that assumption: a randomized churn sequence (joins,
leaves, link flaps) is driven through the control plane while the
southbound channel drops, duplicates, delays, and reorders messages —
and the claim under test is that the reliability stack (ack/retry in
the :class:`~repro.controlplane.apply.TransactionalApplier`, digest
anti-entropy in :meth:`~repro.controlplane.controller.Controller.
reconcile`) still converges every switch to **byte-identical** state
with the pre-refactor :func:`~repro.controlplane.rules.
install_all_rules` oracle.

The committed ``CONVERGENCE_report.json`` (CI artifact of the
``gred reconcile`` command) records, per churn event, the retry and
transmission counts, then the divergence before/after the final
reconcile, the sweep count (the divergence window), and the oracle
verdict.  Everything is deterministic under the seed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

import numpy as np

from ..controlplane import (
    ControlPlaneError,
    Controller,
    ControllerConfig,
    FaultyChannel,
    RetryPolicy,
    compile_plan,
    install_all_rules,
    plan_digests,
    snapshot_plan,
    verify_installed_state,
)
from ..dataplane import GredSwitch
from ..edge import EdgeServer, attach_uniform
from ..obs import MetricsRegistry, default_registry, set_default_registry
from .common import build_topology

#: Format marker of the ``gred reconcile`` JSON report.
CONVERGENCE_FORMAT = "gred-convergence-v1"


def canonical_state(switch) -> FrozenSet:
    """Every installed fact of one switch as a comparable frozenset
    (the same canonicalization the differential test suite uses)."""
    table = switch.table
    entries = {
        ("pos", switch.position),
        ("num-servers", switch.num_servers),
    }
    for neighbor in table.physical_neighbors():
        entries.add(("port", neighbor, table.physical_port(neighbor)))
    for neighbor, pos in switch.physical_neighbor_positions.items():
        entries.add(("phys-cand", neighbor, pos))
    for neighbor, pos in switch.dt_neighbor_positions.items():
        entries.add(("dt-cand", neighbor, pos))
    for entry in table.virtual_entries():
        entries.add(("vl", entry.sour, entry.pred, entry.succ,
                     entry.dest))
    for ext in table.extensions():
        entries.add(("ext", ext.local_serial, ext.target_switch,
                     ext.target_serial))
    return frozenset(entries)


def oracle_switches(controller: Controller) -> Dict[int, GredSwitch]:
    """From-scratch rebuild through the pre-refactor full installer."""
    switches = {
        node: GredSwitch(
            switch_id=node,
            position=controller.positions[node],
            num_servers=len(controller.server_map.get(node, [])),
        )
        for node in controller.topology.nodes()
    }
    install_all_rules(controller.topology, switches,
                      controller.positions, controller.dt_adjacency())
    return switches


def mismatched_switches(controller: Controller) -> List[int]:
    """Switches whose live state differs from the oracle's."""
    oracle = oracle_switches(controller)
    live = controller.switches
    bad = sorted(set(live) ^ set(oracle))
    for switch_id in sorted(set(live) & set(oracle)):
        if canonical_state(live[switch_id]) != \
                canonical_state(oracle[switch_id]):
            bad.append(switch_id)
    return sorted(bad)


def _desired_plan(controller: Controller):
    return compile_plan(
        controller.topology, controller.positions,
        controller.dt_adjacency(),
        server_counts={node: len(controller.server_map.get(node, []))
                       for node in controller.topology.nodes()},
    )


def _divergence(controller: Controller) -> int:
    """Switches whose installed digest differs from the desired plan."""
    want = plan_digests(_desired_plan(controller))
    have = plan_digests(snapshot_plan(controller.switches))
    return sum(1 for sid in set(want) | set(have)
               if want.get(sid) != have.get(sid))


def run_convergence(
    switches: int = 200,
    events: int = 30,
    drop: float = 0.2,
    dup: float = 0.05,
    delay: float = 0.0,
    reorder_window: int = 4,
    servers_per_switch: int = 2,
    cvt_iterations: int = 15,
    seed: int = 0,
    max_sweeps: int = 12,
    policy: Optional[RetryPolicy] = None,
) -> Dict:
    """Random churn over a seeded lossy channel, then reconcile.

    Returns the deterministic ``gred-convergence-v1`` report.  The run
    swaps in a fresh enabled metrics registry (restored on exit) so the
    ``controlplane.southbound.*`` counters in the report belong to this
    experiment alone.
    """
    previous = default_registry()
    registry = MetricsRegistry(enabled=True)
    set_default_registry(registry)
    try:
        return _run_convergence(
            switches=switches, events=events, drop=drop, dup=dup,
            delay=delay, reorder_window=reorder_window,
            servers_per_switch=servers_per_switch,
            cvt_iterations=cvt_iterations, seed=seed,
            max_sweeps=max_sweeps, policy=policy, registry=registry)
    finally:
        set_default_registry(previous)


def _run_convergence(*, switches, events, drop, dup, delay,
                     reorder_window, servers_per_switch, cvt_iterations,
                     seed, max_sweeps, policy, registry) -> Dict:
    topology = build_topology(switches, 3, seed)
    controller = Controller(
        topology, attach_uniform(topology.nodes(), servers_per_switch),
        config=ControllerConfig(cvt_iterations=cvt_iterations,
                                seed=seed),
    )
    channel = FaultyChannel(drop=drop, dup=dup, delay=delay,
                            reorder_window=reorder_window,
                            seed=seed + 1)
    controller.attach_transport(channel, policy=policy)
    rng = np.random.default_rng(seed + 2)
    joined: List[int] = []
    event_rows: List[Dict] = []
    skipped = 0
    for j in range(events):
        kind = str(rng.choice(
            ["join", "leave", "add_link", "remove_link"],
            p=[0.4, 0.2, 0.2, 0.2]))
        detail: Dict = {"event": j, "kind": kind}
        try:
            if kind == "join":
                new_id = 100_000 + j
                ids = sorted(controller.switches)
                peers = [int(ids[int(k)]) for k in rng.choice(
                    len(ids), size=min(2, len(ids)), replace=False)]
                controller.add_switch(
                    new_id, links=peers,
                    servers=[EdgeServer(new_id, s)
                             for s in range(servers_per_switch)])
                joined.append(new_id)
                detail["switch"] = new_id
            elif kind == "leave":
                pool = joined if joined else sorted(controller.switches)
                victim = int(pool[int(rng.integers(0, len(pool)))])
                controller.remove_switch(victim)
                if victim in joined:
                    joined.remove(victim)
                detail["switch"] = victim
            elif kind == "add_link":
                ids = sorted(controller.switches)
                u, v = (int(ids[int(k)]) for k in rng.choice(
                    len(ids), size=2, replace=False))
                controller.add_link(u, v)
                detail["u"], detail["v"] = u, v
            else:  # remove_link
                edges = sorted((u, v) for u, v, _ in
                               controller.topology.edges())
                u, v = edges[int(rng.integers(0, len(edges)))]
                controller.remove_link(u, v)
                detail["u"], detail["v"] = int(u), int(v)
        except ControlPlaneError as exc:
            # The random pick was structurally impossible (would
            # partition, duplicate link, last participant...) — the
            # event is skipped, not silently dropped.
            skipped += 1
            detail["skipped"] = str(exc)
            event_rows.append(detail)
            continue
        report = controller.last_apply_report
        if report is not None:
            detail.update({
                "generation": report.generation,
                "messages": report.messages,
                "transmissions": report.transmissions,
                "retries": report.retries,
                "pending_after": sorted(controller.pending_deltas),
            })
        event_rows.append(detail)

    divergence_before = _divergence(controller)
    reconcile = controller.reconcile(max_sweeps=max_sweeps)
    divergence_after = _divergence(controller)
    mismatched = mismatched_switches(controller)
    violations = verify_installed_state(
        controller, desired_plan=_desired_plan(controller))
    return {
        "format": CONVERGENCE_FORMAT,
        "config": {
            "switches": switches,
            "events": events,
            "drop": drop,
            "dup": dup,
            "delay": delay,
            "reorder_window": reorder_window,
            "servers_per_switch": servers_per_switch,
            "cvt_iterations": cvt_iterations,
            "seed": seed,
            "max_sweeps": max_sweeps,
        },
        "events": event_rows,
        "events_applied": len(event_rows) - skipped,
        "events_skipped": skipped,
        "channel": channel.stats.to_dict(),
        "totals": {
            "transmissions": sum(r.get("transmissions", 0)
                                 for r in event_rows),
            "retries": sum(r.get("retries", 0) for r in event_rows),
        },
        "divergence": {
            "before_reconcile": divergence_before,
            "after_reconcile": divergence_after,
        },
        "reconcile": reconcile.to_dict(),
        # Headline verdicts (acceptance criteria of ``gred reconcile``).
        "oracle_match": not mismatched,
        "mismatched_switches": mismatched,
        "verifier_violations": len(violations),
        "final_switches": len(controller.switches),
        "southbound_metrics": registry.counter_values(
            "controlplane.southbound."),
    }


def main() -> None:
    report = run_convergence(switches=40, events=10, cvt_iterations=5)
    print(f"events applied: {report['events_applied']} "
          f"(skipped {report['events_skipped']})")
    print(f"retries: {report['totals']['retries']}, "
          f"divergence before/after reconcile: "
          f"{report['divergence']['before_reconcile']}/"
          f"{report['divergence']['after_reconcile']}")
    print(f"oracle match: {report['oracle_match']}")


if __name__ == "__main__":
    main()
