"""Driving packets through a network of P4 GRED switches.

``P4Network`` mirrors the routing surface of
:class:`repro.core.GredNetwork` (``route_for``) but executes the
compiled fixed-point pipeline, so the evaluation and the differential
tests can run the same workloads on both data planes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..controlplane import Controller
from ..hashing import data_position, sha256_digest
from .compiler import compile_network
from .gred_program import DeliveryInfo, P4GredSwitch, make_gred_packet
from .pipeline import P4RuntimeError
from .types import fixed_point


@dataclass
class P4RouteResult:
    """Outcome of routing one packet through the P4 data plane."""

    delivery: DeliveryInfo
    trace: List[int] = field(default_factory=list)

    @property
    def destination_switch(self) -> int:
        return self.delivery.switch

    @property
    def physical_hops(self) -> int:
        return max(0, len(self.trace) - 1)


class P4Network:
    """The compiled P4 data plane of a GRED deployment.

    Parameters
    ----------
    controller:
        A configured control plane; its installed state is compiled
        into P4 table entries.  Call :meth:`recompile` after any
        control-plane change (rule updates, extensions, dynamics).
    """

    def __init__(self, controller: Controller) -> None:
        self.controller = controller
        self.switches: Dict[int, P4GredSwitch] = {}
        self._port_to_neighbor: Dict[int, Dict[int, int]] = {}
        self.recompile()

    def recompile(self) -> None:
        """Re-derive all P4 entries from the current controller state."""
        from ..controlplane import compile_port_map

        self.switches = compile_network(self.controller)
        ports = compile_port_map(self.controller.topology)
        self._port_to_neighbor = {
            node: {port: neighbor
                   for neighbor, port in port_map.items()}
            for node, port_map in ports.items()
        }

    def route_for(self, data_id: str, entry_switch: int,
                  max_hops: Optional[int] = None) -> P4RouteResult:
        """Route a retrieval/placement request for ``data_id``."""
        if entry_switch not in self.switches:
            raise P4RuntimeError(f"unknown entry switch {entry_switch}")
        if max_hops is None:
            max_hops = 4 * len(self.switches) + 16
        position = fixed_point(data_position(data_id))
        dsel = int.from_bytes(sha256_digest(data_id)[:8], "big")
        ctx = make_gred_packet(kind=1, pos=position, dsel=dsel)
        current = entry_switch
        trace = [current]
        hops = 0
        while True:
            switch = self.switches[current]
            switch.last_delivery = None
            ctx.egress_port = None
            switch.pipeline.process(ctx)
            if ctx.delivered:
                return P4RouteResult(delivery=switch.last_delivery,
                                     trace=trace)
            if ctx.egress_port is None:
                raise P4RuntimeError(
                    f"switch {current} neither delivered nor forwarded"
                )
            neighbor = self._port_to_neighbor[current].get(
                ctx.egress_port)
            if neighbor is None:
                raise P4RuntimeError(
                    f"switch {current}: egress port {ctx.egress_port} "
                    f"maps to no link"
                )
            current = neighbor
            trace.append(current)
            hops += 1
            if hops > max_hops:
                raise P4RuntimeError(
                    f"hop bound exceeded routing {data_id!r} "
                    f"(trace {trace})"
                )

    def total_entries(self) -> int:
        """Total installed P4 state across switches."""
        return sum(s.num_entries() for s in self.switches.values())
