"""A bmv2-style match-action pipeline interpreter.

The model follows the essentials of the P4 execution model:

* a **PacketContext** carries parsed headers plus per-packet metadata;
* a **Table** matches a key (exact match, like the prototype's tables)
  and runs the bound action with its entry parameters; a miss runs the
  default action;
* an **action** is a host function mutating the context — standing in
  for the compiled P4 action body;
* a **Pipeline** is a control function applying tables in sequence,
  like a P4 ``control`` block.

The controller installs entries through :meth:`Table.insert_entry`,
mirroring the Thrift API the paper's controller uses ("The P4 compiler
generates Thrift APIs for the controller to insert the forwarding
entries into the switches").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .types import Header, HeaderType


class P4RuntimeError(Exception):
    """Raised on invalid table operations or action failures."""


@dataclass
class PacketContext:
    """Headers + metadata of one packet traversing the pipeline."""

    headers: Dict[str, Header] = field(default_factory=dict)
    metadata: Dict[str, int] = field(default_factory=dict)
    #: Egress specification: physical port, or None to keep processing.
    egress_port: Optional[int] = None
    #: Set by the deliver action: packet leaves the network here.
    delivered: bool = False

    def header(self, name: str) -> Header:
        if name not in self.headers:
            raise P4RuntimeError(f"no header instance {name!r}")
        return self.headers[name]

    def meta(self, key: str, default: int = 0) -> int:
        return self.metadata.get(key, default)

    def set_meta(self, key: str, value: int) -> None:
        self.metadata[key] = value


Action = Callable[[PacketContext, Tuple[int, ...]], None]


@dataclass
class TableEntry:
    """One installed match-action entry."""

    key: Tuple[int, ...]
    action_name: str
    params: Tuple[int, ...]


class Table:
    """An exact-match match-action table.

    Parameters
    ----------
    name:
        Table name (diagnostics).
    key_fields:
        Metadata/header fields forming the match key; each is a
        ``(source, name)`` pair where source is ``"meta"`` or a header
        instance name.
    actions:
        Named action implementations.
    default_action:
        Action run on a miss (with its bound params).
    """

    def __init__(
        self,
        name: str,
        key_fields: List[Tuple[str, str]],
        actions: Dict[str, Action],
        default_action: Optional[Tuple[str, Tuple[int, ...]]] = None,
    ) -> None:
        self.name = name
        self.key_fields = list(key_fields)
        self.actions = dict(actions)
        if default_action is not None \
                and default_action[0] not in self.actions:
            raise P4RuntimeError(
                f"table {name}: unknown default action "
                f"{default_action[0]!r}"
            )
        self.default_action = default_action
        self._entries: Dict[Tuple[int, ...], TableEntry] = {}

    # -- control-plane API (the "Thrift" surface) ------------------------
    def insert_entry(self, key: Tuple[int, ...], action_name: str,
                     params: Tuple[int, ...] = ()) -> None:
        if action_name not in self.actions:
            raise P4RuntimeError(
                f"table {self.name}: unknown action {action_name!r}"
            )
        if len(key) != len(self.key_fields):
            raise P4RuntimeError(
                f"table {self.name}: key arity {len(key)} != "
                f"{len(self.key_fields)}"
            )
        self._entries[tuple(key)] = TableEntry(tuple(key), action_name,
                                               tuple(params))

    def delete_entry(self, key: Tuple[int, ...]) -> None:
        self._entries.pop(tuple(key), None)

    def clear(self) -> None:
        self._entries.clear()

    def num_entries(self) -> int:
        return len(self._entries)

    def entries(self) -> List[TableEntry]:
        return list(self._entries.values())

    # -- data-plane execution --------------------------------------------
    def _build_key(self, ctx: PacketContext) -> Tuple[int, ...]:
        key = []
        for source, name in self.key_fields:
            if source == "meta":
                key.append(ctx.meta(name))
            else:
                key.append(ctx.header(source).get(name))
        return tuple(key)

    def apply(self, ctx: PacketContext) -> bool:
        """Match and run an action.  Returns True on a hit."""
        key = self._build_key(ctx)
        entry = self._entries.get(key)
        if entry is not None:
            self.actions[entry.action_name](ctx, entry.params)
            return True
        if self.default_action is not None:
            name, params = self.default_action
            self.actions[name](ctx, params)
        return False


class Pipeline:
    """A P4 control block: a host function orchestrating tables."""

    def __init__(self, name: str,
                 control: Callable[[PacketContext], None]) -> None:
        self.name = name
        self._control = control

    def process(self, ctx: PacketContext) -> PacketContext:
        self._control(ctx)
        return ctx


def make_header(header_type: HeaderType, **values: int) -> Header:
    """A valid header instance with the given field values."""
    header = Header(header_type=header_type)
    header.set_valid()
    for field_name, value in values.items():
        header.set(field_name, value)
    return header
