"""P4 prototype model: the paper's data plane, executed the bmv2 way.

Fixed-point header fields, exact-match match-action tables, actions
installed through a compiler from control-plane state, and a network
driver — a faithful software stand-in for the published P4 prototype,
validated differentially against the behavioral data plane in
``tests/test_p4.py``.
"""

from .types import (
    FRACTIONAL_BITS,
    Header,
    HeaderType,
    P4TypeError,
    fixed_point,
    from_fixed,
    squared_distance_fixed,
    to_fixed,
)
from .pipeline import (
    P4RuntimeError,
    PacketContext,
    Pipeline,
    Table,
    TableEntry,
    make_header,
)
from .gred_program import (
    GRED_HEADER,
    NO_PORT,
    DeliveryInfo,
    NeighborRecord,
    P4GredSwitch,
    make_gred_packet,
)
from .compiler import compile_network, compile_switch
from .network import P4Network, P4RouteResult

__all__ = [
    "FRACTIONAL_BITS",
    "to_fixed",
    "from_fixed",
    "fixed_point",
    "squared_distance_fixed",
    "HeaderType",
    "Header",
    "P4TypeError",
    "Table",
    "TableEntry",
    "Pipeline",
    "PacketContext",
    "P4RuntimeError",
    "make_header",
    "GRED_HEADER",
    "NO_PORT",
    "NeighborRecord",
    "P4GredSwitch",
    "DeliveryInfo",
    "make_gred_packet",
    "compile_switch",
    "compile_network",
    "P4Network",
    "P4RouteResult",
]
