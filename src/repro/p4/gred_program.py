"""The GRED switch program, expressed as P4-style tables and actions.

This is the reproduction's analogue of the paper's ``gred.p4``: the same
decision procedure as :class:`repro.dataplane.GredSwitch`, but executed
the way the bmv2 prototype executes it —

* coordinates carried as **Q16 fixed-point** header fields (P4 has no
  floats);
* the greedy argmin over neighbors computed by a sequence of
  match-action stages ("multiple match-action stages are designed in
  series to achieve the neighboring switch whose position is closest to
  the position of the data"), modelled here as an unrolled walk over
  installed neighbor records;
* virtual-link relaying via an exact-match table on the link
  destination;
* server selection via a hash field modulo the server count, and the
  range-extension rewrite via an exact-match table on the serial.

Entries are installed by :mod:`repro.p4.compiler` from control-plane
state, mirroring the paper's Thrift insertion path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .pipeline import (
    P4RuntimeError,
    PacketContext,
    Pipeline,
    Table,
    make_header,
)
from .types import HeaderType, squared_distance_fixed

#: The GRED custom header carried by every placement/retrieval request.
GRED_HEADER = HeaderType(
    name="gred_h",
    fields=(
        ("kind", 2),          # 0 placement / 1 retrieval
        ("pos_x", 32),        # Q16 destination position
        ("pos_y", 32),
        ("dsel", 64),         # server-selection hash of the data id
        ("vl_valid", 1),      # traversing a virtual link?
        ("vl_dest", 32),
        ("vl_sour", 32),
        ("vl_relay", 32),
    ),
)

#: Sentinel for "no port" in compiled entries.
NO_PORT = 0xFFFF


@dataclass(frozen=True)
class NeighborRecord:
    """One greedy candidate installed into the switch.

    ``is_physical`` selects direct forwarding; multi-hop DT neighbors
    start a virtual link via ``tbl_vl_start`` instead.
    """

    neighbor_id: int
    x: int
    y: int
    is_physical: bool
    port: int  # egress port for physical neighbors, NO_PORT otherwise


@dataclass
class DeliveryInfo:
    """Filled in when the pipeline decides to deliver locally."""

    switch: int
    serial: int
    extension_switch: Optional[int] = None
    extension_serial: Optional[int] = None


class P4GredSwitch:
    """One switch running the compiled GRED program."""

    def __init__(self, switch_id: int, position: Tuple[int, int],
                 num_servers: int) -> None:
        self.switch_id = switch_id
        self.position = position  # Q16
        self.num_servers = num_servers
        self.neighbors: List[NeighborRecord] = []
        self.tbl_vl_relay = Table(
            name="tbl_vl_relay",
            key_fields=[("gred", "vl_dest")],
            actions={"relay": self._act_relay},
        )
        self.tbl_vl_start = Table(
            name="tbl_vl_start",
            key_fields=[("meta", "best_neighbor")],
            actions={"start_vl": self._act_start_vl},
        )
        self.tbl_extension = Table(
            name="tbl_extension",
            key_fields=[("meta", "serial")],
            actions={"rewrite": self._act_extension_rewrite},
        )
        self.pipeline = Pipeline(f"gred_switch_{switch_id}",
                                 self._control)
        #: Set as a side effect of delivery, read by the network driver.
        self.last_delivery: Optional[DeliveryInfo] = None

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _act_relay(self, ctx: PacketContext,
                   params: Tuple[int, ...]) -> None:
        succ, port = params
        ctx.header("gred").set("vl_relay", succ)
        ctx.egress_port = port

    def _act_start_vl(self, ctx: PacketContext,
                      params: Tuple[int, ...]) -> None:
        dest, succ, port = params
        gred = ctx.header("gred")
        gred.set("vl_valid", 1)
        gred.set("vl_dest", dest)
        gred.set("vl_sour", self.switch_id)
        gred.set("vl_relay", succ)
        ctx.egress_port = port

    def _act_extension_rewrite(self, ctx: PacketContext,
                               params: Tuple[int, ...]) -> None:
        target_switch, target_serial = params
        ctx.set_meta("ext_switch", target_switch)
        ctx.set_meta("ext_serial", target_serial)
        ctx.set_meta("ext_valid", 1)

    # ------------------------------------------------------------------
    # control block
    # ------------------------------------------------------------------
    def _control(self, ctx: PacketContext) -> None:
        gred = ctx.header("gred")
        if gred.get("vl_valid"):
            if gred.get("vl_dest") != self.switch_id:
                hit = self.tbl_vl_relay.apply(ctx)
                if not hit:
                    raise P4RuntimeError(
                        f"switch {self.switch_id}: vl relay miss for "
                        f"dest {gred.get('vl_dest')}"
                    )
                return
            # Endpoint: strip the virtual-link header, fall through to
            # the greedy stages.
            gred.set("vl_valid", 0)
        self._greedy_stages(ctx)

    def _greedy_key(self, x: int, y: int, node_id: int,
                    tx: int, ty: int) -> Tuple[int, int, int, int]:
        """Comparison key: (squared distance, x, y, id) — the paper's
        x-then-y tie-break plus the id as a total-order fallback for
        positions that collide after Q16 quantization."""
        return (squared_distance_fixed(x, y, tx, ty), x, y, node_id)

    def _greedy_stages(self, ctx: PacketContext) -> None:
        gred = ctx.header("gred")
        tx = gred.get("pos_x")
        ty = gred.get("pos_y")
        own_key = self._greedy_key(self.position[0], self.position[1],
                                   self.switch_id, tx, ty)
        best_key = own_key
        best: Optional[NeighborRecord] = None
        # One unrolled match-action stage per installed neighbor.
        for record in self.neighbors:
            key = self._greedy_key(record.x, record.y,
                                   record.neighbor_id, tx, ty)
            if key < best_key:
                best_key = key
                best = record
        if best is None:
            self._deliver(ctx)
            return
        if best.is_physical:
            ctx.egress_port = best.port
            return
        ctx.set_meta("best_neighbor", best.neighbor_id)
        hit = self.tbl_vl_start.apply(ctx)
        if not hit:
            raise P4RuntimeError(
                f"switch {self.switch_id}: no virtual-link start entry "
                f"for DT neighbor {best.neighbor_id}"
            )

    def _deliver(self, ctx: PacketContext) -> None:
        if self.num_servers <= 0:
            raise P4RuntimeError(
                f"switch {self.switch_id} cannot deliver: no servers"
            )
        gred = ctx.header("gred")
        serial = gred.get("dsel") % self.num_servers
        ctx.set_meta("serial", serial)
        ctx.set_meta("ext_valid", 0)
        self.tbl_extension.apply(ctx)
        info = DeliveryInfo(switch=self.switch_id, serial=serial)
        if ctx.meta("ext_valid"):
            info.extension_switch = ctx.meta("ext_switch")
            info.extension_serial = ctx.meta("ext_serial")
        self.last_delivery = info
        ctx.delivered = True

    # ------------------------------------------------------------------
    # control-plane surface
    # ------------------------------------------------------------------
    def install_neighbor(self, record: NeighborRecord) -> None:
        self.neighbors = [
            r for r in self.neighbors
            if r.neighbor_id != record.neighbor_id
        ]
        self.neighbors.append(record)

    def clear_neighbors(self) -> None:
        self.neighbors = []

    def num_entries(self) -> int:
        """Installed state: neighbor records + table entries (the
        P4-side analogue of ``ForwardingTable.num_entries``)."""
        return (len(self.neighbors)
                + self.tbl_vl_relay.num_entries()
                + self.tbl_vl_start.num_entries()
                + self.tbl_extension.num_entries())


def make_gred_packet(kind: int, pos: Tuple[int, int],
                     dsel: int) -> PacketContext:
    """A fresh packet context carrying the GRED header."""
    ctx = PacketContext()
    ctx.headers["gred"] = make_header(
        GRED_HEADER, kind=kind, pos_x=pos[0], pos_y=pos[1], dsel=dsel,
        vl_valid=0, vl_dest=0, vl_sour=0, vl_relay=0,
    )
    return ctx
