"""P4-style type system: headers, fields and fixed-point arithmetic.

The published GRED prototype runs on bmv2 via P4, which has no
floating-point arithmetic: virtual-space coordinates must be carried in
integer header fields and distances computed in fixed point.  This
module models exactly that constraint.

Coordinates in the unit square are quantized to ``Q16`` (16 fractional
bits, 32-bit unsigned fields); squared distances of Q16 values fit into
64-bit accumulators, which bmv2 supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Fractional bits of the coordinate fixed-point representation.
FRACTIONAL_BITS = 16
_SCALE = 1 << FRACTIONAL_BITS


class P4TypeError(Exception):
    """Raised on malformed headers or out-of-range field values."""


def to_fixed(value: float) -> int:
    """Quantize a unit-square coordinate to Q16.

    Values are clamped into [0, 1] first (the virtual space boundary).
    """
    clamped = min(1.0, max(0.0, float(value)))
    return int(round(clamped * _SCALE))


def from_fixed(value: int) -> float:
    """Inverse of :func:`to_fixed` (exact for Q16 grid points)."""
    return value / _SCALE


def fixed_point(point: Tuple[float, float]) -> Tuple[int, int]:
    """Quantize a 2D point."""
    return (to_fixed(point[0]), to_fixed(point[1]))


def squared_distance_fixed(ax: int, ay: int, bx: int, by: int) -> int:
    """Exact squared Euclidean distance of two Q16 points.

    The result is a Q32 integer (fits in 64 bits for unit-square
    inputs), computed exactly as a P4 ALU would: differences, squares,
    sum — no rounding anywhere.
    """
    dx = ax - bx
    dy = ay - by
    return dx * dx + dy * dy


@dataclass(frozen=True)
class HeaderType:
    """A P4 header type: ordered named fields with bit widths."""

    name: str
    fields: Tuple[Tuple[str, int], ...]

    def field_width(self, field_name: str) -> int:
        for fname, width in self.fields:
            if fname == field_name:
                return width
        raise P4TypeError(
            f"header {self.name} has no field {field_name!r}"
        )

    def bit_width(self) -> int:
        """Total width of the header in bits."""
        return sum(width for _, width in self.fields)


@dataclass
class Header:
    """An instance of a header type with concrete field values.

    Field writes are range-checked against the declared bit width —
    exactly the discipline a P4 compiler enforces.
    """

    header_type: HeaderType
    valid: bool = False
    _values: Dict[str, int] = field(default_factory=dict)

    def set(self, field_name: str, value: int) -> None:
        width = self.header_type.field_width(field_name)
        if not isinstance(value, int):
            raise P4TypeError(
                f"field {field_name} expects int, got "
                f"{type(value).__name__}"
            )
        if not 0 <= value < (1 << width):
            raise P4TypeError(
                f"value {value} does not fit field "
                f"{self.header_type.name}.{field_name} ({width} bits)"
            )
        self._values[field_name] = value

    def get(self, field_name: str) -> int:
        self.header_type.field_width(field_name)  # validates the name
        return self._values.get(field_name, 0)

    def set_valid(self) -> None:
        self.valid = True

    def set_invalid(self) -> None:
        self.valid = False
        self._values.clear()
