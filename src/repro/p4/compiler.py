"""Compile control-plane state into P4 table entries.

This is the reproduction's analogue of the paper's controller→Thrift
path: it reads the behavioral forwarding state the
:class:`repro.controlplane.Controller` installed (positions, greedy
candidates, virtual-link tuples, extensions) and emits the fixed-point
table entries of the :mod:`repro.p4.gred_program` switches.

Compiling *from* the behavioral state (rather than recomputing it)
guarantees the two data planes are configured identically, which is
what the differential tests rely on.
"""

from __future__ import annotations

from typing import Dict

from ..controlplane import Controller
from .gred_program import NO_PORT, NeighborRecord, P4GredSwitch
from .pipeline import P4RuntimeError
from .types import fixed_point


def compile_switch(controller: Controller,
                   switch_id: int) -> P4GredSwitch:
    """Compile one switch's P4 program instance."""
    behavioral = controller.switches[switch_id]
    p4 = P4GredSwitch(
        switch_id=switch_id,
        position=fixed_point(behavioral.position),
        num_servers=behavioral.num_servers,
    )
    # Greedy candidates: physical neighbors with installed positions.
    for nid, pos in behavioral.physical_neighbor_positions.items():
        port = behavioral.table.physical_port(nid)
        if port is None:
            raise P4RuntimeError(
                f"switch {switch_id}: neighbor {nid} has a position "
                f"but no port"
            )
        x, y = fixed_point(pos)
        p4.install_neighbor(NeighborRecord(
            neighbor_id=nid, x=x, y=y, is_physical=True, port=port,
        ))
    # Greedy candidates: multi-hop DT neighbors, plus their vl-start
    # entries.
    for nid, pos in behavioral.dt_neighbor_positions.items():
        if nid in behavioral.physical_neighbor_positions:
            continue  # already installed as physical
        x, y = fixed_point(pos)
        p4.install_neighbor(NeighborRecord(
            neighbor_id=nid, x=x, y=y, is_physical=False, port=NO_PORT,
        ))
        entry = behavioral.table.virtual_entry(nid)
        if entry is None or entry.succ is None:
            raise P4RuntimeError(
                f"switch {switch_id}: DT neighbor {nid} lacks a "
                f"virtual-link entry"
            )
        succ_port = behavioral.table.physical_port(entry.succ)
        if succ_port is None:
            raise P4RuntimeError(
                f"switch {switch_id}: successor {entry.succ} is not a "
                f"physical neighbor"
            )
        p4.tbl_vl_start.insert_entry(
            key=(nid,), action_name="start_vl",
            params=(nid, entry.succ, succ_port),
        )
    # Relay entries for packets traversing virtual links through or
    # from this switch.
    for entry in behavioral.table.virtual_entries():
        if entry.succ is None:
            continue  # terminal entry: the endpoint strips the header
        succ_port = behavioral.table.physical_port(entry.succ)
        if succ_port is None:
            raise P4RuntimeError(
                f"switch {switch_id}: relay successor {entry.succ} is "
                f"not physically adjacent"
            )
        p4.tbl_vl_relay.insert_entry(
            key=(entry.dest,), action_name="relay",
            params=(entry.succ, succ_port),
        )
    # Range-extension rewrites.
    for ext in behavioral.table.extensions():
        p4.tbl_extension.insert_entry(
            key=(ext.local_serial,), action_name="rewrite",
            params=(ext.target_switch, ext.target_serial),
        )
    return p4


def compile_network(controller: Controller) -> Dict[int, P4GredSwitch]:
    """Compile every switch of the network."""
    return {
        switch_id: compile_switch(controller, switch_id)
        for switch_id in controller.switches
    }
