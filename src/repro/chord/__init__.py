"""Chord baseline: the DHT the paper compares GRED against."""

from .ring import (
    ChordError,
    ChordRing,
    RingNode,
    in_half_open_interval,
    in_open_interval,
)
from .network import ChordNetwork, ChordRouteResult, server_name

__all__ = [
    "ChordRing",
    "ChordError",
    "RingNode",
    "in_half_open_interval",
    "in_open_interval",
    "ChordNetwork",
    "ChordRouteResult",
    "server_name",
]
