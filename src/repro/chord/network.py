"""Chord overlaid on the physical edge network.

``ChordNetwork`` mirrors the :class:`repro.core.GredNetwork` API closely
enough that the experiment harness can drive both systems with the same
workload: place items, retrieve them from random access switches, and
report physical-hop routing cost and per-server load.

Cost model (paper Section VII): every overlay hop between two Chord
nodes costs the physical shortest-path hop count between their host
switches; the routing stretch of a lookup is the total physical cost
divided by the direct shortest path from the access switch to the
storage server's switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import utils
from ..edge import ServerMap, all_servers, attach_uniform, load_vector
from ..graph import Graph, all_pairs_hop_matrix
from .ring import ChordError, ChordRing, RingNode


def server_name(switch: int, serial: int) -> str:
    """Canonical Chord member name of an edge server."""
    return f"server-{switch}-{serial}"


@dataclass
class ChordRouteResult:
    """Outcome of one Chord lookup, with physical cost accounting."""

    data_id: str
    entry_switch: int
    owner: str
    destination_switch: int
    overlay_path: List[str] = field(default_factory=list)
    overlay_hops: int = 0
    physical_hops: int = 0


class ChordNetwork:
    """The Chord baseline running over a physical switch topology.

    Parameters
    ----------
    topology:
        Physical switch graph.
    server_map:
        Edge servers per switch (defaults to ``servers_per_switch``
        uniform unbounded servers, like :class:`GredNetwork`).
    bits:
        Chord ring size exponent.
    virtual_nodes:
        Ring positions per server (1 = plain Chord).
    """

    def __init__(
        self,
        topology: Graph,
        server_map: Optional[ServerMap] = None,
        servers_per_switch: int = 10,
        bits: int = 32,
        virtual_nodes: int = 1,
    ) -> None:
        if server_map is None:
            server_map = attach_uniform(
                topology.nodes(), servers_per_switch=servers_per_switch
            )
        self.topology = topology
        self.server_map = server_map
        members: Dict[str, int] = {}
        self._server_by_name = {}
        for server in all_servers(server_map):
            name = server_name(server.switch, server.serial)
            members[name] = server.switch
            self._server_by_name[name] = server
        self.ring = ChordRing(members, bits=bits,
                              virtual_nodes=virtual_nodes)
        self._hops, order = all_pairs_hop_matrix(topology)
        self._index = {node: i for i, node in enumerate(order)}

    # ------------------------------------------------------------------
    # physical-cost helpers
    # ------------------------------------------------------------------
    def physical_distance(self, switch_a: int, switch_b: int) -> int:
        """Shortest-path hops between two switches (precomputed)."""
        return int(self._hops[self._index[switch_a],
                              self._index[switch_b]])

    def _entry_node(self, entry_switch: int) -> RingNode:
        """The Chord node co-located with the access switch (the user
        enters the overlay at a server on its access switch)."""
        servers = self.server_map.get(entry_switch)
        if not servers:
            raise ChordError(
                f"access switch {entry_switch} hosts no Chord node"
            )
        return self.ring.node_of_owner(
            server_name(entry_switch, servers[0].serial)
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def route_for(self, data_id: str,
                  entry_switch: int) -> ChordRouteResult:
        """Simulate the lookup for ``data_id`` from ``entry_switch``."""
        start = self._entry_node(entry_switch)
        path = self.ring.lookup_path(data_id, start)
        physical = 0
        for a, b in zip(path, path[1:]):
            physical += self.physical_distance(a.host_switch,
                                               b.host_switch)
        owner_node = path[-1]
        return ChordRouteResult(
            data_id=data_id,
            entry_switch=entry_switch,
            owner=owner_node.owner,
            destination_switch=owner_node.host_switch,
            overlay_path=[n.owner for n in path],
            overlay_hops=len(path) - 1,
            physical_hops=physical,
        )

    def place(self, data_id: str, payload=None,
              entry_switch: Optional[int] = None,
              rng: Optional[np.random.Generator] = None
              ) -> ChordRouteResult:
        """Place a data item at its Chord successor."""
        entry = self._resolve_entry(entry_switch, rng)
        result = self.route_for(data_id, entry)
        self._server_by_name[result.owner].store(data_id, payload)
        return result

    def retrieve(self, data_id: str,
                 entry_switch: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None
                 ) -> ChordRouteResult:
        """Look up a data item (storage contents are not modified)."""
        entry = self._resolve_entry(entry_switch, rng)
        return self.route_for(data_id, entry)

    def load_vector(self) -> List[int]:
        """Per-server stored-item counts."""
        return load_vector(self.server_map)

    def average_finger_table_size(self) -> float:
        """Mean distinct routing entries per ring node (for the table
        size comparison against GRED)."""
        nodes = self.ring.ring_nodes()
        total = sum(
            self.ring.finger_table_size(n.node_id) for n in nodes
        )
        return total / len(nodes)

    def _resolve_entry(self, entry_switch: Optional[int],
                       rng: Optional[np.random.Generator]) -> int:
        if entry_switch is not None:
            return entry_switch
        ids = self.topology.nodes()
        rng = utils.rng(rng)
        return ids[int(rng.integers(0, len(ids)))]
