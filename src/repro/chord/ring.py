"""Chord ring: the paper's baseline DHT (Stoica et al., SIGCOMM'01).

Chord hashes nodes and keys onto a ``2^m`` identifier circle; a key is
stored at its *successor* (the first node clockwise from the key).  Each
node keeps a finger table of ``m`` entries, ``finger[k] = successor(id +
2^k)``, and lookups hop through closest-preceding fingers, taking
``O(log n)`` overlay hops.

The evaluation overlays Chord on the same physical topology as GRED: a
Chord node is an *edge server* and every overlay hop expands to the
physical shortest path between the switches hosting the two servers
(paper Fig. 1's example: an 11-physical-hop lookup whose shortest path is
only 5 hops).

Optional *virtual nodes* give each server several ring positions — the
classical Chord load-balancing lever the paper mentions ("Chord can
achieve a better load balance by adding more virtual nodes to each real
node, but it also increases the routing table space usage").
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hashing import chord_id


class ChordError(Exception):
    """Raised for invalid Chord configurations or lookups."""


def in_half_open_interval(x: int, a: int, b: int) -> bool:
    """True when ``x`` is in the ring interval ``(a, b]``.

    The interval wraps modulo the ring size; when ``a == b`` the interval
    is the whole ring (single-node case).
    """
    if a == b:
        return True
    if a < b:
        return a < x <= b
    return x > a or x <= b


def in_open_interval(x: int, a: int, b: int) -> bool:
    """True when ``x`` is in the ring interval ``(a, b)``."""
    if a == b:
        return x != a
    if a < b:
        return a < x < b
    return x > a or x < b


@dataclass(frozen=True)
class RingNode:
    """One position on the identifier circle.

    ``owner`` names the physical server; several ring nodes share one
    owner when virtual nodes are enabled.
    """

    node_id: int
    owner: str
    host_switch: int


class ChordRing:
    """A static Chord ring over a set of named servers.

    Parameters
    ----------
    members:
        Mapping ``server name -> host switch id``.
    bits:
        Ring size exponent ``m`` (default 32, matching the finger-table
        size of the original paper at practical scales).
    virtual_nodes:
        Ring positions per server (1 = plain Chord).
    """

    def __init__(self, members: Dict[str, int], bits: int = 32,
                 virtual_nodes: int = 1) -> None:
        if not members:
            raise ChordError("a Chord ring needs at least one member")
        if virtual_nodes < 1:
            raise ChordError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        if not 8 <= bits <= 256:
            raise ChordError(f"bits must be in [8, 256], got {bits}")
        self.bits = bits
        self.virtual_nodes = virtual_nodes
        self._nodes: List[RingNode] = []
        used = set()
        for owner in sorted(members):
            host = members[owner]
            for v in range(virtual_nodes):
                label = owner if v == 0 else f"{owner}@v{v}"
                node_id = chord_id(label, bits)
                # Resolve (astronomically rare) id collisions by probing.
                while node_id in used:
                    label += "'"
                    node_id = chord_id(label, bits)
                used.add(node_id)
                self._nodes.append(
                    RingNode(node_id=node_id, owner=owner,
                             host_switch=host)
                )
        self._nodes.sort(key=lambda node: node.node_id)
        self._ids = [node.node_id for node in self._nodes]
        self._by_owner: Dict[str, List[RingNode]] = {}
        for node in self._nodes:
            self._by_owner.setdefault(node.owner, []).append(node)
        self._fingers = self._build_finger_tables()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def ring_nodes(self) -> List[RingNode]:
        """All ring positions, sorted by id."""
        return list(self._nodes)

    def owners(self) -> List[str]:
        """All physical members."""
        return sorted(self._by_owner)

    def node_of_owner(self, owner: str) -> RingNode:
        """The first (primary) ring position of a server."""
        nodes = self._by_owner.get(owner)
        if not nodes:
            raise ChordError(f"unknown ring member {owner!r}")
        return nodes[0]

    def successor(self, key_id: int) -> RingNode:
        """The ring node that owns ``key_id`` (first node >= key)."""
        idx = bisect_left(self._ids, key_id % (2 ** self.bits))
        if idx == len(self._ids):
            idx = 0
        return self._nodes[idx]

    def _predecessor_index(self, node_id: int) -> int:
        idx = bisect_left(self._ids, node_id)
        return (idx - 1) % len(self._nodes)

    def _build_finger_tables(self) -> Dict[int, List[RingNode]]:
        """finger[k] = successor(node_id + 2^k) for k in 0..bits-1.

        Consecutive fingers pointing at the same node are stored once per
        distinct target; the per-node table keeps all ``bits`` entries to
        match Chord's definition (the paper's table-size comparison uses
        the full finger count).
        """
        tables: Dict[int, List[RingNode]] = {}
        ring_size = 2 ** self.bits
        for node in self._nodes:
            fingers = [
                self.successor((node.node_id + (1 << k)) % ring_size)
                for k in range(self.bits)
            ]
            tables[node.node_id] = fingers
        return tables

    def finger_table(self, node_id: int) -> List[RingNode]:
        if node_id not in self._fingers:
            raise ChordError(f"no ring node with id {node_id}")
        return list(self._fingers[node_id])

    def finger_table_size(self, node_id: int) -> int:
        """Number of *distinct* routing entries (distinct finger targets
        plus the successor)."""
        fingers = self.finger_table(node_id)
        return len({f.node_id for f in fingers})

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def store_node(self, data_id: str) -> RingNode:
        """The ring node responsible for ``data_id``."""
        return self.successor(chord_id(data_id, self.bits))

    def lookup_path(self, data_id: str, start: RingNode,
                    max_hops: Optional[int] = None) -> List[RingNode]:
        """Overlay path of a Chord lookup from ``start`` for ``data_id``.

        Implements the iterative ``find_successor`` procedure: hop to the
        closest preceding finger until the key falls between the current
        node and its successor, then hop to that successor.  The returned
        list starts at ``start`` and ends at the storage node.
        """
        key = chord_id(data_id, self.bits)
        if max_hops is None:
            max_hops = 4 * self.bits + len(self._nodes)
        path = [start]
        current = start
        if len(self._nodes) == 1:
            return path
        hops = 0
        while True:
            succ = self._successor_of_node(current)
            if in_half_open_interval(key, current.node_id, succ.node_id):
                if succ.node_id != current.node_id:
                    path.append(succ)
                return path
            nxt = self._closest_preceding_finger(current, key)
            if nxt.node_id == current.node_id:
                # Fingers give no progress; fall back to the successor.
                nxt = succ
            path.append(nxt)
            current = nxt
            hops += 1
            if hops > max_hops:
                raise ChordError(
                    f"lookup for {data_id!r} exceeded {max_hops} overlay "
                    f"hops"
                )

    def _successor_of_node(self, node: RingNode) -> RingNode:
        idx = bisect_right(self._ids, node.node_id) % len(self._nodes)
        return self._nodes[idx]

    def _closest_preceding_finger(self, node: RingNode,
                                  key: int) -> RingNode:
        for finger in reversed(self._fingers[node.node_id]):
            if in_open_interval(finger.node_id, node.node_id, key):
                return finger
        return node
