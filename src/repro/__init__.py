"""GRED: Efficient Data Placement and Retrieval Services in Edge Computing.

A faithful Python reproduction of Xie et al., ICDCS 2019.  The package
implements the complete system — SDN control plane (M-position embedding,
C-regulation CVT refinement, multi-hop Delaunay triangulation, rule
compilation), a P4-style greedy-forwarding data plane, the edge server
plane, the Chord baseline, and the full evaluation harness.

Quickstart::

    import numpy as np
    from repro import GredNetwork, attach_uniform, brite_waxman_graph

    rng = np.random.default_rng(7)
    topology, _ = brite_waxman_graph(30, min_degree=3, rng=rng)
    servers = attach_uniform(topology.nodes(), servers_per_switch=4)
    net = GredNetwork(topology, servers, cvt_iterations=50)

    net.place("camera-3/frame-001", payload=b"jpeg-bytes")
    result = net.retrieve("camera-3/frame-001", entry_switch=12)
    assert result.found
"""

from .core import (
    GredError,
    GredNetwork,
    PlacementRecord,
    PlacementResult,
    RetrievalResult,
)
from .chord import ChordNetwork, ChordRing
from .controlplane import Controller, ControllerConfig
from .edge import EdgeServer, attach_heterogeneous, attach_uniform
from .faults import (
    FailureDetector,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .graph import Graph
from .hashing import data_position, replica_id, server_index
from .resilience import (
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    ResilienceConfig,
    ResilientNetwork,
    ResilientOutcome,
)
from .metrics import max_avg_ratio, routing_stretch, summarize
from .simulation import LatencyModel, ResponseDelaySimulator
from .topology import (
    brite_waxman_graph,
    grid_graph,
    ring_graph,
    testbed_topology,
    waxman_graph,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GredNetwork",
    "GredError",
    "PlacementRecord",
    "PlacementResult",
    "RetrievalResult",
    "ChordNetwork",
    "ChordRing",
    "Controller",
    "ControllerConfig",
    "EdgeServer",
    "attach_uniform",
    "attach_heterogeneous",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FailureDetector",
    "Graph",
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResilientNetwork",
    "ResilientOutcome",
    "data_position",
    "server_index",
    "replica_id",
    "routing_stretch",
    "max_avg_ratio",
    "summarize",
    "LatencyModel",
    "ResponseDelaySimulator",
    "brite_waxman_graph",
    "waxman_graph",
    "grid_graph",
    "ring_graph",
    "testbed_topology",
]
