"""Controller-side failure detection and repair.

The detector models the heartbeat loop a production SDN controller
runs: every ``interval`` seconds it probes each switch (a southbound
``Probe`` message) and each link.  Crashed switches do not answer;
detection is therefore driven by the ground-truth
:class:`~repro.faults.state.FaultState` the injector maintains.

``repair()`` then performs the full recovery pipeline:

1. prune dead switches and failed links from the controller's view in
   one pass (:meth:`~repro.controlplane.Controller.absorb_failures`),
   stranding any component disconnected from the main one — the DT is
   repaired over the surviving participants and all rules reinstalled;
2. replace crashed edge servers with fresh (empty) ones at the same
   ``(switch, serial)`` slot, restoring the ``H(d) mod s`` mapping;
3. re-replicate every catalogued item whose surviving replica count
   dropped below its target: missing ``H(d || i)`` copies (paper
   Section VI) are re-placed from a surviving copy.  Items with zero
   surviving copies are reported as lost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hashing import replica_id
from ..obs import EventLevel, default_registry
from .state import FaultState


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of one probe sweep (no state is mutated)."""

    dead_switches: List[int]
    dead_links: List[Tuple[int, int]]
    dead_servers: List[Tuple[int, int]]
    probes_sent: int

    @property
    def clean(self) -> bool:
        return not (self.dead_switches or self.dead_links
                    or self.dead_servers)


@dataclass
class RepairReport:
    """Outcome of a full detection + repair pass."""

    detection: DetectionReport
    stranded_switches: List[int] = field(default_factory=list)
    servers_replaced: int = 0
    re_replicated: int = 0
    lost_items: List[str] = field(default_factory=list)
    #: Catalogued items whose newest stamp is a tombstone: repair skips
    #: them instead of resurrecting deleted data from stale survivors.
    suppressed_resurrections: int = 0
    #: Replica placements skipped because no route reached the home
    #: slot (e.g. repair ran during a partition); a later sweep or a
    #: ``scrub`` retries them.
    unroutable_copies: int = 0
    #: Simulated seconds from the first fault to the repairing sweep
    #: (heartbeat discretization); 0.0 when nothing was repaired.
    recovery_time: float = 0.0

    @property
    def items_lost(self) -> int:
        return len(self.lost_items)


class FailureDetector:
    """Heartbeat-driven failure detection and repair.

    Parameters
    ----------
    net:
        The :class:`~repro.core.GredNetwork` under supervision.
    state:
        Fault ground truth; defaults to ``net.fault_state``.
    catalog:
        ``data_id -> target copy count`` for re-replication.  Items
        not catalogued are repaired opportunistically only (their
        surviving copies stay where they are).
    channel:
        Optional southbound :class:`~repro.controlplane.southbound.
        RecordingChannel`; every heartbeat probe is sent through it so
        control-plane traffic is observable.
    interval:
        Heartbeat period in simulated seconds, used to compute the
        deterministic detection latency of :meth:`repair`.
    """

    def __init__(self, net, state: Optional[FaultState] = None,
                 catalog: Optional[Dict[str, int]] = None,
                 channel=None, interval: float = 0.1) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.net = net
        self.state = state if state is not None else net.fault_state
        if self.state is None:
            self.state = FaultState()
        self.catalog: Dict[str, int] = dict(catalog or {})
        self.channel = channel
        self.interval = interval

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def register(self, data_id: str, copies: int = 1) -> None:
        """Track an item's target replica count for re-replication."""
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self.catalog[data_id] = copies

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def sweep(self) -> DetectionReport:
        """Probe every switch and link; report what is dead."""
        from ..controlplane.southbound import Probe

        controller = self.net.controller
        transport = getattr(controller, "transport", None)
        dead_switches: List[int] = []
        probes = 0
        for switch_id in sorted(controller.switches):
            if self.channel is not None:
                self.channel.send(Probe(switch=switch_id))
            probes += 1
            if not self.state.switch_alive(switch_id):
                dead_switches.append(switch_id)
                # Sever the southbound channel: nothing more is shipped
                # to the corpse; its delta lands on the pending queue.
                if transport is not None:
                    transport.mark_unreachable(switch_id)
            elif transport is not None:
                # A switch answering probes is reachable again — its
                # queued deltas drain on the next reconcile.
                transport.mark_reachable(switch_id)
        dead_set = set(dead_switches)
        dead_links: List[Tuple[int, int]] = []
        for u, v, _ in controller.topology.edges():
            if u in dead_set or v in dead_set:
                continue  # subsumed by the switch failure
            if self.state.link_down(u, v):
                dead_links.append((u, v) if u <= v else (v, u))
        dead_servers = sorted(
            s for s in self.state.crashed_servers
            if s[0] not in dead_set and s[0] in controller.switches
        )
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.sweeps").inc()
            if dead_switches:
                registry.counter("faults.detected_switch_failures").inc(
                    len(dead_switches))
            if dead_links:
                registry.counter("faults.detected_link_failures").inc(
                    len(dead_links))
        return DetectionReport(
            dead_switches=dead_switches,
            dead_links=sorted(dead_links),
            dead_servers=dead_servers,
            probes_sent=probes,
        )

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def repair(self, fault_time: float = 0.0) -> RepairReport:
        """Detect and repair in one pass; returns what was done.

        ``fault_time`` (simulated) is used to compute the recovery
        latency: the sweep fires at the next heartbeat tick after the
        fault, so ``recovery_time = next_tick - fault_time``.
        """
        detection = self.sweep()
        report = RepairReport(detection=detection)
        if detection.clean:
            return report
        registry = default_registry()
        controller = self.net.controller
        # 1. prune the control plane and repair DT + rules.
        if detection.dead_switches or detection.dead_links:
            report.stranded_switches = controller.absorb_failures(
                detection.dead_switches, detection.dead_links)
            transport = getattr(controller, "transport", None)
            if transport is not None:
                # Absorbed switches no longer exist — drop their
                # unreachable marks so the set only names live outages.
                for switch_id in (detection.dead_switches
                                  + report.stranded_switches):
                    transport.mark_reachable(switch_id)
            for switch_id in detection.dead_switches:
                self.state.crashed_switches.discard(switch_id)
            for link in detection.dead_links:
                self.state.down_links.discard(link)
            self._prune_link_state()
        # 2. replace crashed servers on surviving switches.
        report.servers_replaced = self._replace_servers(
            detection.dead_servers)
        # 3. restore replication targets.
        report.lost_items, report.re_replicated = self._re_replicate()
        report.suppressed_resurrections = getattr(
            self, "_last_suppressed", 0)
        report.unroutable_copies = getattr(self, "_last_unroutable", 0)
        tick = math.floor(fault_time / self.interval) + 1
        report.recovery_time = tick * self.interval - fault_time
        if registry.enabled:
            if report.stranded_switches:
                registry.counter("faults.stranded_switches").inc(
                    len(report.stranded_switches))
            if report.servers_replaced:
                registry.counter("faults.servers_replaced").inc(
                    report.servers_replaced)
            if report.re_replicated:
                registry.counter("faults.re_replicated").inc(
                    report.re_replicated)
            if report.lost_items:
                registry.counter("faults.items_lost").inc(
                    len(report.lost_items))
            if report.suppressed_resurrections:
                registry.counter(
                    "durability.suppressed_resurrections").inc(
                        report.suppressed_resurrections)
            registry.gauge("faults.recovery_time").set(
                report.recovery_time)
        registry.event(
            "failures_repaired", level=EventLevel.WARNING,
            dead_switches=len(detection.dead_switches),
            dead_links=len(detection.dead_links),
            stranded=len(report.stranded_switches),
            re_replicated=report.re_replicated,
            items_lost=report.items_lost,
        )
        return report

    def _prune_link_state(self) -> None:
        """Drop loss/slow markings for links that no longer exist."""
        topology = self.net.topology
        for table in (self.state.loss, self.state.slow):
            gone = [k for k in table if not topology.has_edge(*k)]
            for key in gone:
                table.pop(key, None)

    def _replace_servers(self, dead_servers) -> int:
        from ..edge import EdgeServer

        replaced = 0
        for switch_id, serial in dead_servers:
            servers = self.net.server_map.get(switch_id)
            if servers is None or not (0 <= serial < len(servers)):
                self.state.crashed_servers.discard((switch_id, serial))
                continue
            old = servers[serial]
            servers[serial] = EdgeServer(switch=switch_id, serial=serial,
                                         capacity=old.capacity)
            self.state.crashed_servers.discard((switch_id, serial))
            replaced += 1
        # Servers on switches that died with their switch are gone for
        # good; forget them.
        self.state.crashed_servers = {
            s for s in self.state.crashed_servers
            if s[0] in self.net.controller.switches
        }
        return replaced

    def _tombstone_index(self) -> Dict[str, Tuple[int, int]]:
        """Newest tombstone stamp per *base* data id, gathered from
        server tombstones and parked delete hints."""
        from ..hashing import parse_replica_id

        newest: Dict[str, Tuple[int, int]] = {}
        for switch_id in sorted(self.net.server_map):
            for server in self.net.server_map[switch_id]:
                for copy_id, stamp in server.tombstones().items():
                    base, _ = parse_replica_id(copy_id)
                    if stamp > newest.get(base, (0, -1)):
                        newest[base] = stamp
                for hint in server.hints():
                    if hint.op != "delete":
                        continue
                    base, _ = parse_replica_id(hint.copy_id)
                    if hint.stamp > newest.get(base, (0, -1)):
                        newest[base] = hint.stamp
        return newest

    def _re_replicate(self) -> Tuple[List[str], int]:
        """Re-place missing replicas from surviving copies.

        Tombstone-aware: an item whose newest stamp network-wide is a
        tombstone is *deleted*, not damaged — repair must not rebuild
        it from a stale survivor (counted as a suppressed
        resurrection, see :attr:`RepairReport.suppressed_resurrections`
        via :attr:`_last_suppressed`).
        """
        if not self.catalog:
            return [], 0
        from ..core import GredError
        from ..dataplane import ForwardingError
        from ..edge import NO_STAMP

        index: Dict[str, object] = {}
        for switch_id in sorted(self.net.server_map):
            for server in self.net.server_map[switch_id]:
                for item_id in server.stored_ids():
                    index.setdefault(item_id, server)
        tombstones = self._tombstone_index()
        lost: List[str] = []
        restored = 0
        self._last_suppressed = 0
        self._last_unroutable = 0
        for data_id in sorted(self.catalog):
            copies = self.catalog[data_id]
            holders = [
                (i, index.get(replica_id(data_id, i)))
                for i in range(copies)
            ]
            present = [(i, s) for i, s in holders if s is not None]
            if data_id in tombstones:
                live_max = max(
                    (s.stamp_of(replica_id(data_id, i)) or NO_STAMP
                     for i, s in present), default=NO_STAMP)
                if tombstones[data_id] > live_max:
                    if present:
                        self._last_suppressed += 1
                    continue
            if not present:
                lost.append(data_id)
                continue
            source_index, source = present[0]
            missing = [i for i, s in holders if s is None]
            if not missing:
                continue
            source_copy = replica_id(data_id, source_index)
            payload = source.retrieve(source_copy)
            stamp = source.stamp_of(source_copy)
            for i in missing:
                try:
                    self.net._place_one(replica_id(data_id, i), payload,
                                        source.switch, stamp=stamp)
                except (ForwardingError, GredError):
                    # No route to the home slot (partition / outage);
                    # leave the copy for a later sweep or scrub.
                    self._last_unroutable += 1
                    continue
                restored += 1
        return lost, restored
