"""Applies fault events to a live :class:`~repro.core.GredNetwork`.

A crash is *not* a graceful leave: ``GredNetwork.remove_switch``
migrates every stored item first, while :meth:`FaultInjector.
crash_switch` destroys the data on the victim's servers and merely
marks the switch dead in the shared :class:`FaultState`.  The control
plane keeps its (now stale) view until a
:class:`~repro.faults.detector.FailureDetector` sweep repairs it; in
between, the data plane routes around the corpse in degraded mode.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..obs import EventLevel, default_registry
from .plan import FaultEvent, FaultPlan, FaultPlanError
from .state import FaultState, link_key


class FaultInjector:
    """Deterministic fault injection against one network.

    Parameters
    ----------
    net:
        The :class:`~repro.core.GredNetwork` to break.  The injector
        attaches its :class:`FaultState` as ``net.fault_state`` so the
        data plane and the simulators honor the injected faults.
    seed:
        Seeds the injector's generator (used when a caller asks for a
        random victim); all direct injections are fully deterministic.
    """

    def __init__(self, net, seed: int = 0) -> None:
        self.net = net
        self.state: FaultState = FaultState()
        net.fault_state = self.state
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.applied: List[FaultEvent] = []

    @classmethod
    def for_region(cls, fed, region: int,
                   seed: int = 0) -> "FaultInjector":
        """An injector scoped to one region of a
        :class:`~repro.controlplane.FederatedNetwork`.

        Faults attach to that region's shard network only: its fault
        state, its degraded routing, its fast-path stand-down.  Every
        other shard keeps a clean (absent) fault state, which is what
        lets a region-wide partition degrade one region while the rest
        of the federation keeps serving.
        """
        return cls(fed.shard(region).net, seed=seed)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def apply(self, event: FaultEvent) -> None:
        """Apply one fault event to the network."""
        handlers = {
            "switch_crash": lambda: self.crash_switch(event.switch),
            "server_crash": lambda: self.crash_server(event.switch,
                                                      event.serial),
            "link_down": lambda: self.link_down(event.u, event.v),
            "link_up": lambda: self.link_up(event.u, event.v),
            "packet_loss": lambda: self.set_packet_loss(
                event.u, event.v, event.probability),
            "slow_link": lambda: self.set_slow_link(
                event.u, event.v, event.factor),
            "control_drop": lambda: self.set_control_fault(
                drop=event.probability),
            "control_dup": lambda: self.set_control_fault(
                dup=event.probability),
            "control_delay": lambda: self.set_control_fault(
                delay=event.probability),
            "control_reorder": lambda: self.set_control_fault(
                reorder_window=event.window),
            "partition": lambda: self.partition(event.switches),
            "heal_partition": lambda: self.heal_partition(),
        }
        handlers[event.kind]()
        self.applied.append(event)
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.injected").inc()

    def apply_plan(self, plan: FaultPlan) -> int:
        """Apply every event of a plan immediately (time order);
        returns the number of events applied."""
        for event in plan:
            self.apply(event)
        return len(plan)

    # ------------------------------------------------------------------
    # individual faults
    # ------------------------------------------------------------------
    def crash_switch(self, switch_id: int) -> int:
        """Unannounced switch crash: all data on its servers is lost.

        Returns the number of destroyed items.  The control plane is
        *not* informed — detection is the
        :class:`~repro.faults.detector.FailureDetector`'s job.
        """
        if switch_id not in self.net.controller.switches:
            raise FaultPlanError(
                f"cannot crash unknown switch {switch_id}")
        if not self.state.switch_alive(switch_id):
            raise FaultPlanError(
                f"switch {switch_id} has already crashed")
        destroyed = 0
        for server in self.net.server_map.get(switch_id, []):
            destroyed += server.load
            server.clear()
        self.state.crashed_switches.add(switch_id)
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.switch_crashes").inc()
            if destroyed:
                registry.counter("faults.items_destroyed").inc(destroyed)
        registry.event("switch_crash", level=EventLevel.ERROR,
                       switch=switch_id, items_destroyed=destroyed)
        return destroyed

    def crash_server(self, switch_id: int, serial: int) -> int:
        """One edge server dies; its items are lost.  Returns the
        number of destroyed items."""
        servers = self.net.server_map.get(switch_id)
        if servers is None or not (0 <= serial < len(servers)):
            raise FaultPlanError(
                f"cannot crash unknown server ({switch_id}, {serial})")
        if (switch_id, serial) in self.state.crashed_servers:
            raise FaultPlanError(
                f"server ({switch_id}, {serial}) has already crashed")
        server = servers[serial]
        destroyed = server.load
        server.clear()
        self.state.crashed_servers.add((switch_id, serial))
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.server_crashes").inc()
            if destroyed:
                registry.counter("faults.items_destroyed").inc(destroyed)
        registry.event("server_crash", level=EventLevel.ERROR,
                       switch=switch_id, serial=serial,
                       items_destroyed=destroyed)
        return destroyed

    def link_down(self, u: int, v: int) -> None:
        """A physical link fails (packets on it are dropped)."""
        if not self.net.topology.has_edge(u, v):
            raise FaultPlanError(f"cannot fail unknown link ({u}, {v})")
        if self.state.link_down(u, v):
            raise FaultPlanError(f"link ({u}, {v}) is already down")
        self.state.down_links.add(link_key(u, v))
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.link_downs").inc()
        registry.event("link_fault", level=EventLevel.WARNING, u=u, v=v)

    def link_up(self, u: int, v: int) -> None:
        """A failed link recovers.

        If a repair sweep already pruned the link from the topology,
        it is re-added through the controller (rules recompiled).
        """
        self.state.down_links.discard(link_key(u, v))
        if not self.net.topology.has_edge(u, v):
            # The detector removed it; restore through the control plane
            # so ports / relay paths are recompiled.
            if (self.net.topology.has_node(u)
                    and self.net.topology.has_node(v)):
                self.net.controller.add_link(u, v)
            else:
                raise FaultPlanError(
                    f"cannot restore link ({u}, {v}): an endpoint no "
                    f"longer exists"
                )
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.link_ups").inc()
        registry.event("link_recovered", u=u, v=v)

    def set_packet_loss(self, u: int, v: int,
                        probability: float) -> None:
        """Set the loss probability of a link (0 clears it)."""
        if not self.net.topology.has_edge(u, v):
            raise FaultPlanError(
                f"cannot degrade unknown link ({u}, {v})")
        if not 0.0 <= probability <= 1.0:
            raise FaultPlanError(
                f"loss probability must be in [0, 1], got {probability}")
        if probability == 0.0:
            self.state.loss.pop(link_key(u, v), None)
        else:
            self.state.loss[link_key(u, v)] = probability
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.loss_injections").inc()

    def set_slow_link(self, u: int, v: int, factor: float) -> None:
        """Multiply a link's serialization/propagation delay (1 clears)."""
        if not self.net.topology.has_edge(u, v):
            raise FaultPlanError(
                f"cannot degrade unknown link ({u}, {v})")
        if factor < 1.0:
            raise FaultPlanError(
                f"slow-link factor must be >= 1, got {factor}")
        if factor == 1.0:
            self.state.slow.pop(link_key(u, v), None)
        else:
            self.state.slow[link_key(u, v)] = factor
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.slow_links").inc()

    def partition(self, switches) -> int:
        """Split the listed switches away from the rest of the network.

        The victims are assigned a fresh partition group; the data
        plane refuses to forward packets across groups (see
        :meth:`FaultState.can_forward`).  Repeated calls stack: each
        creates a new group, so three calls yield four sides.  Only the
        data plane is affected — the controller's southbound channel is
        a separate management network.  Returns the new group id.
        """
        victims = sorted(set(switches))
        unknown = [s for s in victims
                   if s not in self.net.controller.switches]
        if unknown:
            raise FaultPlanError(
                f"cannot partition unknown switch(es) {unknown}")
        group = max(self.state.partitions.values(), default=0) + 1
        for switch_id in victims:
            self.state.partitions[switch_id] = group
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.partitions").inc()
        registry.event("partition", level=EventLevel.ERROR,
                       switches=victims, group=group)
        return group

    def heal_partition(self) -> int:
        """Remove every active partition; returns how many switches
        were rejoined to the main group."""
        healed = len(self.state.partitions)
        self.state.partitions.clear()
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.partition_heals").inc()
        registry.event("partition_healed", switches_rejoined=healed)
        return healed

    def _ensure_transport(self):
        """The controller's lossy southbound transport, attached on
        first use (seeded from the injector's seed so two runs with the
        same seeds inject identical channel faults)."""
        controller = self.net.controller
        if controller.transport is None:
            from ..controlplane.channel import FaultyChannel

            controller.attach_transport(
                FaultyChannel(seed=self.seed + 1))
        return controller.transport

    def set_control_fault(self, *, drop=None, dup=None, delay=None,
                          reorder_window=None) -> None:
        """Degrade the controller's southbound channel.

        Attaches a :class:`~repro.controlplane.channel.FaultyChannel`
        to the controller on first use (all southbound traffic from
        then on goes through the transactional applier), then sets the
        given knobs; ``None`` leaves a knob unchanged.
        """
        from ..controlplane.channel import ControlChannelError

        transport = self._ensure_transport()
        try:
            transport.configure(drop=drop, dup=dup, delay=delay,
                                reorder_window=reorder_window)
        except ControlChannelError as exc:
            raise FaultPlanError(str(exc)) from exc
        registry = default_registry()
        if registry.enabled:
            registry.counter("faults.control_faults").inc()
        registry.event("control_fault", level=EventLevel.WARNING,
                       drop=transport.drop, dup=transport.dup,
                       delay=transport.delay,
                       reorder_window=transport.reorder_window)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def random_alive_switch(self) -> int:
        """A uniformly random non-crashed switch (deterministic under
        the injector's seed)."""
        alive = [s for s in self.net.switch_ids()
                 if self.state.switch_alive(s)]
        if not alive:
            raise FaultPlanError("no switch is alive")
        return alive[int(self.rng.integers(0, len(alive)))]
