"""Fault injection, failure detection and resilience for GRED.

The paper's dynamics section (Section VI) only covers *graceful*
switch join/leave: ``GredNetwork.remove_switch`` migrates every stored
item before the switch disappears.  A production SDN must also survive
the ungraceful case — a switch that crashes without warning loses the
data on its servers, links fail, packets are dropped.  This package
adds the three layers such a deployment needs:

* **Injection** (:mod:`plan`, :mod:`injector`): a declarative,
  seedable :class:`FaultPlan` of timed events (switch crash, server
  crash, link down/up, packet loss, slow link) applied to a
  :class:`~repro.core.GredNetwork` by the :class:`FaultInjector` and
  honored by the data plane and the packet-level simulator.
* **Detection & repair** (:mod:`detector`): a controller-side
  heartbeat sweep (:class:`FailureDetector`) that discovers dead
  switches and links, repairs the DT and reinstalls rules over the
  surviving topology, replaces crashed servers, and re-replicates
  items whose surviving replica count dropped below target.
* **Harness** (:mod:`harness`): the ``gred chaos`` experiment —
  replay a workload under a fault plan and report availability, lost
  items, re-replication and hop inflation through ``faults.*``
  telemetry.

Everything is deterministic under a fixed seed: two runs of the same
plan and workload produce identical reports.
"""

from .detector import DetectionReport, FailureDetector, RepairReport
from .harness import ChaosConfig, run_chaos
from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultPlanError
from .state import FaultState

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "FaultState",
    "FaultInjector",
    "FailureDetector",
    "DetectionReport",
    "RepairReport",
    "ChaosConfig",
    "run_chaos",
]
