"""The ``gred chaos`` experiment: a workload replayed under faults.

One chaos run measures the full resilience story on a BRITE-Waxman
deployment:

1. **Baseline** — place ``items`` with ``copies`` replicas each and
   retrieve every item once; record availability and mean round-trip
   hops of the healthy network.
2. **Faults under load** — replay a retrieval trace through the
   packet-level simulator while a :class:`~repro.faults.plan.FaultPlan`
   strikes mid-trace (default: crash one random switch halfway through
   the window); packets on dead hardware are dropped and retransmitted
   with exponential backoff.
3. **Detection & repair** — a :class:`~repro.faults.detector.
   FailureDetector` sweep prunes the control plane, repairs the DT,
   replaces crashed servers and re-replicates items below their target
   copy count.
4. **Recovered** — retrieve every surviving item again; with enough
   replicas the availability after repair is 1.0 and the mean hop
   count quantifies the routing inflation caused by the failures
   (``faults.hop_inflation``).

The report is pure data (JSON-serializable) and contains no wall-clock
values, so two runs with the same config are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core import GredNetwork
from ..controlplane.southbound import RecordingChannel
from ..controlplane.verification import verify_installed_state
from ..edge import attach_uniform
from ..obs import MetricsRegistry, default_registry, set_default_registry
from ..simulation import LinkModel, PacketLevelSimulator
from ..topology import brite_waxman_graph
from ..workloads import uniform_retrieval_trace
from .detector import FailureDetector
from .injector import FaultInjector
from .plan import FaultEvent, FaultPlan


@dataclass
class ChaosConfig:
    """Parameters of one chaos experiment."""

    switches: int = 30
    min_degree: int = 3
    servers_per_switch: int = 2
    cvt_iterations: int = 20
    items: int = 60
    copies: int = 3
    requests: int = 120
    seed: int = 0
    #: Faults to inject; ``None`` crashes one random switch at
    #: ``duration / 2``.
    plan: Optional[FaultPlan] = None
    #: Control-channel faults (``control_*`` events) applied *before*
    #: the load window: the whole run, including repair, then goes
    #: through a lossy southbound channel, and the harness finishes
    #: with an anti-entropy reconcile whose outcome lands in the
    #: report's ``southbound`` section.
    control_plan: Optional[FaultPlan] = None
    #: Length of the request window in simulated seconds.
    duration: float = 1.0
    #: Heartbeat period of the failure detector.
    detection_interval: float = 0.1
    request_size: int = 256
    response_size: int = 4096
    #: Packet-sim retransmission budget per request.
    max_attempts: int = 3
    retry_backoff: float = 0.01

    def __post_init__(self) -> None:
        if self.switches < 2:
            raise ValueError("a chaos run needs at least 2 switches")
        if self.items < 1 or self.requests < 0:
            raise ValueError("items must be >= 1 and requests >= 0")
        if self.copies < 1:
            raise ValueError("copies must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def to_dict(self) -> Dict:
        return {
            "switches": self.switches,
            "min_degree": self.min_degree,
            "servers_per_switch": self.servers_per_switch,
            "cvt_iterations": self.cvt_iterations,
            "items": self.items,
            "copies": self.copies,
            "requests": self.requests,
            "seed": self.seed,
            "duration": self.duration,
            "detection_interval": self.detection_interval,
            "control_plan": (self.control_plan.to_dict()
                             if self.control_plan is not None else None),
        }


def _retrieval_pass(net: GredNetwork, item_ids: List[str],
                    copies: int, rng: np.random.Generator,
                    skip=frozenset()) -> Dict:
    """Retrieve every item once; availability + mean round-trip hops."""
    found = 0
    probed = 0
    hops: List[int] = []
    for data_id in item_ids:
        if data_id in skip:
            continue
        probed += 1
        result = net.retrieve(data_id, copies=copies, rng=rng)
        if result.found:
            found += 1
            hops.append(result.round_trip_hops)
    return {
        "items_probed": probed,
        "items_found": found,
        "availability": (found / probed) if probed else 1.0,
        "mean_round_trip_hops": (
            sum(hops) / len(hops) if hops else 0.0),
    }


def _faults_counters(registry: MetricsRegistry) -> Dict[str, float]:
    """All ``faults.*`` counter values, name-sorted."""
    return registry.counter_values("faults.")


def run_chaos(config: ChaosConfig) -> Dict:
    """Run one chaos experiment; returns the deterministic report.

    The run swaps in a fresh *enabled* metrics registry so the
    ``faults.*`` telemetry in the report is exactly this experiment's,
    and restores the previous registry on exit.
    """
    previous = default_registry()
    registry = MetricsRegistry(enabled=True)
    set_default_registry(registry)
    try:
        return _run_chaos(config, registry)
    finally:
        set_default_registry(previous)


def _run_chaos(config: ChaosConfig,
               registry: MetricsRegistry) -> Dict:
    # -- deployment -----------------------------------------------------
    topology, _ = brite_waxman_graph(
        config.switches, min_degree=config.min_degree,
        rng=np.random.default_rng(config.seed))
    servers = attach_uniform(
        topology.nodes(), servers_per_switch=config.servers_per_switch)
    net = GredNetwork(topology, servers,
                      cvt_iterations=config.cvt_iterations,
                      seed=config.seed)
    item_ids = [f"chaos-{i}" for i in range(config.items)]
    place_rng = np.random.default_rng(config.seed + 10)
    for data_id in item_ids:
        net.place(data_id, payload=f"payload:{data_id}",
                  copies=config.copies, rng=place_rng)

    # -- baseline pass --------------------------------------------------
    baseline = _retrieval_pass(net, item_ids, config.copies,
                               np.random.default_rng(config.seed + 11))

    # -- faults under load ----------------------------------------------
    injector = FaultInjector(net, seed=config.seed + 1)
    if config.control_plan is not None:
        # Degrade the southbound channel up front: every rule install
        # from here on (repair included) rides the lossy transport.
        injector.apply_plan(config.control_plan)
    plan = config.plan
    if plan is None:
        plan = FaultPlan([FaultEvent(
            time=config.duration * 0.5, kind="switch_crash",
            switch=injector.random_alive_switch())])
    trace = uniform_retrieval_trace(
        item_ids, net.switch_ids(), config.requests, config.duration,
        np.random.default_rng(config.seed + 12))
    simulator = PacketLevelSimulator(
        net, LinkModel(), fault_state=injector.state,
        loss_rng=np.random.default_rng(config.seed + 2),
        max_attempts=config.max_attempts,
        retry_backoff=config.retry_backoff)
    completions = simulator.run(trace,
                                request_size=config.request_size,
                                response_size=config.response_size,
                                injector=injector, plan=plan)
    under_faults = {
        "requests": len(trace),
        "completed": len(completions),
        "failed": len(simulator.failed),
        "mean_response_delay": (
            sum(c.response_delay for c in completions)
            / len(completions) if completions else 0.0),
    }

    # -- detection & repair ---------------------------------------------
    channel = RecordingChannel()
    detector = FailureDetector(
        net, state=injector.state,
        catalog={d: config.copies for d in item_ids},
        channel=channel, interval=config.detection_interval)
    fault_time = plan.first_fault_time or 0.0
    repair = detector.repair(fault_time=fault_time)
    repair_summary = {
        "dead_switches": repair.detection.dead_switches,
        "dead_links": [list(link)
                       for link in repair.detection.dead_links],
        "stranded_switches": repair.stranded_switches,
        "servers_replaced": repair.servers_replaced,
        "re_replicated": repair.re_replicated,
        "lost_items": repair.lost_items,
        "recovery_time": repair.recovery_time,
        "probes_sent": repair.detection.probes_sent,
        "southbound_messages": channel.count(),
    }

    # -- anti-entropy reconcile -----------------------------------------
    # Under a lossy control channel the repair's rule installs may
    # themselves have been dropped or reordered; a reconcile sweep
    # repairs whatever divergence survived the retries.
    transport = getattr(net.controller, "transport", None)
    southbound_summary = None
    if transport is not None:
        reconcile = net.controller.reconcile()
        southbound_summary = {
            "channel": transport.stats.to_dict(),
            "reconcile": reconcile.to_dict(),
            "pending_after_reconcile": sorted(
                net.controller.pending_deltas),
        }

    # -- recovered pass -------------------------------------------------
    # Same entry-point RNG seed as the baseline pass, so the hop
    # comparison reflects the repaired routes, not different entries.
    recovered = _retrieval_pass(net, item_ids, config.copies,
                                np.random.default_rng(config.seed + 11),
                                skip=frozenset(repair.lost_items))
    hop_inflation = (
        recovered["mean_round_trip_hops"]
        / baseline["mean_round_trip_hops"]
        if baseline["mean_round_trip_hops"] else 1.0)
    registry.gauge("faults.hop_inflation").set(hop_inflation)
    violations = verify_installed_state(
        net.controller, fault_state=injector.state,
        desired_plan=(net.controller._desired_plan()
                      if transport is not None else None))

    return {
        "config": config.to_dict(),
        "plan": plan.to_dict(),
        "baseline": baseline,
        "under_faults": under_faults,
        "repair": repair_summary,
        "southbound": southbound_summary,
        "recovered": recovered,
        # Headline figures (acceptance criteria of the chaos command).
        "availability": recovered["availability"],
        "items_lost": repair.items_lost,
        "re_replicated": repair.re_replicated,
        "hop_inflation": hop_inflation,
        "recovery_time": repair.recovery_time,
        "verifier_violations": len(violations),
        "post_reconcile_divergence": (
            len(southbound_summary["reconcile"]["divergent_final"])
            if southbound_summary is not None else 0),
        "faults_metrics": _faults_counters(registry),
    }
