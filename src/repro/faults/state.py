"""Shared ground-truth fault state.

A single :class:`FaultState` instance is attached to a
:class:`~repro.core.GredNetwork` (``net.fault_state``) by the
:class:`~repro.faults.injector.FaultInjector`.  The data plane
(:func:`repro.dataplane.route_packet`), the retrieval failover in
``GredNetwork.retrieve`` and the packet-level simulator all consult it;
the :class:`~repro.faults.detector.FailureDetector` reads it as the
heartbeat oracle (a crashed switch does not answer its probe).

The module is deliberately import-free within the package so the data
plane can type against it without a circular import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

LinkKey = Tuple[int, int]


def link_key(u: int, v: int) -> LinkKey:
    """Canonical (sorted) key for an undirected link."""
    return (u, v) if u <= v else (v, u)


@dataclass
class FaultState:
    """Which parts of the network are currently failed or degraded."""

    crashed_switches: Set[int] = field(default_factory=set)
    crashed_servers: Set[Tuple[int, int]] = field(default_factory=set)
    down_links: Set[LinkKey] = field(default_factory=set)
    #: Per-link packet loss probability in [0, 1].
    loss: Dict[LinkKey, float] = field(default_factory=dict)
    #: Per-link delay multiplier (> 1 means slower).
    slow: Dict[LinkKey, float] = field(default_factory=dict)
    #: Network partition: switch -> partition group.  Switches not in
    #: the map are group 0; packets cannot cross groups.  Empty = no
    #: partition (the hot-path check is one falsy test).
    partitions: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # queries (hot path: keep them trivial)
    # ------------------------------------------------------------------
    def switch_alive(self, switch_id: int) -> bool:
        return switch_id not in self.crashed_switches

    def server_alive(self, server_id: Tuple[int, int]) -> bool:
        return (server_id not in self.crashed_servers
                and server_id[0] not in self.crashed_switches)

    def link_down(self, u: int, v: int) -> bool:
        return link_key(u, v) in self.down_links

    def same_side(self, u: int, v: int) -> bool:
        """Whether two switches sit on the same side of the current
        partition (trivially true when none is active)."""
        if not self.partitions:
            return True
        groups = self.partitions
        return groups.get(u, 0) == groups.get(v, 0)

    def can_forward(self, u: int, v: int) -> bool:
        """Whether a packet at ``u`` can be handed to neighbor ``v``."""
        if (v in self.crashed_switches
                or link_key(u, v) in self.down_links):
            return False
        if self.partitions:
            groups = self.partitions
            return groups.get(u, 0) == groups.get(v, 0)
        return True

    def loss_probability(self, u: int, v: int) -> float:
        return self.loss.get(link_key(u, v), 0.0)

    def delay_factor(self, u: int, v: int) -> float:
        return self.slow.get(link_key(u, v), 1.0)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def any_active(self) -> bool:
        return bool(self.crashed_switches or self.crashed_servers
                    or self.down_links or self.loss or self.slow
                    or self.partitions)

    def clear(self) -> None:
        self.crashed_switches.clear()
        self.crashed_servers.clear()
        self.down_links.clear()
        self.loss.clear()
        self.slow.clear()
        self.partitions.clear()
