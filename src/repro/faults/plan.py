"""Declarative fault plans: timed failure events.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records.
Plans are pure data — JSON round-trippable, validated on construction,
and replayed either instantaneously (phase experiments) or on the
packet simulator's clock (crash-under-load).  Event kinds::

    {"time": 0.2, "kind": "switch_crash", "switch": 4}
    {"time": 0.3, "kind": "server_crash", "switch": 2, "serial": 0}
    {"time": 0.4, "kind": "link_down",   "u": 1, "v": 2}
    {"time": 0.7, "kind": "link_up",     "u": 1, "v": 2}
    {"time": 0.1, "kind": "packet_loss", "u": 0, "v": 3,
     "probability": 0.2}
    {"time": 0.1, "kind": "slow_link",   "u": 0, "v": 3, "factor": 4.0}
    {"time": 0.2, "kind": "partition",   "switches": [1, 4, 9]}
    {"time": 0.8, "kind": "heal_partition"}

A ``partition`` splits the listed switches away from the rest of the
network (packets cannot cross sides); ``heal_partition`` removes every
active split.  Partitions create the replica divergence the storage
scrubber (``gred scrub``) is built to repair.

Control-channel fault kinds degrade the controller's *southbound*
channel instead of the data plane (the injector routes them to the
controller's :class:`~repro.controlplane.channel.FaultyChannel`)::

    {"time": 0.0, "kind": "control_drop",    "probability": 0.2}
    {"time": 0.0, "kind": "control_dup",     "probability": 0.05}
    {"time": 0.0, "kind": "control_delay",   "probability": 0.1}
    {"time": 0.0, "kind": "control_reorder", "window": 4}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Dict, Iterator, List, Optional, Sequence, Union


class FaultPlanError(Exception):
    """Raised for malformed fault plans or inapplicable fault events."""


#: Required extra fields per event kind.
FAULT_KINDS: Dict[str, tuple] = {
    "switch_crash": ("switch",),
    "server_crash": ("switch", "serial"),
    "link_down": ("u", "v"),
    "link_up": ("u", "v"),
    "packet_loss": ("u", "v", "probability"),
    "slow_link": ("u", "v", "factor"),
    "control_drop": ("probability",),
    "control_dup": ("probability",),
    "control_delay": ("probability",),
    "control_reorder": ("window",),
    "partition": ("switches",),
    "heal_partition": (),
}


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault, validated against its kind's required fields."""

    time: float
    kind: str
    switch: Optional[int] = None
    serial: Optional[int] = None
    u: Optional[int] = None
    v: Optional[int] = None
    probability: Optional[float] = None
    factor: Optional[float] = None
    window: Optional[int] = None
    switches: Optional[tuple] = None

    def __post_init__(self) -> None:
        if isinstance(self.switches, list):
            object.__setattr__(self, "switches", tuple(self.switches))
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.time < 0:
            raise FaultPlanError(
                f"event time must be >= 0, got {self.time}")
        missing = [f for f in FAULT_KINDS[self.kind]
                   if getattr(self, f) is None]
        if missing:
            raise FaultPlanError(
                f"{self.kind} event at t={self.time} is missing "
                f"required field(s) {missing}"
            )
        if self.probability is not None and not (
                0.0 <= self.probability <= 1.0):
            raise FaultPlanError(
                f"packet_loss probability must be in [0, 1], got "
                f"{self.probability}"
            )
        if self.factor is not None and self.factor < 1.0:
            raise FaultPlanError(
                f"slow_link factor must be >= 1, got {self.factor}")
        if self.window is not None and (
                not isinstance(self.window, int) or self.window < 1):
            raise FaultPlanError(
                f"control_reorder window must be an int >= 1, got "
                f"{self.window!r}")
        if self.switches is not None and (
                not self.switches
                or not all(isinstance(s, int) and not isinstance(s, bool)
                           for s in self.switches)):
            raise FaultPlanError(
                f"partition switches must be a non-empty list of switch "
                f"ids, got {list(self.switches)!r}")

    def to_dict(self) -> Dict:
        record: Dict = {"time": self.time, "kind": self.kind}
        for name in FAULT_KINDS[self.kind]:
            value = getattr(self, name)
            record[name] = list(value) if isinstance(value, tuple) else value
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "FaultEvent":
        if "kind" not in record or "time" not in record:
            raise FaultPlanError(
                f"a fault event needs 'time' and 'kind' fields, got "
                f"{sorted(record)}"
            )
        known = {"time", "kind", "switch", "serial", "u", "v",
                 "probability", "factor", "window", "switches"}
        unknown = sorted(set(record) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault event field(s) {unknown}")
        return cls(**record)


class FaultPlan:
    """An immutable, time-ordered sequence of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(
            events, key=lambda e: e.time)

    @property
    def events(self) -> List[FaultEvent]:
        return list(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def first_fault_time(self) -> Optional[float]:
        return self._events[0].time if self._events else None

    @property
    def last_fault_time(self) -> Optional[float]:
        return self._events[-1].time if self._events else None

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"events": [e.to_dict() for e in self._events]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        if not isinstance(payload, dict) or "events" not in payload:
            raise FaultPlanError(
                "a fault plan is an object with an 'events' list")
        events = payload["events"]
        if not isinstance(events, list):
            raise FaultPlanError("'events' must be a list")
        return cls([FaultEvent.from_dict(e) for e in events])

    @classmethod
    def from_json(cls, source: Union[str, IO[str]]) -> "FaultPlan":
        """Parse a plan from a JSON file path or an open text file."""
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            payload = json.load(source)
        return cls.from_dict(payload)
