"""Structured tracing of data-plane forwarding decisions.

A :class:`Tracer` passed to :func:`repro.dataplane.route_packet`
receives one event per forwarding decision — greedy forwards, virtual
link starts/relays, deliveries, extension rewrites — giving operators
the per-packet visibility the paper's hardware prototype gets from
bmv2 logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class TraceEventKind(enum.Enum):
    """What happened at one switch."""

    INGRESS = "ingress"
    GREEDY_FORWARD = "greedy_forward"
    VL_START = "vl_start"
    VL_RELAY = "vl_relay"
    DELIVER = "deliver"
    EXTENSION_REWRITE = "extension_rewrite"
    DEGRADED_REROUTE = "degraded_reroute"


@dataclass(frozen=True)
class TraceEvent:
    """One forwarding decision."""

    sequence: int
    kind: TraceEventKind
    switch: int
    data_id: str
    details: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Single-line human-readable form."""
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        return (f"[{self.sequence:03d}] {self.kind.value:18s} "
                f"sw={self.switch:<4d} {extras}".rstrip())


class Tracer:
    """Collects trace events for one or more routed packets."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._sequence = 0

    def record(self, kind: TraceEventKind, switch: int, data_id: str,
               **details: Any) -> None:
        self._events.append(TraceEvent(
            sequence=self._sequence,
            kind=kind,
            switch=switch,
            data_id=data_id,
            details=details,
        ))
        self._sequence += 1

    def events(self, data_id: Optional[str] = None,
               kind: Optional[TraceEventKind] = None
               ) -> List[TraceEvent]:
        """Collected events, optionally filtered."""
        out = self._events
        if data_id is not None:
            out = [e for e in out if e.data_id == data_id]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return list(out)

    def clear(self) -> None:
        """Drop all events and restart the sequence numbering."""
        self._events.clear()
        self._sequence = 0

    def render(self, data_id: Optional[str] = None) -> str:
        """Multi-line rendering of the (filtered) event stream."""
        return "\n".join(e.render() for e in self.events(data_id))

    def __len__(self) -> int:
        return len(self._events)
