"""The switch-plane forwarding engine.

Moves a packet through the network of :class:`GredSwitch` objects by
applying the actions each switch's pipeline returns, and records the
route statistics (physical hops, overlay hops, full trace) used by the
routing-stretch experiments.

One *overlay hop* is one greedy decision: either a direct forward to a
physical DT neighbor or the start of a virtual link (relay hops within a
virtual link are physical hops of the same overlay hop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..obs import HOP_BUCKETS, default_registry
from .packet import Packet, VirtualLinkHeader
from .switch import (
    DeliverAction,
    ForwardAction,
    ForwardingError,
    GredSwitch,
    _VirtualLinkStart,
)


@dataclass
class RouteResult:
    """Outcome of routing one packet to its destination switch."""

    delivery: DeliverAction
    trace: List[int]
    physical_hops: int
    overlay_hops: int

    @property
    def destination_switch(self) -> int:
        return self.delivery.switch


def _route_around_failures(switches, switch, current, packet, action,
                           fault_state, metrics, tracer):
    """Degraded-mode check of a forwarding decision.

    While the chosen next hop is crashed, unknown (already pruned by a
    repair) or behind a downed link, ask the switch to re-decide with
    the failed neighbors excluded — the next-best-neighbor fallback.
    Terminates because the exclusion set only grows; when every
    improving neighbor is failed the switch delivers locally or raises
    :class:`ForwardingError`.
    """
    from .tracing import TraceEventKind

    failed = set()
    while True:
        if isinstance(action, DeliverAction):
            return action
        if isinstance(action, _VirtualLinkStart):
            next_switch = action.succ
        elif isinstance(action, ForwardAction):
            next_switch = action.next_switch
        else:
            return action  # unknown action: let the caller raise
        if next_switch in switches and \
                fault_state.can_forward(current, next_switch):
            return action
        failed.add(next_switch)
        if metrics is not None:
            metrics.counter("faults.reroutes").inc()
        if tracer is not None:
            tracer.record(TraceEventKind.DEGRADED_REROUTE, current,
                          packet.data_id, avoided=next_switch)
        action = switch.reroute(packet, frozenset(failed))


def route_packet(
    switches: Dict[int, GredSwitch],
    entry_switch: int,
    packet: Packet,
    max_hops: int = None,
    tracer=None,
    fault_state=None,
) -> RouteResult:
    """Route ``packet`` from ``entry_switch`` until local delivery.

    Parameters
    ----------
    switches:
        All data-plane switches, keyed by id.
    entry_switch:
        The switch where the request enters the network (the user's
        access point).
    packet:
        The request; its trace is filled in as it travels.
    max_hops:
        Safety bound; defaults to ``4 * len(switches) + 16``.
    tracer:
        Optional :class:`repro.dataplane.Tracer` receiving one event
        per forwarding decision.
    fault_state:
        Optional :class:`repro.faults.FaultState`.  When given, the
        engine refuses to forward into crashed switches or over downed
        links and asks the current switch for its next-best neighbor
        instead (degraded greedy forwarding); the entry switch itself
        must be alive.

    Raises
    ------
    ForwardingError
        On inconsistent data-plane state (missing entries), when the
        hop bound is exceeded (a forwarding loop), or when failures
        leave a switch with no usable way forward.
    """
    from .tracing import TraceEventKind

    if entry_switch not in switches:
        raise ForwardingError(f"unknown entry switch {entry_switch}")
    if fault_state is not None and \
            not fault_state.switch_alive(entry_switch):
        raise ForwardingError(
            f"entry switch {entry_switch} has crashed")
    if max_hops is None:
        max_hops = 4 * len(switches) + 16
    # Telemetry is a strict no-op unless the default registry is
    # enabled; counters are fetched once per routed packet, not per hop.
    registry = default_registry()
    metrics = registry if registry.enabled else None
    if metrics is not None:
        c_greedy = metrics.counter("dataplane.greedy_forwards")
        c_vl_start = metrics.counter("dataplane.vl_starts")
        c_vl_relay = metrics.counter("dataplane.vl_relays")
    if tracer is not None:
        tracer.record(TraceEventKind.INGRESS, entry_switch,
                      packet.data_id, packet_kind=packet.kind.value)
    current = entry_switch
    overlay_hops = 0
    hops = 0
    while True:
        switch = switches[current]
        action = switch.process(packet)
        if fault_state is not None:
            action = _route_around_failures(
                switches, switch, current, packet, action, fault_state,
                metrics, tracer)
        if isinstance(action, DeliverAction):
            if tracer is not None:
                tracer.record(TraceEventKind.DELIVER, current,
                              packet.data_id,
                              serial=action.primary_serial)
                if action.extension is not None:
                    tracer.record(
                        TraceEventKind.EXTENSION_REWRITE, current,
                        packet.data_id,
                        target_switch=action.extension.target_switch,
                        target_serial=action.extension.target_serial,
                    )
            if metrics is not None:
                metrics.counter("dataplane.requests_routed",
                                kind=packet.kind.value).inc()
                metrics.counter("dataplane.deliveries").inc()
                if action.extension is not None:
                    metrics.counter(
                        "dataplane.extension_rewrites").inc()
                metrics.histogram(
                    "dataplane.hops_per_request",
                    buckets=HOP_BUCKETS,
                ).observe(packet.physical_hops)
                metrics.histogram(
                    "dataplane.overlay_hops_per_request",
                    buckets=HOP_BUCKETS,
                ).observe(overlay_hops)
            return RouteResult(
                delivery=action,
                trace=list(packet.trace),
                physical_hops=packet.physical_hops,
                overlay_hops=overlay_hops,
            )
        if isinstance(action, _VirtualLinkStart):
            packet.virtual_link = VirtualLinkHeader(
                dest=action.dest, sour=action.sour, relay=action.succ
            )
            overlay_hops += 1
            next_switch = action.succ
            if metrics is not None:
                c_vl_start.inc()
            if tracer is not None:
                tracer.record(TraceEventKind.VL_START, current,
                              packet.data_id, dest=action.dest,
                              succ=action.succ)
        elif isinstance(action, ForwardAction):
            if not action.is_relay:
                overlay_hops += 1
            next_switch = action.next_switch
            if metrics is not None:
                (c_vl_relay if action.is_relay else c_greedy).inc()
            if tracer is not None:
                kind = (TraceEventKind.VL_RELAY if action.is_relay
                        else TraceEventKind.GREEDY_FORWARD)
                tracer.record(kind, current, packet.data_id,
                              next=next_switch)
        else:
            raise ForwardingError(
                f"switch {current} returned unknown action {action!r}"
            )
        if next_switch not in switches:
            raise ForwardingError(
                f"switch {current} forwarded to unknown switch "
                f"{next_switch}"
            )
        current = next_switch
        hops += 1
        if hops > max_hops:
            raise ForwardingError(
                f"hop bound {max_hops} exceeded routing {packet.data_id!r}"
                f" (trace {packet.trace})"
            )
