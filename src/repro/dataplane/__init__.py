"""Data plane: packets, forwarding tables, the P4-style switch pipeline,
and the greedy forwarding engine (paper Algorithm 2)."""

from .packet import Packet, PacketKind, VirtualLinkHeader
from .tables import ExtensionEntry, ForwardingTable, VirtualLinkEntry
from .switch import (
    DeliverAction,
    ForwardAction,
    ForwardingError,
    GredSwitch,
)
from .fastpath import (
    CompiledRouter,
    FASTPATH_GATES,
    batch_fastpath_blockers,
    fastpath_usable,
    federated_blockers,
)
from .forwarding import RouteResult, route_packet
from .shard import PlaneSnapshot, ShardPool
from .tracing import TraceEvent, TraceEventKind, Tracer

__all__ = [
    "Packet",
    "PacketKind",
    "VirtualLinkHeader",
    "ForwardingTable",
    "VirtualLinkEntry",
    "ExtensionEntry",
    "GredSwitch",
    "ForwardAction",
    "DeliverAction",
    "ForwardingError",
    "RouteResult",
    "route_packet",
    "CompiledRouter",
    "FASTPATH_GATES",
    "batch_fastpath_blockers",
    "fastpath_usable",
    "federated_blockers",
    "PlaneSnapshot",
    "ShardPool",
    "Tracer",
    "TraceEvent",
    "TraceEventKind",
]
