"""Worker-sharded batch routing over a shared-memory compiled plane.

The packed wave walker (:func:`~repro.dataplane.fastpath
._route_batch_packed`) is a pure function of the dense
:class:`~repro.dataplane.fastpath._FlatPlane` arrays and the per-request
arrays (entry switches, positions, digest serials) — no live router, no
request ids.  That makes it shardable across processes with zero
per-request serialization cost on the plane side:

* :class:`PlaneSnapshot` packs every plane array into **one**
  ``multiprocessing.shared_memory`` block and describes the layout with
  a small spec (name, dtype, shape, byte offset per field);
* each :class:`ShardPool` worker attaches the block and rebuilds a
  ``_FlatPlane`` whose arrays are zero-copy views into it;
* a batch is split into contiguous shards, each worker walks its shard
  and ships back a picklable ``_PackedRoutes`` (plain numpy arrays and
  coded errors — the parent materializes traces and error strings);
* the parent merges the shard results back into one ``_PackedRoutes``
  whose contents are identical to a single-process walk of the whole
  batch (every request's walk is independent; only the wave *count* is
  per-shard, which is telemetry, not an outcome).

Snapshots are keyed by the fast-path state's ``(epoch, version)`` token:
any control-plane change re-exports the plane before the next sharded
batch, so workers can never route on stale state.

Worker processes are daemonic, start via ``fork`` where available
(``spawn`` elsewhere — the worker loop imports everything it needs), and
are reaped by ``close()`` or a ``weakref.finalize`` at pool
garbage-collection.
"""

from __future__ import annotations

import multiprocessing as mp
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from .fastpath import _FlatPlane, _PackedRoutes, _route_batch_packed

#: Plane fields exported into the shared block.  ``sid`` is an alias of
#: ``sid_sorted`` and rebuilt on attach; ``chain_errors`` is a small
#: list of strings shipped in the spec itself.
_SHARED_FIELDS = ("sid_sorted", "ox", "oy", "in_dt", "ns", "cx", "cy",
                  "kind", "nid", "nrow", "chain_off", "chain_len",
                  "chain_err", "chain_sids")

_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class PlaneSnapshot:
    """A compiled plane frozen into one shared-memory block.

    ``spec`` is everything a worker needs to attach: the block name,
    one ``(name, dtype, shape, offset)`` tuple per plane array, and the
    chain error strings.  The parent keeps the block alive until
    :meth:`dispose`; workers holding views keep their mapping valid
    even after the parent unlinks (POSIX shm semantics), so snapshot
    rotation never races a worker mid-batch.
    """

    def __init__(self, flat: _FlatPlane) -> None:
        if not flat.chains_built:
            raise ValueError("plane must have chains attached "
                             "before export")
        layout: List[Tuple[str, str, tuple, int]] = []
        total = 0
        arrays = {}
        for name in _SHARED_FIELDS:
            arr = np.ascontiguousarray(getattr(flat, name))
            offset = _aligned(total)
            layout.append((name, arr.dtype.str, arr.shape, offset))
            arrays[name] = (arr, offset)
            total = offset + arr.nbytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(total, 1))
        for name, (arr, offset) in arrays.items():
            view = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=self._shm.buf, offset=offset)
            view[...] = arr
        self.spec = {
            "shm": self._shm.name,
            "layout": layout,
            "chain_errors": list(flat.chain_errors),
        }
        self._disposed = False

    def dispose(self) -> None:
        """Close and unlink the block (idempotent)."""
        if self._disposed:
            return
        self._disposed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _attach_plane(spec: dict) -> Tuple[_FlatPlane, shared_memory.SharedMemory]:
    """Rebuild a ``_FlatPlane`` from a snapshot spec with every array a
    zero-copy view into the shared block.  Returns the plane and the
    shm handle (the caller must keep the handle alive and close it)."""
    # The parent owns the segment's lifetime; attaching would register
    # it with the resource tracker *again* (shared with the parent
    # under ``fork``), so the tracker would either warn about a "leak"
    # at worker exit or choke on the double unregister.  Suppress the
    # attach-side registration entirely.  (Python 3.13+ has
    # ``track=False`` instead.)
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=spec["shm"])
    finally:
        resource_tracker.register = original_register
    plane = _FlatPlane.__new__(_FlatPlane)
    for name, dtype, shape, offset in spec["layout"]:
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=shm.buf, offset=offset)
        setattr(plane, name, view)
    plane.sid = plane.sid_sorted
    plane.chain_errors = list(spec["chain_errors"])
    plane.chains_built = True
    return plane, shm


def _worker_main(conn) -> None:
    """Worker loop: attach planes, walk shards, ship packed results.

    Messages (pipe is ordered, so a ``plane`` always precedes the
    ``route`` batches that depend on it):

    * ``("plane", spec)`` — attach a new snapshot, dropping the old;
    * ``("route", entries, pxs, pys, serials, max_hops)`` — walk the
      shard, reply ``("ok", packed)`` or ``("raise", exc)``;
    * ``("stop",)`` — exit.
    """
    plane: Optional[_FlatPlane] = None
    shm: Optional[shared_memory.SharedMemory] = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            tag = msg[0]
            if tag == "plane":
                if shm is not None:
                    shm.close()
                plane, shm = _attach_plane(msg[1])
            elif tag == "route":
                _, entries, pxs, pys, serials, max_hops = msg
                try:
                    packed = _route_batch_packed(
                        plane, entries, pxs, pys, serials, max_hops)
                    conn.send(("ok", packed))
                except BaseException as exc:  # noqa: BLE001 - relayed
                    conn.send(("raise", exc))
            elif tag == "stop":
                break
    finally:
        if shm is not None:
            shm.close()
        conn.close()


def _shutdown(conns, procs, snapshot) -> None:
    for conn in conns:
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():  # pragma: no cover - wedged worker
            proc.terminate()
            proc.join(timeout=2)
    if snapshot is not None:
        snapshot.dispose()


class ShardPool:
    """A pool of routing workers sharing one read-only compiled plane.

    The pool is sticky per worker count on the network facade; its
    lifecycle is decoupled from any single plane — :meth:`sync`
    re-exports the snapshot whenever the fast-path ``(epoch, version)``
    token moves, and :meth:`route_batch_packed` splits each batch into
    contiguous shards, one per worker.
    """

    def __init__(self, workers: int,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = mp.get_context(start_method)
        self.workers = workers
        self.start_method = start_method
        self._conns = []
        self._procs = []
        for i in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child,),
                               daemon=True, name=f"gred-shard-{i}")
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._snapshot: Optional[PlaneSnapshot] = None
        self._synced_token = None
        # Box the snapshot so the finalizer sees rotations without
        # holding a reference to ``self``.
        self._snapbox: Dict[str, Optional[PlaneSnapshot]] = {
            "snap": None}
        self._finalizer = weakref.finalize(
            self, _shutdown_box, list(self._conns), list(self._procs),
            self._snapbox)

    # ------------------------------------------------------------------
    def sync(self, router, token) -> None:
        """Ship the router's current plane to every worker unless the
        ``token`` (the fast-path ``(epoch, version)``) is already
        synced."""
        if token == self._synced_token:
            return
        flat = router._ensure_flat()
        snapshot = PlaneSnapshot(flat)
        for conn in self._conns:
            conn.send(("plane", snapshot.spec))
        old = self._snapshot
        self._snapshot = snapshot
        self._snapbox["snap"] = snapshot
        if old is not None:
            # Workers that still map the old block keep it valid until
            # they attach the new one (the plane message is already in
            # their pipe, ahead of any future batch).
            old.dispose()
        self._synced_token = token

    def route_batch_packed(self, entries_arr: np.ndarray,
                           pxs: np.ndarray, pys: np.ndarray,
                           serial_u64s: np.ndarray,
                           max_hops: int) -> _PackedRoutes:
        """Walk a batch across the pool and merge the shard results
        into one :class:`_PackedRoutes` identical in content to a
        single-process walk (``worker_waves`` additionally records the
        per-shard wave counts for telemetry)."""
        if self._synced_token is None:
            raise RuntimeError("ShardPool.sync() must run before "
                               "route_batch_packed()")
        k = int(entries_arr.size)
        bounds = np.linspace(0, k, self.workers + 1).astype(np.int64)
        shards = [(int(bounds[w]), int(bounds[w + 1]))
                  for w in range(self.workers)]
        for conn, (lo, hi) in zip(self._conns, shards):
            if hi > lo:
                conn.send(("route", entries_arr[lo:hi], pxs[lo:hi],
                           pys[lo:hi], serial_u64s[lo:hi], max_hops))
        replies: List[Optional[tuple]] = []
        for conn, (lo, hi) in zip(self._conns, shards):
            replies.append(conn.recv() if hi > lo else None)
        for reply in replies:
            if reply is not None and reply[0] == "raise":
                raise reply[1]
        merged = _PackedRoutes(k)
        merged.worker_waves = []
        trace_parts: List[np.ndarray] = []
        for reply, (lo, hi) in zip(replies, shards):
            if reply is None:
                merged.worker_waves.append(0)
                continue
            packed: _PackedRoutes = reply[1]
            sl = slice(lo, hi)
            merged.dest[sl] = packed.dest
            merged.serial[sl] = packed.serial
            merged.overlay[sl] = packed.overlay
            merged.greedy[sl] = packed.greedy
            merged.vl[sl] = packed.vl
            merged.relays[sl] = packed.relays
            merged.known[sl] = packed.known
            merged.tlen[sl] = packed.tlen
            merged.errors.extend(
                (j + lo, code, args)
                for j, code, args in packed.errors)
            merged.hop_failures.extend(
                j + lo for j in packed.hop_failures)
            trace_parts.append(packed.trace_flat)
            merged.waves += packed.waves
            merged.worker_waves.append(packed.waves)
        off = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(merged.tlen, out=off[1:])
        merged.off = off
        merged.trace_flat = (np.concatenate(trace_parts)
                             if trace_parts
                             else np.empty(0, dtype=np.int64))
        return merged

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the shared block
        (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()
        self._snapshot = None
        self._synced_token = None


def _shutdown_box(conns, procs, snapbox) -> None:
    _shutdown(conns, procs, snapbox.get("snap"))
