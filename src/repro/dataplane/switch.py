"""The GRED switch: a P4-style match-action pipeline in Python.

Paper substitution note (DESIGN.md Section 2): the published prototype
compiles this decision procedure to P4 match-action stages on bmv2
switches.  The reproduction executes the identical procedure in Python —
per-stage distance computation against the installed neighbor positions,
followed by greedy next-hop selection (Algorithm 2) or local delivery
with ``H(d) mod s`` server selection and range-extension rewriting.

A switch only consults *locally installed* state: its own position, the
positions of its physical and DT neighbors, and its forwarding table.
All of it is written by the control plane; the data plane never talks to
the controller on the per-packet path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..geometry import Point, squared_distance
from ..hashing import server_index
from .packet import Packet, VirtualLinkHeader
from .tables import ExtensionEntry, ForwardingTable


class ForwardingError(Exception):
    """Raised when a switch cannot make a forwarding decision (missing
    entries, unknown neighbors) — indicates inconsistent control-plane
    state."""


@dataclass(frozen=True)
class ForwardAction:
    """Send the packet to a physically adjacent switch.

    ``is_relay`` is True when the hop merely relays a packet along an
    established virtual link (it is not a new overlay-hop decision).
    """

    next_switch: int
    is_relay: bool = False


@dataclass(frozen=True)
class DeliverAction:
    """This switch is closest to the data position: deliver to a server.

    ``primary_serial`` is the ``H(d) mod s`` choice.  When a range
    extension is active for that serial, ``extension`` names the remote
    takeover server; placements follow the rewrite, retrievals are forked
    to both locations (paper Section V-C).
    """

    switch: int
    primary_serial: int
    extension: Optional[ExtensionEntry] = None


Action = object  # union of ForwardAction | DeliverAction


@dataclass
class GredSwitch:
    """One switch of the SDEN switch plane.

    Attributes
    ----------
    switch_id:
        Topology node id.
    position:
        Virtual-space coordinates assigned by the control plane.
    num_servers:
        Count of directly attached edge servers (0 for relay-only
        switches, which do not participate in the DT).
    """

    switch_id: int
    position: Point
    num_servers: int = 0
    table: ForwardingTable = field(default_factory=ForwardingTable)
    # Neighbor positions installed by the control plane.
    physical_neighbor_positions: Dict[int, Point] = field(
        default_factory=dict)
    dt_neighbor_positions: Dict[int, Point] = field(default_factory=dict)

    @property
    def in_dt(self) -> bool:
        """Whether this switch participates in the DT (has servers)."""
        return self.num_servers > 0

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def process(self, packet: Packet) -> Action:
        """Run the match-action pipeline on an arriving packet.

        Returns the forwarding decision; the network engine applies it.
        """
        packet.record_hop(self.switch_id)
        if packet.virtual_link is not None:
            action = self._process_virtual_link(packet)
            if action is not None:
                return action
        return self._greedy_stage(packet)

    def reroute(self, packet: Packet, exclude: frozenset) -> Action:
        """Re-decide after a forwarding attempt hit a dead neighbor or
        link (degraded mode).

        The hop is already recorded; any in-progress virtual link is
        abandoned (its relay chain is unusable) and the greedy stage
        re-runs with the failed neighbors excluded — the next-best
        neighbor fallback.  Raises :class:`ForwardingError` when no
        usable neighbor remains and the packet cannot be delivered
        locally either.
        """
        packet.virtual_link = None
        return self._greedy_stage(packet, exclude=exclude)

    def _process_virtual_link(self, packet: Packet) -> Optional[Action]:
        vl = packet.virtual_link
        if vl.dest == self.switch_id:
            # Endpoint of the virtual link: strip the header and continue
            # with greedy forwarding (paper Section V-A).
            packet.virtual_link = None
            return None
        entry = self.table.virtual_entry(vl.dest)
        if entry is None or entry.succ is None:
            raise ForwardingError(
                f"switch {self.switch_id} has no relay entry toward "
                f"virtual-link destination {vl.dest}"
            )
        packet.virtual_link = VirtualLinkHeader(
            dest=vl.dest, sour=vl.sour, relay=entry.succ
        )
        return ForwardAction(next_switch=entry.succ, is_relay=True)

    def _greedy_key(self, position: Point,
                    target: Point) -> Tuple[float, float, float]:
        """Comparison key: distance, then x, then y (paper's tie-break
        for data mapped onto a Voronoi edge)."""
        return (squared_distance(position, target),
                position[0], position[1])

    def _greedy_stage(self, packet: Packet,
                      exclude: frozenset = frozenset()) -> Action:
        """Algorithm 2: pick the neighbor closest to ``H(d)``; deliver
        locally when no neighbor improves.

        ``exclude`` (degraded mode only) names neighbors that turned
        out to be dead or unreachable; improving candidates are walked
        best-first skipping them, so a crashed DT neighbor degrades to
        the next-best neighbor instead of a raised error.
        """
        if not self.in_dt:
            raise ForwardingError(
                f"greedy stage reached relay-only switch {self.switch_id}"
            )
        target = packet.position
        own_key = self._greedy_key(self.position, target)
        # (key, tiebreak, nid): physical candidates sort before DT-only
        # ones at equal key, matching Algorithm 2's physical-first scan
        # (keys of distinct switches never tie — positions are
        # deduplicated — so the tiebreak is purely defensive).
        candidates = []
        for nid, pos in self.physical_neighbor_positions.items():
            if nid in exclude:
                continue
            key = self._greedy_key(pos, target)
            if key < own_key:
                candidates.append((key, 0, nid))
        for nid, pos in self.dt_neighbor_positions.items():
            if nid in exclude or nid in self.physical_neighbor_positions:
                continue
            key = self._greedy_key(pos, target)
            if key < own_key:
                candidates.append((key, 1, nid))
        candidates.sort()
        for _, kind, nid in candidates:
            if kind == 0:
                return ForwardAction(next_switch=nid)
            entry = self.table.virtual_entry(nid)
            if entry is None or entry.succ is None:
                if exclude:
                    continue  # degraded: skip the unusable candidate
                raise ForwardingError(
                    f"switch {self.switch_id} has no virtual-link entry "
                    f"toward DT neighbor {nid}"
                )
            if entry.succ in exclude:
                continue  # the relay's first hop is dead
            return _VirtualLinkStart(dest=nid, sour=self.switch_id,
                                     succ=entry.succ)
        return self._deliver(packet)

    def _deliver(self, packet: Packet) -> DeliverAction:
        if self.num_servers <= 0:
            raise ForwardingError(
                f"switch {self.switch_id} must deliver {packet.data_id!r} "
                f"but has no attached servers"
            )
        serial = server_index(packet.data_id, self.num_servers)
        extension = self.table.extension_for(serial)
        return DeliverAction(switch=self.switch_id, primary_serial=serial,
                             extension=extension)

    # ------------------------------------------------------------------
    # control-plane interface
    # ------------------------------------------------------------------
    def install_position(self, position: Point) -> None:
        self.position = position

    def install_physical_neighbor(self, neighbor: int, port: int,
                                  position: Optional[Point] = None) -> None:
        """Install a physical adjacency.

        ``position`` must be given only for neighbors that participate in
        the DT; relay-only neighbors get a port (for virtual-link
        relaying) but are never greedy candidates, since a packet
        greedily moved onto a server-less switch could be trapped there.
        """
        self.table.install_physical(neighbor, port)
        if position is not None:
            self.physical_neighbor_positions[neighbor] = position

    def remove_physical_neighbor(self, neighbor: int) -> None:
        """Retract a physical adjacency: the port mapping and, if the
        neighbor was a greedy candidate, its candidate position."""
        self.table.remove_physical(neighbor)
        self.physical_neighbor_positions.pop(neighbor, None)

    def install_dt_neighbor(self, neighbor: int, position: Point) -> None:
        self.dt_neighbor_positions[neighbor] = position

    def remove_dt_neighbor(self, neighbor: int) -> None:
        self.dt_neighbor_positions.pop(neighbor, None)

    def clear_dt_state(self) -> None:
        """Drop DT neighbor positions and virtual-link entries (used on
        reconfiguration)."""
        self.dt_neighbor_positions.clear()
        self.table.clear_virtual()


@dataclass(frozen=True)
class _VirtualLinkStart:
    """Internal action: begin a virtual link toward a multi-hop DT
    neighbor.  The network engine stamps the header and forwards to
    ``succ``."""

    dest: int
    sour: int
    succ: int
