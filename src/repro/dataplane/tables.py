"""Forwarding tables installed into GRED switches by the control plane.

A GRED switch holds three kinds of state (paper Sections IV-C and V-B):

* **physical entries** — one per physical neighbor (out port);
* **virtual-link entries** — the 4-tuples ``<sour, pred, succ, dest>``
  that relay packets along the multi-hop path toward a DT neighbor;
* **extension entries** — address-rewrite rules installed during range
  extension: data addressed to a local overloaded server is rewritten to
  a server on a neighboring switch (paper Tables I/II).

The table-size experiment (Fig. 9d) counts exactly these entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class VirtualLinkEntry:
    """One 4-tuple ``<sour, pred, succ, dest>`` of the table ``F_u``.

    ``sour``/``dest`` are the endpoints of the virtual link; ``pred`` and
    ``succ`` are this switch's predecessor and successor on the physical
    path realizing it.  ``pred`` is ``None`` at the source switch and
    ``succ`` is ``None`` at the destination switch.
    """

    sour: int
    pred: Optional[int]
    succ: Optional[int]
    dest: int


@dataclass(frozen=True)
class ExtensionEntry:
    """Range-extension rewrite: redirect a local server's data elsewhere.

    ``local_serial`` identifies the (overloaded) server attached to this
    switch; the data is rewritten toward server ``target_serial`` on
    switch ``target_switch`` (a physical neighbor).
    """

    local_serial: int
    target_switch: int
    target_serial: int


class ForwardingTable:
    """The complete forwarding state of one switch."""

    def __init__(self) -> None:
        self._physical: Dict[int, int] = {}  # neighbor id -> port
        self._virtual: Dict[int, VirtualLinkEntry] = {}  # dest -> entry
        self._extensions: Dict[int, ExtensionEntry] = {}  # serial -> entry

    # -- physical ------------------------------------------------------
    def install_physical(self, neighbor: int, port: int) -> None:
        self._physical[neighbor] = port

    def remove_physical(self, neighbor: int) -> None:
        self._physical.pop(neighbor, None)

    def physical_port(self, neighbor: int) -> Optional[int]:
        return self._physical.get(neighbor)

    def physical_neighbors(self) -> List[int]:
        return list(self._physical)

    # -- virtual links ---------------------------------------------------
    def install_virtual(self, entry: VirtualLinkEntry) -> None:
        """Install a relay tuple, keyed by the virtual-link destination
        (the paper matches tuples on ``t.dest == d.dest``)."""
        self._virtual[entry.dest] = entry

    def remove_virtual(self, dest: int) -> None:
        self._virtual.pop(dest, None)

    def virtual_entry(self, dest: int) -> Optional[VirtualLinkEntry]:
        return self._virtual.get(dest)

    def virtual_entries(self) -> List[VirtualLinkEntry]:
        return list(self._virtual.values())

    def clear_virtual(self) -> None:
        self._virtual.clear()

    # -- range extension -------------------------------------------------
    def install_extension(self, entry: ExtensionEntry) -> None:
        self._extensions[entry.local_serial] = entry

    def remove_extension(self, local_serial: int) -> None:
        self._extensions.pop(local_serial, None)

    def extension_for(self, local_serial: int) -> Optional[ExtensionEntry]:
        return self._extensions.get(local_serial)

    def has_extensions(self) -> bool:
        """Whether any range extension is installed (the batch path
        skips per-delivery extension lookups when no switch has
        any)."""
        return bool(self._extensions)

    def extensions(self) -> List[ExtensionEntry]:
        return list(self._extensions.values())

    # -- accounting --------------------------------------------------------
    def num_entries(self) -> int:
        """Total installed entries (the Fig. 9d metric)."""
        return (len(self._physical) + len(self._virtual)
                + len(self._extensions))

    def entry_breakdown(self) -> Tuple[int, int, int]:
        """``(physical, virtual, extension)`` entry counts."""
        return (len(self._physical), len(self._virtual),
                len(self._extensions))
