"""Packet model for the GRED data plane.

The paper's P4 program defines a custom header carrying the data
identifier's virtual-space position, a tag distinguishing placement from
retrieval requests (Section V-C), and the virtual-link fields
``<dest, sour, relay, data>`` used while a packet traverses a multi-hop
virtual link (Section V-A).  This module mirrors that header layout in a
plain dataclass plus a hop trace used by the evaluation to measure path
lengths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..geometry import Point


class PacketKind(enum.Enum):
    """The tag field of the GRED header."""

    PLACEMENT = "placement"
    RETRIEVAL = "retrieval"
    RESPONSE = "response"


@dataclass
class VirtualLinkHeader:
    """State carried while traversing a virtual link.

    Mirrors the paper's ``d = <d.dest, d.sour, d.relay, d.data>``:
    ``dest`` is the endpoint DT-neighbor switch, ``sour`` the switch that
    started the virtual link, and ``relay`` the next relay switch the
    packet is currently addressed to.
    """

    dest: int
    sour: int
    relay: Optional[int]


@dataclass
class Packet:
    """A placement/retrieval request travelling through the switch plane.

    Attributes
    ----------
    kind:
        Placement/retrieval/response tag.
    data_id:
        The data identifier ``d``.
    position:
        ``H(d)``: the destination position in the virtual space.
    virtual_link:
        Present exactly while the packet traverses a virtual link.
    payload:
        Application payload (placement) or ``None`` (retrieval).
    trace:
        Sequence of switch ids visited, including the entry switch;
        each adjacent pair is one physical hop.
    """

    kind: PacketKind
    data_id: str
    position: Point
    virtual_link: Optional[VirtualLinkHeader] = None
    payload: Any = None
    trace: List[int] = field(default_factory=list)

    @property
    def physical_hops(self) -> int:
        """Physical hops taken so far."""
        return max(0, len(self.trace) - 1)

    def record_hop(self, switch_id: int) -> None:
        """Append a switch to the trace (skips immediate repeats)."""
        if not self.trace or self.trace[-1] != switch_id:
            self.trace.append(switch_id)

    def on_virtual_link(self) -> bool:
        return self.virtual_link is not None
