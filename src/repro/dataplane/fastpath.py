"""A compiled greedy router for the batch request fast path.

``route_packet`` is faithful to the paper's per-switch pipeline — one
``Packet`` object, one ``process`` call and one candidate sort per hop —
which is the right shape for tracing and fault injection but dominates
the request latency of large workloads.  ``CompiledRouter`` flattens the
per-switch state (positions, greedy candidate lists, relay chains) into
plain tuples once per control-plane epoch and replays the *identical*
decision procedure with no per-packet object construction:

* greedy stage: minimal ``((d^2, x, y), kind, nid)`` candidate strictly
  closer than the current switch, physical (kind 0) before DT-only
  (kind 1), exactly Algorithm 2's comparison;
* virtual links: the relay chain toward a DT-only neighbor is resolved
  from the switches' installed ``VirtualLinkEntry`` tuples on first use
  and cached for the epoch;
* delivery: ``H(d) mod s`` server selection from the precomputed 64-bit
  digest prefix; extension entries are looked up live (range
  extensions come and go without an epoch bump).

:meth:`CompiledRouter.route` walks one request; :meth:`route_batch`
advances a whole batch in switch-grouped *waves* — every request parked
at the same switch shares one vectorized candidate evaluation — which
amortizes the per-hop decision to a few numpy operations per group.

The router must be rebuilt when the control plane recomputes — callers
key it on :attr:`Controller.epoch`.  It assumes fault-free forwarding
(the facade falls back to ``route_packet`` when a fault state is
attached) and raises the same :class:`ForwardingError` messages as the
reference engine on inconsistent state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .switch import ForwardingError, GredSwitch


def batch_fastpath_blockers(net) -> List[str]:
    """Why ``place_many``/``retrieve_many`` would currently fall back
    to the scalar reference pipeline for ``net`` (empty = fast path
    eligible).

    Mirrors the facade's ``_fastpath_usable`` gate reason by reason so
    operators can see *which* condition is costing them the vectorized
    path (``gred stats --json`` surfaces this list).
    """
    from ..hashing import data_position

    blockers: List[str] = []
    if getattr(net, "fault_state", None) is not None:
        blockers.append("fault state attached")
    if getattr(net, "_position_fn", None) is not data_position:
        blockers.append("custom position_fn")
    pipeline = getattr(net, "_resilience", None)
    if pipeline is not None and pipeline.blocks_fastpath():
        blockers.append("resilience breakers tripped")
    return blockers


#: ``route_batch`` hands stragglers to the scalar walker once the
#: active set is this small — whole-batch numpy dispatch no longer
#: amortizes over a handful of in-flight requests.
_WAVE_MIN_ACTIVE = 96

RouteOutcome = Union[Tuple[List[int], int, int, int], ForwardingError]


class _FlatPlane:
    """Dense, padded form of the whole switch plane for wave routing.

    Row ``r`` is the switch with the ``r``-th smallest id; every
    candidate list is right-padded to the widest switch so one fancy
    gather yields the candidate block of all in-flight requests at
    once.  Pad cells carry ``+inf`` positions (their squared distance
    can never win the argmin against a finite target) and kind 2 /
    nid -1 sentinels.
    """

    __slots__ = ("sid_sorted", "sid", "ox", "oy", "in_dt", "ns",
                 "cx", "cy", "kind", "nid", "nrow")

    def __init__(self, states: Dict[int, _CompiledSwitch]) -> None:
        sids = sorted(states)
        rows = {sid: r for r, sid in enumerate(sids)}
        n = len(sids)
        width = max((len(states[sid].cands) for sid in sids), default=0)
        width = max(width, 1)
        self.sid_sorted = np.asarray(sids, dtype=np.int64)
        self.sid = self.sid_sorted
        self.ox = np.empty(n, dtype=np.float64)
        self.oy = np.empty(n, dtype=np.float64)
        self.in_dt = np.empty(n, dtype=bool)
        self.ns = np.empty(n, dtype=np.uint64)
        self.cx = np.full((n, width), np.inf, dtype=np.float64)
        self.cy = np.full((n, width), np.inf, dtype=np.float64)
        self.kind = np.full((n, width), 2, dtype=np.int64)
        self.nid = np.full((n, width), -1, dtype=np.int64)
        self.nrow = np.full((n, width), -1, dtype=np.int64)
        for sid in sids:
            r = rows[sid]
            state = states[sid]
            self.ox[r] = state.x
            self.oy[r] = state.y
            self.in_dt[r] = state.in_dt
            self.ns[r] = max(state.num_servers, 0)
            for c, (x, y, kind, nid) in enumerate(state.cands):
                self.cx[r, c] = x
                self.cy[r, c] = y
                self.kind[r, c] = kind
                self.nid[r, c] = nid
                self.nrow[r, c] = rows.get(nid, -1)


class _CompiledSwitch:
    """Per-switch state flattened for the hot loop."""

    __slots__ = ("x", "y", "in_dt", "num_servers", "cands", "table",
                 "cand_x", "cand_y", "cand_kind", "cand_nid",
                 "neighbors_known")

    def __init__(self, switch: GredSwitch) -> None:
        self.x = switch.position[0]
        self.y = switch.position[1]
        self.in_dt = switch.in_dt
        self.num_servers = switch.num_servers
        self.table = switch.table
        # (x, y, kind, nid): physical candidates (kind 0) and DT-only
        # candidates (kind 1), mirroring the two scans of the greedy
        # stage.  Neighbors present in both sets are physical-only,
        # like the reference pipeline.  Sorted by (x, y, kind, nid) so
        # a first-occurrence argmin over squared distances selects the
        # same winner as the scalar lexicographic comparison.
        cands: List[Tuple[float, float, int, int]] = []
        for nid, pos in switch.physical_neighbor_positions.items():
            cands.append((pos[0], pos[1], 0, nid))
        for nid, pos in switch.dt_neighbor_positions.items():
            if nid not in switch.physical_neighbor_positions:
                cands.append((pos[0], pos[1], 1, nid))
        cands.sort()
        self.cands = cands
        self.cand_x = np.array([c[0] for c in cands], dtype=np.float64)
        self.cand_y = np.array([c[1] for c in cands], dtype=np.float64)
        self.cand_kind = np.array([c[2] for c in cands], dtype=np.int64)
        self.cand_nid = np.array([c[3] for c in cands], dtype=np.int64)


class CompiledRouter:
    """Epoch-scoped compiled form of a switch plane.

    Parameters
    ----------
    switches:
        The live data-plane switches (the compiled state snapshots
        their positions/candidates; forwarding *tables* are referenced,
        not copied, so extension rewrites are always current).
    """

    def __init__(self, switches: Dict[int, GredSwitch]) -> None:
        self._states: Dict[int, _CompiledSwitch] = {
            sid: _CompiledSwitch(sw) for sid, sw in switches.items()
        }
        for state in self._states.values():
            # Lets the wave router skip the unknown-neighbor check in
            # its hot loop (it stays exact: a False flag falls back to
            # the per-candidate check the scalar walker performs).
            state.neighbors_known = all(
                nid in self._states for nid in state.cand_nid.tolist())
        self._default_max_hops = 4 * len(switches) + 16
        # (switch, dest) -> relay chain (first relay ... dest).
        self._chains: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        # Dense plane for route_batch, built on first use.
        self._flat: Optional[_FlatPlane] = None
        #: Per-switch compilations so far (observability: a scoped
        #: patch after a join should grow this by a neighborhood, not
        #: by the network).
        self.switch_compiles = len(switches)
        #: Scoped :meth:`patch` applications.
        self.patch_events = 0
        #: Waves dispatched by the most recent :meth:`route_batch`
        #: (telemetry: proof the vectorized path ran, and the divisor
        #: for per-wave cost estimates).
        self.last_batch_waves = 0
        #: ``(greedy_forwards, vl_starts, vl_relays)`` of the most
        #: recent :meth:`route` call — the per-request decision mix the
        #: forwarding engine counts one event at a time, recovered here
        #: so batch telemetry can report the identical counters.
        #: Updated even when the route fails (partial counts up to the
        #: failure, exactly like the engine's event-time increments).
        self.last_route_stats: Tuple[int, int, int] = (0, 0, 0)
        #: Per-request ``(greedy, vl_starts, vl_relays)`` of the most
        #: recent :meth:`route_batch`, aligned with its results.
        self.last_batch_stats: List[Optional[Tuple[int, int, int]]] = []

    def patch(self, switches: Dict[int, GredSwitch],
              touched, removed=()) -> None:
        """Recompile only the ``touched`` switches' state in place.

        ``removed`` switches are dropped.  Everything derived from the
        affected switches is invalidated selectively: relay chains
        whose source, destination or relays intersect them, the dense
        wave plane's rows (or the whole plane when membership changed
        — its row numbering is positional), and the default hop bound.
        Untouched switches keep their compiled rows, which is what
        makes a join's fast-path cost neighborhood-sized.
        """
        states = self._states
        membership_changed = False
        for sid in removed:
            if states.pop(sid, None) is not None:
                membership_changed = True
        for sid in sorted(touched):
            switch = switches.get(sid)
            if switch is None:
                if states.pop(sid, None) is not None:
                    membership_changed = True
                continue
            if sid not in states:
                membership_changed = True
            states[sid] = _CompiledSwitch(switch)
            self.switch_compiles += 1
        self._default_max_hops = 4 * len(states) + 16
        affected = set(touched) | set(removed)
        if self._chains:
            self._chains = {
                key: chain for key, chain in self._chains.items()
                if key[0] not in affected and key[1] not in affected
                and not affected.intersection(chain)
            }
        if membership_changed:
            for state in states.values():
                state.neighbors_known = all(
                    nid in states for nid in state.cand_nid.tolist())
            self._flat = None
        else:
            for sid in touched:
                state = states[sid]
                state.neighbors_known = all(
                    nid in states for nid in state.cand_nid.tolist())
            if self._flat is not None:
                self._flat = self._patched_flat(touched)
        self.patch_events += 1

    def _patched_flat(self, touched) -> Optional[_FlatPlane]:
        """Update the dense plane's rows for ``touched`` in place, or
        return ``None`` (rebuild on next use) when a new candidate list
        no longer fits the padded width."""
        flat = self._flat
        width = flat.cx.shape[1]
        rows = {sid: r for r, sid in
                enumerate(flat.sid_sorted.tolist())}
        for sid in touched:
            r = rows[sid]
            state = self._states[sid]
            if len(state.cands) > width:
                return None
            flat.ox[r] = state.x
            flat.oy[r] = state.y
            flat.in_dt[r] = state.in_dt
            flat.ns[r] = max(state.num_servers, 0)
            flat.cx[r, :] = np.inf
            flat.cy[r, :] = np.inf
            flat.kind[r, :] = 2
            flat.nid[r, :] = -1
            flat.nrow[r, :] = -1
            for c, (x, y, kind, nid) in enumerate(state.cands):
                flat.cx[r, c] = x
                flat.cy[r, c] = y
                flat.kind[r, c] = kind
                flat.nid[r, c] = nid
                flat.nrow[r, c] = rows.get(nid, -1)
        return flat

    # ------------------------------------------------------------------
    def _chain(self, source: int, dest: int) -> Tuple[int, ...]:
        """Relay switches from ``source``'s successor through ``dest``
        for the virtual link toward DT neighbor ``dest``."""
        cached = self._chains.get((source, dest))
        if cached is not None:
            return cached
        entry = self._states[source].table.virtual_entry(dest)
        if entry is None or entry.succ is None:
            raise ForwardingError(
                f"switch {source} has no virtual-link entry "
                f"toward DT neighbor {dest}"
            )
        chain = [entry.succ]
        current = entry.succ
        bound = self._default_max_hops
        while current != dest:
            if current not in self._states:
                raise ForwardingError(
                    f"switch {chain[-2] if len(chain) > 1 else source} "
                    f"forwarded to unknown switch {current}"
                )
            relay = self._states[current].table.virtual_entry(dest)
            if relay is None or relay.succ is None:
                raise ForwardingError(
                    f"switch {current} has no relay entry toward "
                    f"virtual-link destination {dest}"
                )
            current = relay.succ
            chain.append(current)
            if len(chain) > bound:
                raise ForwardingError(
                    f"virtual link {source}->{dest} does not "
                    f"terminate within {bound} relays"
                )
        result = tuple(chain)
        self._chains[(source, dest)] = result
        return result

    def route(self, entry: int, data_id: str, px: float, py: float,
              serial_u64: int, max_hops: Optional[int] = None
              ) -> Tuple[List[int], int, int, int]:
        """Route one request; returns ``(trace, overlay_hops,
        destination_switch, primary_serial)``.

        Byte-identical to ``route_packet`` with no faults/tracing: the
        trace lists every switch visited (entry first), the hop bound
        raises the same error, and the primary serial is the
        ``H(d) mod s`` choice at the delivery switch.
        """
        states = self._states
        if entry not in states:
            raise ForwardingError(f"unknown entry switch {entry}")
        if max_hops is None:
            max_hops = self._default_max_hops
        trace = [entry]
        current = entry
        overlay = 0
        hops = 0
        # Decision-mix counts, kept event-time-faithful to the
        # reference engine (a greedy/vl-start counts at decision time,
        # a relay before its step's hop-bound check) so partial counts
        # on a failed route match the engine's too.
        stats = [0, 0, 0]  # greedy, vl_starts, vl_relays
        try:
            while True:
                state = states[current]
                if not state.in_dt:
                    raise ForwardingError(
                        f"greedy stage reached relay-only switch "
                        f"{current}"
                    )
                ox = state.x
                oy = state.y
                dx = ox - px
                dy = oy - py
                # Best strictly-improving candidate under the scalar
                # sort key ((d^2, x, y), kind, nid).  Seeding "best"
                # with the switch's own key and a sentinel kind is
                # exact because participant positions are deduplicated
                # — no candidate can tie the full (d^2, x, y) key of a
                # distinct switch.
                bd2 = dx * dx + dy * dy
                bx = ox
                by = oy
                bkind = 2
                bnid = -1
                for (cx, cy, kind, nid) in state.cands:
                    dx = cx - px
                    dy = cy - py
                    d2 = dx * dx + dy * dy
                    if d2 > bd2:
                        continue
                    if d2 == bd2:
                        if cx > bx:
                            continue
                        if cx == bx:
                            if cy > by:
                                continue
                            if cy == by and (kind > bkind or (
                                    kind == bkind and nid >= bnid)):
                                continue
                    bd2 = d2
                    bx = cx
                    by = cy
                    bkind = kind
                    bnid = nid
                if bkind == 2:
                    # No neighbor improves: deliver locally.
                    if state.num_servers <= 0:
                        raise ForwardingError(
                            f"switch {current} must deliver "
                            f"{data_id!r} but has no attached servers"
                        )
                    return (trace, overlay, current,
                            int(serial_u64 % state.num_servers))
                overlay += 1
                if bkind == 0:
                    stats[0] += 1
                    if bnid not in states:
                        raise ForwardingError(
                            f"switch {current} forwarded to unknown "
                            f"switch {bnid}"
                        )
                    trace.append(bnid)
                    current = bnid
                    hops += 1
                    if hops > max_hops:
                        raise ForwardingError(
                            f"hop bound {max_hops} exceeded routing "
                            f"{data_id!r} (trace {trace})"
                        )
                else:
                    stats[1] += 1
                    for step, relay in enumerate(
                            self._chain(current, bnid)):
                        if step:
                            stats[2] += 1
                        trace.append(relay)
                        hops += 1
                        if hops > max_hops:
                            raise ForwardingError(
                                f"hop bound {max_hops} exceeded "
                                f"routing {data_id!r} (trace {trace})"
                            )
                    current = bnid
        finally:
            self.last_route_stats = (stats[0], stats[1], stats[2])

    # ------------------------------------------------------------------
    def route_batch(self, entries: Sequence[int],
                    data_ids: Sequence[str],
                    pxs: np.ndarray, pys: np.ndarray,
                    serial_u64s: np.ndarray,
                    max_hops: Optional[int] = None
                    ) -> List[RouteOutcome]:
        """Route many requests in switch-grouped waves.

        Each wave groups the in-flight requests by their current
        switch and evaluates that switch's candidate set against all
        of them with one vectorized pass; the per-request winner and
        strict-improvement test replicate :meth:`route`'s float
        arithmetic and lexicographic tie-breaks exactly, so every
        outcome is byte-identical to the scalar walk.

        Returns one outcome per request, in order: the same
        ``(trace, overlay_hops, destination_switch, primary_serial)``
        tuple :meth:`route` produces, or the :class:`ForwardingError`
        it would have raised (the caller decides whether to raise).
        """
        k = len(entries)
        if max_hops is None:
            max_hops = self._default_max_hops
        self.last_batch_waves = 0
        results: List[Optional[RouteOutcome]] = [None] * k
        flat = self._flat
        if flat is None:
            flat = self._flat = _FlatPlane(self._states)
        traces: List[Optional[List[int]]] = [None] * k
        overlay = np.zeros(k, dtype=np.int64)
        hops = np.zeros(k, dtype=np.int64)
        # Per-request decision mix (greedy, vl_starts, vl_relays),
        # incremented with the same event timing as the scalar engine
        # so telemetry derived from it is byte-identical.
        g_arr = np.zeros(k, dtype=np.int64)
        v_arr = np.zeros(k, dtype=np.int64)
        r_arr = np.zeros(k, dtype=np.int64)
        entries_arr = np.asarray(entries, dtype=np.int64)
        if flat.sid_sorted.size:
            lookup = np.minimum(
                np.searchsorted(flat.sid_sorted, entries_arr),
                flat.sid_sorted.size - 1)
            known = flat.sid_sorted[lookup] == entries_arr
        else:
            lookup = np.zeros(k, dtype=np.int64)
            known = np.zeros(k, dtype=bool)
        current = lookup  # row index per request, valid where known
        if known.all():
            active = np.arange(k, dtype=np.int64)
            for j, entry in enumerate(entries):
                traces[j] = [entry]
        else:
            active = np.flatnonzero(known)
            for j in np.flatnonzero(~known).tolist():
                results[j] = ForwardingError(
                    f"unknown entry switch {entries[j]}")
            for j in active.tolist():
                traces[j] = [entries[j]]
        while active.size:
            self.last_batch_waves += 1
            if active.size < _WAVE_MIN_ACTIVE:
                # Stragglers: whole-plane numpy dispatch would no
                # longer amortize — rerun them through the scalar
                # walker from their entry (same outcome) instead.
                for j in active.tolist():
                    try:
                        results[j] = self.route(
                            entries[j], data_ids[j],
                            pxs[j], pys[j], serial_u64s[j],
                            max_hops=max_hops)
                    except ForwardingError as exc:
                        results[j] = exc
                    g_arr[j], v_arr[j], r_arr[j] = \
                        self.last_route_stats
                break
            rows = current[active]
            tx = pxs[active]
            ty = pys[active]
            in_dt = flat.in_dt[rows]
            if not in_dt.all():
                stuck = active[~in_dt]
                sids = flat.sid[rows[~in_dt]].tolist()
                for j, sid in zip(stuck.tolist(), sids):
                    results[j] = ForwardingError(
                        f"greedy stage reached relay-only switch {sid}"
                    )
                active = active[in_dt]
                if not active.size:
                    break
                rows = rows[in_dt]
                tx = tx[in_dt]
                ty = ty[in_dt]
            ox = flat.ox[rows]
            oy = flat.oy[rows]
            dx = ox - tx
            dy = oy - ty
            od2 = dx * dx + dy * dy
            cxb = flat.cx[rows]
            cyb = flat.cy[rows]
            cdx = cxb - tx[:, None]
            cdy = cyb - ty[:, None]
            d2 = cdx * cdx + cdy * cdy
            best = d2.argmin(axis=1)
            bd2 = d2.min(axis=1)
            improved = bd2 < od2
            ties = bd2 == od2
            if ties.any():
                # Strict improvement over the switch's own key.  The
                # scalar walker's sentinel kind makes a full
                # (d^2, x, y) tie win for the candidate, hence ``<=``
                # on ``y``.  (Pad cells are at +inf and cannot tie.)
                t = np.flatnonzero(ties)
                bx = cxb[t, best[t]]
                by = cyb[t, best[t]]
                improved[t] |= (bx < ox[t]) | (
                    (bx == ox[t]) & (by <= oy[t]))
            if not improved.all():
                keep = ~improved
                stay = active[keep]
                ns = flat.ns[rows[keep]]
                sids = flat.sid[rows[keep]].tolist()
                serials = (serial_u64s[stay]
                           % np.maximum(ns, 1)).tolist()
                overlays = overlay[stay].tolist()
                if (ns == 0).any():
                    empty = (ns == 0).tolist()
                    for j, sid, ov, serial, bad in zip(
                            stay.tolist(), sids, overlays, serials,
                            empty):
                        if bad:
                            results[j] = ForwardingError(
                                f"switch {sid} must deliver "
                                f"{data_ids[j]!r} but has no "
                                f"attached servers"
                            )
                        else:
                            results[j] = (traces[j], ov, sid, serial)
                else:
                    for j, sid, ov, serial in zip(
                            stay.tolist(), sids, overlays, serials):
                        results[j] = (traces[j], ov, sid, serial)
                if not improved.any():
                    break
                moved = active[improved]
                rows_m = rows[improved]
                best_m = best[improved]
            else:
                moved = active
                rows_m = rows
                best_m = best
            overlay[moved] += 1
            kinds = flat.kind[rows_m, best_m]
            nrows = flat.nrow[rows_m, best_m]
            phys = kinds == 0
            if phys.all():
                pj, prow = moved, nrows
                vl = None
            elif not phys.any():
                pj = prow = None
                vl = ~phys
            else:
                pj = moved[phys]
                prow = nrows[phys]
                vl = ~phys
            if pj is not None and pj.size:
                # Engine counts a greedy forward at decision time,
                # before the unknown-neighbor/hop-bound checks.
                g_arr[pj] += 1
            phys_ok: Optional[np.ndarray] = None
            if pj is not None and pj.size:
                walked = hops[pj] + 1
                if prow.min() >= 0 and not walked.max() > max_hops:
                    current[pj] = prow
                    hops[pj] = walked
                    nxt_sids = flat.sid[prow].tolist()
                    for j, nxt in zip(pj.tolist(), nxt_sids):
                        traces[j].append(nxt)
                    phys_ok = pj
                else:
                    # Unknown neighbor or hop-bound breach somewhere
                    # in this wave: take the exact per-request path.
                    current[pj] = np.maximum(prow, 0)
                    hops[pj] = walked
                    src_sids = flat.sid[rows_m[phys] if vl is not None
                                        else rows_m].tolist()
                    nids = flat.nid[rows_m, best_m]
                    pn = (nids[phys] if vl is not None
                          else nids).tolist()
                    ok: List[int] = []
                    exceeded = (walked > max_hops).tolist()
                    for j, src, nxt, nrow, exc in zip(
                            pj.tolist(), src_sids, pn,
                            prow.tolist(), exceeded):
                        if nrow < 0:
                            results[j] = ForwardingError(
                                f"switch {src} forwarded to unknown "
                                f"switch {nxt}"
                            )
                            continue
                        traces[j].append(nxt)
                        if exc:
                            results[j] = ForwardingError(
                                f"hop bound {max_hops} exceeded "
                                f"routing {data_ids[j]!r} "
                                f"(trace {traces[j]})"
                            )
                        else:
                            ok.append(j)
                    phys_ok = np.asarray(ok, dtype=np.int64)
            vl_ok: List[int] = []
            if vl is not None:
                vj = moved[vl]
                if vj.size:
                    vrows = nrows[vl]
                    src_sids = flat.sid[rows_m[vl]].tolist()
                    dest_sids = flat.nid[rows_m, best_m][vl].tolist()
                    hv = hops[vj].tolist()
                    for j, src, dest, nrow, stepped in zip(
                            vj.tolist(), src_sids, dest_sids,
                            vrows.tolist(), hv):
                        v_arr[j] += 1
                        try:
                            chain = self._chain(src, dest)
                        except ForwardingError as exc:
                            results[j] = exc
                            continue
                        if nrow < 0:
                            # The scalar walker would key the states
                            # dict with the unknown destination next
                            # iteration; surface the same KeyError.
                            raise KeyError(dest)
                        budget = stepped + len(chain)
                        if budget <= max_hops:
                            traces[j].extend(chain)
                            hops[j] = budget
                            current[j] = nrow
                            r_arr[j] += len(chain) - 1
                            vl_ok.append(j)
                        else:
                            # Replay relay by relay so the error
                            # trace truncates exactly where the
                            # scalar walker raised.
                            trace = traces[j]
                            for ci, relay in enumerate(chain):
                                if ci:
                                    r_arr[j] += 1
                                trace.append(relay)
                                stepped += 1
                                if stepped > max_hops:
                                    results[j] = ForwardingError(
                                        f"hop bound {max_hops} "
                                        f"exceeded routing "
                                        f"{data_ids[j]!r} "
                                        f"(trace {trace})"
                                    )
                                    break
            if phys_ok is None:
                active = np.asarray(vl_ok, dtype=np.int64)
            elif vl_ok:
                active = np.concatenate(
                    [phys_ok, np.asarray(vl_ok, dtype=np.int64)])
            else:
                active = phys_ok
        batch_stats: List[Optional[Tuple[int, int, int]]] = list(
            zip(g_arr.tolist(), v_arr.tolist(), r_arr.tolist()))
        if not known.all():
            # Unknown-entry requests never enter the engine (the
            # reference walker raises before fetching its counters),
            # so they carry no decision mix at all rather than zeros.
            for j in np.flatnonzero(~known).tolist():
                batch_stats[j] = None
        self.last_batch_stats = batch_stats
        return results
