"""A compiled greedy router for the batch request fast path.

``route_packet`` is faithful to the paper's per-switch pipeline — one
``Packet`` object, one ``process`` call and one candidate sort per hop —
which is the right shape for tracing and fault injection but dominates
the request latency of large workloads.  ``CompiledRouter`` flattens the
per-switch state (positions, greedy candidate lists, relay chains) into
plain tuples once per control-plane epoch and replays the *identical*
decision procedure with no per-packet object construction:

* greedy stage: minimal ``((d^2, x, y), kind, nid)`` candidate strictly
  closer than the current switch, physical (kind 0) before DT-only
  (kind 1), exactly Algorithm 2's comparison;
* virtual links: the relay chain toward a DT-only neighbor is resolved
  from the switches' installed ``VirtualLinkEntry`` tuples on first use
  and cached for the epoch;
* delivery: ``H(d) mod s`` server selection from the precomputed 64-bit
  digest prefix; extension entries are looked up live (range
  extensions come and go without an epoch bump).

:meth:`CompiledRouter.route` walks one request; :meth:`route_batch`
advances a whole batch in switch-grouped *waves* — every request parked
at the same switch shares one vectorized candidate evaluation — which
amortizes the per-hop decision to a few numpy operations per group.

The router must be rebuilt when the control plane recomputes — callers
key it on :attr:`Controller.epoch`.  It assumes fault-free forwarding
(the facade falls back to ``route_packet`` when a fault state is
attached) and raises the same :class:`ForwardingError` messages as the
reference engine on inconsistent state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .switch import ForwardingError, GredSwitch


def _gate_fault_state(net) -> bool:
    return getattr(net, "fault_state", None) is not None


def _gate_position_fn(net) -> bool:
    from ..hashing import data_position

    return getattr(net, "_position_fn", None) is not data_position


def _gate_resilience(net) -> bool:
    pipeline = getattr(net, "_resilience", None)
    return pipeline is not None and pipeline.blocks_fastpath()


#: The single source of truth for fast-path eligibility: ``(predicate,
#: reason)`` gates evaluated against the facade.  A request batch may
#: take the vectorized path iff no predicate fires.  Both the facade's
#: ``_fastpath_usable`` and :func:`batch_fastpath_blockers` consume
#: this list, so the two can never drift apart again (they did once:
#: telemetry stopped blocking the fast path in PR 6 and only one copy
#: was updated at first).
FASTPATH_GATES: Tuple[Tuple[Callable[[object], bool], str], ...] = (
    (_gate_fault_state, "fault state attached"),
    (_gate_position_fn, "custom position_fn"),
    (_gate_resilience, "resilience breakers tripped"),
)


def batch_fastpath_blockers(net) -> List[str]:
    """Why ``place_many``/``retrieve_many`` would currently fall back
    to the scalar reference pipeline for ``net`` (empty = fast path
    eligible).

    Evaluates :data:`FASTPATH_GATES` — the same gates the facade's
    ``_fastpath_usable`` consults — so operators can see *which*
    condition is costing them the vectorized path (``gred stats
    --json`` surfaces this list).
    """
    return [reason for gate, reason in FASTPATH_GATES if gate(net)]


def fastpath_usable(net) -> bool:
    """``True`` iff no :data:`FASTPATH_GATES` predicate fires for
    ``net`` — the boolean twin of :func:`batch_fastpath_blockers`."""
    return not any(gate(net) for gate, _ in FASTPATH_GATES)


def federated_blockers(fed) -> Dict[int, List[str]]:
    """Per-region fast-path blockers of a federation.

    The federation has no global compiled plane — each region shard
    carries its own ``_FastPathState`` — so batch eligibility is a
    per-shard question: a fault injected into one region stands that
    shard down to the scalar reference path while every other region
    keeps its vectorized plane.  Returns ``region id -> blocker
    reasons`` (all empty = every shard batch-eligible), the federated
    twin of :func:`batch_fastpath_blockers`.
    """
    return {
        rid: batch_fastpath_blockers(shard.net)
        for rid, shard in sorted(fed.shards.items())
    }


#: ``route_batch`` hands stragglers to the scalar walker once the
#: active set is this small — whole-batch numpy dispatch no longer
#: amortizes over a handful of in-flight requests.
_WAVE_MIN_ACTIVE = 96

RouteOutcome = Union[Tuple[List[int], int, int, int], ForwardingError]


class _FlatPlane:
    """Dense, padded form of the whole switch plane for wave routing.

    Row ``r`` is the switch with the ``r``-th smallest id; every
    candidate list is right-padded to the widest switch so one fancy
    gather yields the candidate block of all in-flight requests at
    once.  Pad cells carry ``+inf`` positions (their squared distance
    can never win the argmin against a finite target) and kind 2 /
    nid -1 sentinels.
    """

    __slots__ = ("sid_sorted", "sid", "ox", "oy", "in_dt", "ns",
                 "cx", "cy", "kind", "nid", "nrow",
                 "chain_off", "chain_len", "chain_err",
                 "chain_sids", "chain_errors", "chains_built")

    def __init__(self, states: Dict[int, _CompiledSwitch]) -> None:
        sids = sorted(states)
        rows = {sid: r for r, sid in enumerate(sids)}
        n = len(sids)
        width = max((len(states[sid].cands) for sid in sids), default=0)
        width = max(width, 1)
        self.sid_sorted = np.asarray(sids, dtype=np.int64)
        self.sid = self.sid_sorted
        self.ox = np.empty(n, dtype=np.float64)
        self.oy = np.empty(n, dtype=np.float64)
        self.in_dt = np.empty(n, dtype=bool)
        self.ns = np.empty(n, dtype=np.int64)
        self.cx = np.full((n, width), np.inf, dtype=np.float64)
        self.cy = np.full((n, width), np.inf, dtype=np.float64)
        self.kind = np.full((n, width), 2, dtype=np.int64)
        self.nid = np.full((n, width), -1, dtype=np.int64)
        self.nrow = np.full((n, width), -1, dtype=np.int64)
        for sid in sids:
            r = rows[sid]
            state = states[sid]
            self.ox[r] = state.x
            self.oy[r] = state.y
            self.in_dt[r] = state.in_dt
            self.ns[r] = max(state.num_servers, 0)
            for c, (x, y, kind, nid) in enumerate(state.cands):
                self.cx[r, c] = x
                self.cy[r, c] = y
                self.kind[r, c] = kind
                self.nid[r, c] = nid
                self.nrow[r, c] = rows.get(nid, -1)
        self.invalidate_chains()
        self._assert_invariants()

    def _assert_invariants(self) -> None:
        """Dtype invariant of the compile step: every id/count plane
        is ``int64`` and every coordinate plane ``float64``.  Mixing a
        ``uint64`` array into int64 arithmetic silently promotes the
        result to ``float64``, which corrupts exact comparisons above
        2**53 — ``ns`` shipped as uint64 once, so the invariant is now
        enforced at build time."""
        for name in ("sid_sorted", "sid", "ns", "kind", "nid", "nrow"):
            dtype = getattr(self, name).dtype
            if dtype != np.int64:
                raise AssertionError(
                    f"_FlatPlane.{name} must be int64, got {dtype}")
        for name in ("ox", "oy", "cx", "cy"):
            dtype = getattr(self, name).dtype
            if dtype != np.float64:
                raise AssertionError(
                    f"_FlatPlane.{name} must be float64, got {dtype}")

    def invalidate_chains(self) -> None:
        """Drop the CSR relay-chain arrays (after a scoped patch —
        chains are rebuilt from the router's pruned cache on next
        use)."""
        self.chain_off = None
        self.chain_len = None
        self.chain_err = None
        self.chain_sids = None
        self.chain_errors = None
        self.chains_built = False

    def attach_chains(self, resolver) -> None:
        """Resolve every virtual-link cell's relay chain into CSR
        arrays (``chain_off``/``chain_len`` index a flat ``chain_sids``
        run) so wave dispatch crosses virtual links without leaving
        numpy.  Resolution failures are recorded per cell in
        ``chain_err`` (an index into ``chain_errors``) and surfaced
        only when a request actually crosses that cell — exactly the
        behavior of the lazy per-request resolution this replaces."""
        n, width = self.kind.shape
        off = np.full((n, width), -1, dtype=np.int64)
        length = np.zeros((n, width), dtype=np.int64)
        err = np.full((n, width), -1, dtype=np.int64)
        sids: List[int] = []
        messages: List[str] = []
        vl_rows, vl_cols = np.nonzero(self.kind == 1)
        for r, c in zip(vl_rows.tolist(), vl_cols.tolist()):
            src = int(self.sid[r])
            dst = int(self.nid[r, c])
            try:
                chain = resolver(src, dst)
            except ForwardingError as exc:
                err[r, c] = len(messages)
                messages.append(str(exc))
                continue
            off[r, c] = len(sids)
            length[r, c] = len(chain)
            sids.extend(chain)
        self.chain_off = off
        self.chain_len = length
        self.chain_err = err
        self.chain_sids = np.asarray(sids, dtype=np.int64)
        self.chain_errors = messages
        self.chains_built = True


class _CompiledSwitch:
    """Per-switch state flattened for the hot loop."""

    __slots__ = ("x", "y", "in_dt", "num_servers", "cands", "table",
                 "cand_x", "cand_y", "cand_kind", "cand_nid",
                 "neighbors_known")

    def __init__(self, switch: GredSwitch) -> None:
        self.x = switch.position[0]
        self.y = switch.position[1]
        self.in_dt = switch.in_dt
        self.num_servers = switch.num_servers
        self.table = switch.table
        # (x, y, kind, nid): physical candidates (kind 0) and DT-only
        # candidates (kind 1), mirroring the two scans of the greedy
        # stage.  Neighbors present in both sets are physical-only,
        # like the reference pipeline.  Sorted by (x, y, kind, nid) so
        # a first-occurrence argmin over squared distances selects the
        # same winner as the scalar lexicographic comparison.
        cands: List[Tuple[float, float, int, int]] = []
        for nid, pos in switch.physical_neighbor_positions.items():
            cands.append((pos[0], pos[1], 0, nid))
        for nid, pos in switch.dt_neighbor_positions.items():
            if nid not in switch.physical_neighbor_positions:
                cands.append((pos[0], pos[1], 1, nid))
        cands.sort()
        self.cands = cands
        self.cand_x = np.array([c[0] for c in cands], dtype=np.float64)
        self.cand_y = np.array([c[1] for c in cands], dtype=np.float64)
        self.cand_kind = np.array([c[2] for c in cands], dtype=np.int64)
        self.cand_nid = np.array([c[3] for c in cands], dtype=np.int64)


def _error_text(code: str, args: tuple, data_id: str) -> str:
    """Materialize a deferred routing-error message.  The packed walk
    records ``(code, args)`` instead of strings so worker shards never
    need the request ids — the parent formats the byte-identical
    message the scalar engine would have raised."""
    if code == "entry":
        return f"unknown entry switch {args[0]}"
    if code == "relay_only":
        return f"greedy stage reached relay-only switch {args[0]}"
    if code == "no_servers":
        return (f"switch {args[0]} must deliver {data_id!r} "
                f"but has no attached servers")
    if code == "unknown_fwd":
        return f"switch {args[0]} forwarded to unknown switch {args[1]}"
    return args[0]


def _ragged_arange(lens: np.ndarray) -> np.ndarray:
    """``[0..lens[0]), [0..lens[1]), ...`` concatenated."""
    total = int(lens.sum())
    out = np.arange(total, dtype=np.int64)
    return out - np.repeat(np.cumsum(lens) - lens, lens)


class _PackedRoutes:
    """Array-of-struct result of one packed batch walk.

    Every per-request outcome lives in a parallel array: delivered
    requests carry ``dest >= 0`` plus the ``H(d) mod s`` serial and a
    ``trace_flat[off[j]:off[j+1]]`` switch trace; failed requests
    carry a coded entry in ``errors`` (or an index in
    ``hop_failures``) that :meth:`materialize` formats into the
    byte-identical :class:`ForwardingError` lazily.  The struct is
    picklable and id-free, so worker shards ship it back over a pipe
    without materializing any Python outcome objects.
    """

    __slots__ = ("k", "dest", "serial", "overlay", "greedy", "vl",
                 "relays", "known", "tlen", "off", "trace_flat",
                 "errors", "hop_failures", "waves", "worker_waves")

    def __init__(self, k: int) -> None:
        self.k = k
        self.dest = np.full(k, -1, dtype=np.int64)
        self.serial = np.zeros(k, dtype=np.int64)
        self.overlay = np.zeros(k, dtype=np.int64)
        self.greedy = np.zeros(k, dtype=np.int64)
        self.vl = np.zeros(k, dtype=np.int64)
        self.relays = np.zeros(k, dtype=np.int64)
        self.known = np.ones(k, dtype=bool)
        # Trace lengths start at 1: the entry switch leads every trace.
        self.tlen = np.ones(k, dtype=np.int64)
        self.off: Optional[np.ndarray] = None
        self.trace_flat: Optional[np.ndarray] = None
        #: ``(request_index, code, args)`` deferred errors.
        self.errors: List[Tuple[int, str, tuple]] = []
        #: Request indices that breached the hop bound (their message
        #: needs the assembled trace, hence a separate channel).
        self.hop_failures: List[int] = []
        self.waves = 0
        #: Per-shard wave counts when produced by a worker merge.
        self.worker_waves: Optional[List[int]] = None

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def finish(self, entries_arr: np.ndarray, segs: List[tuple]) -> None:
        """Assemble the flat trace array from the walk's per-wave
        segments with cumsum offsets + scatter stores — the step that
        replaces ~one Python ``list.append`` per request per hop."""
        k = self.k
        off = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(self.tlen, out=off[1:])
        trace_flat = np.empty(int(off[k]), dtype=np.int64)
        cursor = off[:k].copy()
        trace_flat[cursor] = entries_arr
        cursor += 1
        for seg in segs:
            tag = seg[0]
            if tag == 0:
                # One greedy step for a wave: (0, indices, next_sids).
                _, idx, sids = seg
                trace_flat[cursor[idx]] = sids
                cursor[idx] += 1
            elif tag == 1:
                # Relay chains: (1, indices, csr_off, lens, csr_sids).
                _, idx, coff, clen, csr = seg
                inner = _ragged_arange(clen)
                trace_flat[np.repeat(cursor[idx], clen) + inner] = \
                    csr[np.repeat(coff, clen) + inner]
                cursor[idx] += clen
            else:
                # Straggler continuation: (2, index, [sids...]).
                _, j, lst = seg
                start = cursor[j]
                trace_flat[start:start + len(lst)] = lst
                cursor[j] += len(lst)
        self.off = off
        self.trace_flat = trace_flat

    def stats_list(self) -> List[Optional[Tuple[int, int, int]]]:
        """Per-request ``(greedy, vl_starts, vl_relays)`` decision mix
        with the reference engine's event timing; ``None`` for
        unknown-entry requests (the scalar walker raises before
        fetching counters, so they carry no mix at all)."""
        stats: List[Optional[Tuple[int, int, int]]] = list(zip(
            self.greedy.tolist(), self.vl.tolist(),
            self.relays.tolist()))
        if not self.known.all():
            for j in np.flatnonzero(~self.known).tolist():
                stats[j] = None
        return stats

    def materialize(self, data_ids: Sequence[str],
                    max_hops: int) -> List[RouteOutcome]:
        """Format the packed arrays into the scalar walker's outcome
        list: ``(trace, overlay_hops, destination, serial)`` tuples or
        the exact :class:`ForwardingError` it would have raised."""
        results: List[Optional[RouteOutcome]] = [None] * self.k
        flat_list = self.trace_flat.tolist()
        off = self.off.tolist()
        for j, code, args in self.errors:
            results[j] = ForwardingError(
                _error_text(code, args, data_ids[j]))
        for j in self.hop_failures:
            trace = flat_list[off[j]:off[j + 1]]
            results[j] = ForwardingError(
                f"hop bound {max_hops} exceeded routing "
                f"{data_ids[j]!r} (trace {trace})")
        dest = self.dest.tolist()
        serial = self.serial.tolist()
        overlay = self.overlay.tolist()
        for j, d in enumerate(dest):
            if d >= 0:
                results[j] = (flat_list[off[j]:off[j + 1]],
                              overlay[j], d, serial[j])
        return results


def _continue_plane_scalar(flat: _FlatPlane, packed: _PackedRoutes,
                           segs: List[tuple], hops: np.ndarray,
                           j: int, row: int, px: float, py: float,
                           su64: int, max_hops: int) -> None:
    """Walk one straggler to completion directly on the dense plane.

    Replaces the old fallback that re-ran stragglers through
    :meth:`CompiledRouter.route` *from their entry switch*: this
    continues from the request's current position, reusing the wave
    prefix already accumulated in ``packed`` (trace, hop count,
    decision mix), and replays the scalar walker's float arithmetic
    and tie-breaks exactly — the combined prefix + continuation is
    byte-identical to the full scalar walk."""
    seg: List[int] = []
    hop = int(hops[j])
    try:
        while True:
            if not flat.in_dt[row]:
                packed.errors.append(
                    (j, "relay_only", (int(flat.sid[row]),)))
                return
            ox = float(flat.ox[row])
            oy = float(flat.oy[row])
            dx = ox - px
            dy = oy - py
            bd2 = dx * dx + dy * dy
            bx = ox
            by = oy
            bkind = 2
            bnid = -1
            bcol = -1
            kinds = flat.kind[row].tolist()
            cxs = flat.cx[row].tolist()
            cys = flat.cy[row].tolist()
            nids = flat.nid[row].tolist()
            for c, kind in enumerate(kinds):
                if kind == 2:
                    break  # pad cells are trailing
                cx = cxs[c]
                cy = cys[c]
                ddx = cx - px
                ddy = cy - py
                d2 = ddx * ddx + ddy * ddy
                if d2 > bd2:
                    continue
                if d2 == bd2:
                    if cx > bx:
                        continue
                    if cx == bx:
                        if cy > by:
                            continue
                        if cy == by and (kind > bkind or (
                                kind == bkind and nids[c] >= bnid)):
                            continue
                bd2 = d2
                bx = cx
                by = cy
                bkind = kind
                bnid = nids[c]
                bcol = c
            if bkind == 2:
                ns = int(flat.ns[row])
                if ns <= 0:
                    packed.errors.append(
                        (j, "no_servers", (int(flat.sid[row]),)))
                    return
                packed.dest[j] = int(flat.sid[row])
                packed.serial[j] = su64 % ns
                return
            packed.overlay[j] += 1
            nrow = int(flat.nrow[row, bcol])
            if bkind == 0:
                packed.greedy[j] += 1
                if nrow < 0:
                    packed.errors.append(
                        (j, "unknown_fwd", (int(flat.sid[row]), bnid)))
                    return
                seg.append(bnid)
                hop += 1
                row = nrow
                if hop > max_hops:
                    packed.hop_failures.append(j)
                    return
            else:
                packed.vl[j] += 1
                cerr = int(flat.chain_err[row, bcol])
                if cerr >= 0:
                    packed.errors.append(
                        (j, "msg", (flat.chain_errors[cerr],)))
                    return
                if nrow < 0:
                    # The scalar walker would key its states dict with
                    # the unknown destination next iteration; surface
                    # the same KeyError.
                    raise KeyError(bnid)
                coff = int(flat.chain_off[row, bcol])
                clen = int(flat.chain_len[row, bcol])
                chain = flat.chain_sids[coff:coff + clen].tolist()
                for ci, relay in enumerate(chain):
                    if ci:
                        packed.relays[j] += 1
                    seg.append(relay)
                    hop += 1
                    if hop > max_hops:
                        packed.hop_failures.append(j)
                        return
                row = nrow
    finally:
        if seg:
            segs.append((2, j, seg))
            packed.tlen[j] += len(seg)
        hops[j] = hop


def _route_batch_packed(flat: _FlatPlane, entries_arr: np.ndarray,
                        pxs: np.ndarray, pys: np.ndarray,
                        serial_u64s: np.ndarray, max_hops: int,
                        min_active: int = _WAVE_MIN_ACTIVE
                        ) -> _PackedRoutes:
    """Advance a whole batch over the dense plane in switch-grouped
    waves, keeping every per-request output in numpy arrays.

    This is the pure-array core shared by the in-process fast path and
    the shared-memory worker shards: it needs only the plane and the
    request arrays (entries, positions, 64-bit digest serials) — no
    request ids, no live router — and returns a :class:`_PackedRoutes`.
    Stragglers below ``min_active`` continue scalar *on the plane* from
    their current switch instead of re-walking from the entry, so
    replica fan-out batches stay on the vectorized path end to end.
    """
    k = int(entries_arr.size)
    packed = _PackedRoutes(k)
    dest = packed.dest
    serial = packed.serial
    overlay = packed.overlay
    g_arr = packed.greedy
    v_arr = packed.vl
    r_arr = packed.relays
    tlen = packed.tlen
    errors = packed.errors
    hop_failures = packed.hop_failures
    hops = np.zeros(k, dtype=np.int64)
    segs: List[tuple] = []
    if flat.sid_sorted.size:
        lookup = np.minimum(
            np.searchsorted(flat.sid_sorted, entries_arr),
            flat.sid_sorted.size - 1)
        known = flat.sid_sorted[lookup] == entries_arr
    else:
        lookup = np.zeros(k, dtype=np.int64)
        known = np.zeros(k, dtype=bool)
    current = lookup.astype(np.int64, copy=True)
    packed.known = known
    if known.all():
        active = np.arange(k, dtype=np.int64)
    else:
        active = np.flatnonzero(known)
        for j, entry in zip(np.flatnonzero(~known).tolist(),
                            entries_arr[~known].tolist()):
            errors.append((j, "entry", (entry,)))
    while active.size:
        packed.waves += 1
        if active.size < min_active:
            # Stragglers: whole-plane numpy dispatch no longer
            # amortizes — continue them scalar on the plane from
            # where they stand (same outcome, no re-walk).
            for j in active.tolist():
                _continue_plane_scalar(
                    flat, packed, segs, hops, j, int(current[j]),
                    float(pxs[j]), float(pys[j]),
                    int(serial_u64s[j]), max_hops)
            break
        rows = current[active]
        tx = pxs[active]
        ty = pys[active]
        in_dt = flat.in_dt[rows]
        if not in_dt.all():
            stuck = active[~in_dt]
            for j, sid in zip(stuck.tolist(),
                              flat.sid[rows[~in_dt]].tolist()):
                errors.append((j, "relay_only", (sid,)))
            active = active[in_dt]
            if not active.size:
                break
            rows = rows[in_dt]
            tx = tx[in_dt]
            ty = ty[in_dt]
        ox = flat.ox[rows]
        oy = flat.oy[rows]
        dx = ox - tx
        dy = oy - ty
        od2 = dx * dx + dy * dy
        cxb = flat.cx[rows]
        cyb = flat.cy[rows]
        cdx = cxb - tx[:, None]
        cdy = cyb - ty[:, None]
        d2 = cdx * cdx + cdy * cdy
        best = d2.argmin(axis=1)
        bd2 = d2.min(axis=1)
        improved = bd2 < od2
        ties = bd2 == od2
        if ties.any():
            # Strict improvement over the switch's own key.  The
            # scalar walker's sentinel kind makes a full (d^2, x, y)
            # tie win for the candidate, hence ``<=`` on ``y``.  (Pad
            # cells are at +inf and cannot tie.)
            t = np.flatnonzero(ties)
            bx = cxb[t, best[t]]
            by = cyb[t, best[t]]
            improved[t] |= (bx < ox[t]) | (
                (bx == ox[t]) & (by <= oy[t]))
        if not improved.all():
            keep = ~improved
            stay = active[keep]
            ns = flat.ns[rows[keep]]
            sids_stay = flat.sid[rows[keep]]
            # ns is int64 (dtype invariant) but the modulo must stay
            # exact uint64 arithmetic: int64 % uint64 would promote
            # to float64 and corrupt serials above 2**53.
            serials_stay = (serial_u64s[stay] %
                            np.maximum(ns, 1).astype(np.uint64)
                            ).astype(np.int64)
            empty = ns == 0
            if empty.any():
                good = ~empty
                ok_stay = stay[good]
                dest[ok_stay] = sids_stay[good]
                serial[ok_stay] = serials_stay[good]
                for j, sid in zip(stay[empty].tolist(),
                                  sids_stay[empty].tolist()):
                    errors.append((j, "no_servers", (sid,)))
            else:
                dest[stay] = sids_stay
                serial[stay] = serials_stay
            if not improved.any():
                break
            moved = active[improved]
            rows_m = rows[improved]
            best_m = best[improved]
        else:
            moved = active
            rows_m = rows
            best_m = best
        overlay[moved] += 1
        kinds = flat.kind[rows_m, best_m]
        nrows = flat.nrow[rows_m, best_m]
        phys = kinds == 0
        if phys.all():
            pj, prow = moved, nrows
            vl = None
        elif not phys.any():
            pj = prow = None
            vl = ~phys
        else:
            pj = moved[phys]
            prow = nrows[phys]
            vl = ~phys
        phys_ok: Optional[np.ndarray] = None
        if pj is not None and pj.size:
            # Engine counts a greedy forward at decision time, before
            # the unknown-neighbor/hop-bound checks.
            g_arr[pj] += 1
            walked = hops[pj] + 1
            if prow.min() >= 0 and not walked.max() > max_hops:
                current[pj] = prow
                hops[pj] = walked
                segs.append((0, pj, flat.sid[prow]))
                tlen[pj] += 1
                phys_ok = pj
            else:
                # Unknown neighbor or hop-bound breach somewhere in
                # this wave: take the exact per-request path.
                current[pj] = np.maximum(prow, 0)
                hops[pj] = walked
                src_rows = rows_m[phys] if vl is not None else rows_m
                nids_all = flat.nid[rows_m, best_m]
                pn = nids_all[phys] if vl is not None else nids_all
                ok: List[int] = []
                step_idx: List[int] = []
                step_sid: List[int] = []
                exceeded = (walked > max_hops).tolist()
                for j, src, nxt, nrow, exc in zip(
                        pj.tolist(), flat.sid[src_rows].tolist(),
                        pn.tolist(), prow.tolist(), exceeded):
                    if nrow < 0:
                        errors.append((j, "unknown_fwd", (src, nxt)))
                        continue
                    step_idx.append(j)
                    step_sid.append(nxt)
                    if exc:
                        hop_failures.append(j)
                    else:
                        ok.append(j)
                if step_idx:
                    idx_arr = np.asarray(step_idx, dtype=np.int64)
                    segs.append((0, idx_arr,
                                 np.asarray(step_sid, dtype=np.int64)))
                    tlen[idx_arr] += 1
                phys_ok = np.asarray(ok, dtype=np.int64)
        vl_ok: Optional[np.ndarray] = None
        if vl is not None:
            vj = moved[vl]
            if vj.size:
                # Engine counts the vl start at decision time, before
                # chain resolution can fail.
                v_arr[vj] += 1
                rows_v = rows_m[vl]
                best_v = best_m[vl]
                coff = flat.chain_off[rows_v, best_v]
                clen = flat.chain_len[rows_v, best_v]
                cerr = flat.chain_err[rows_v, best_v]
                nrow_v = nrows[vl]
                good = cerr < 0
                if not good.all():
                    for j, ei in zip(vj[~good].tolist(),
                                     cerr[~good].tolist()):
                        errors.append(
                            (j, "msg", (flat.chain_errors[ei],)))
                unknown_dest = good & (nrow_v < 0)
                if unknown_dest.any():
                    # The scalar walker would key its states dict with
                    # the unknown destination next iteration; surface
                    # the same KeyError for the first such request.
                    first = int(np.flatnonzero(unknown_dest)[0])
                    raise KeyError(int(flat.nid[rows_v, best_v][first]))
                budget = hops[vj] + clen
                ok_m = good & (budget <= max_hops)
                exc_m = good & ~ok_m
                if ok_m.any():
                    oj = vj[ok_m]
                    segs.append((1, oj, coff[ok_m], clen[ok_m],
                                 flat.chain_sids))
                    tlen[oj] += clen[ok_m]
                    hops[oj] = budget[ok_m]
                    current[oj] = nrow_v[ok_m]
                    r_arr[oj] += clen[ok_m] - 1
                    vl_ok = oj
                if exc_m.any():
                    # The scalar walker appends relays one by one and
                    # raises at the breaching step — keep exactly the
                    # relays up to and including the breach.
                    ej = vj[exc_m]
                    part = max_hops - hops[ej] + 1
                    segs.append((1, ej, coff[exc_m], part,
                                 flat.chain_sids))
                    tlen[ej] += part
                    hops[ej] += part
                    r_arr[ej] += part - 1
                    hop_failures.extend(ej.tolist())
        parts = []
        if phys_ok is not None and phys_ok.size:
            parts.append(phys_ok)
        if vl_ok is not None and vl_ok.size:
            parts.append(vl_ok)
        if len(parts) == 2:
            active = np.concatenate(parts)
        elif parts:
            active = parts[0]
        else:
            active = np.empty(0, dtype=np.int64)
    packed.finish(entries_arr, segs)
    return packed


class CompiledRouter:
    """Epoch-scoped compiled form of a switch plane.

    Parameters
    ----------
    switches:
        The live data-plane switches (the compiled state snapshots
        their positions/candidates; forwarding *tables* are referenced,
        not copied, so extension rewrites are always current).
    """

    def __init__(self, switches: Dict[int, GredSwitch]) -> None:
        self._states: Dict[int, _CompiledSwitch] = {
            sid: _CompiledSwitch(sw) for sid, sw in switches.items()
        }
        for state in self._states.values():
            # Lets the wave router skip the unknown-neighbor check in
            # its hot loop (it stays exact: a False flag falls back to
            # the per-candidate check the scalar walker performs).
            state.neighbors_known = all(
                nid in self._states for nid in state.cand_nid.tolist())
        self._default_max_hops = 4 * len(switches) + 16
        # (switch, dest) -> relay chain (first relay ... dest).
        self._chains: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        # Dense plane for route_batch, built on first use.
        self._flat: Optional[_FlatPlane] = None
        #: Per-switch compilations so far (observability: a scoped
        #: patch after a join should grow this by a neighborhood, not
        #: by the network).
        self.switch_compiles = len(switches)
        #: Scoped :meth:`patch` applications.
        self.patch_events = 0
        #: Waves dispatched by the most recent :meth:`route_batch`
        #: (telemetry: proof the vectorized path ran, and the divisor
        #: for per-wave cost estimates).
        self.last_batch_waves = 0
        #: ``(greedy_forwards, vl_starts, vl_relays)`` of the most
        #: recent :meth:`route` call — the per-request decision mix the
        #: forwarding engine counts one event at a time, recovered here
        #: so batch telemetry can report the identical counters.
        #: Updated even when the route fails (partial counts up to the
        #: failure, exactly like the engine's event-time increments).
        self.last_route_stats: Tuple[int, int, int] = (0, 0, 0)
        #: Per-request ``(greedy, vl_starts, vl_relays)`` of the most
        #: recent :meth:`route_batch`, aligned with its results.
        self.last_batch_stats: List[Optional[Tuple[int, int, int]]] = []

    def patch(self, switches: Dict[int, GredSwitch],
              touched, removed=()) -> None:
        """Recompile only the ``touched`` switches' state in place.

        ``removed`` switches are dropped.  Everything derived from the
        affected switches is invalidated selectively: relay chains
        whose source, destination or relays intersect them, the dense
        wave plane's rows (or the whole plane when membership changed
        — its row numbering is positional), and the default hop bound.
        Untouched switches keep their compiled rows, which is what
        makes a join's fast-path cost neighborhood-sized.
        """
        states = self._states
        membership_changed = False
        for sid in removed:
            if states.pop(sid, None) is not None:
                membership_changed = True
        for sid in sorted(touched):
            switch = switches.get(sid)
            if switch is None:
                if states.pop(sid, None) is not None:
                    membership_changed = True
                continue
            if sid not in states:
                membership_changed = True
            states[sid] = _CompiledSwitch(switch)
            self.switch_compiles += 1
        self._default_max_hops = 4 * len(states) + 16
        affected = set(touched) | set(removed)
        if self._chains:
            self._chains = {
                key: chain for key, chain in self._chains.items()
                if key[0] not in affected and key[1] not in affected
                and not affected.intersection(chain)
            }
        if membership_changed:
            for state in states.values():
                state.neighbors_known = all(
                    nid in states for nid in state.cand_nid.tolist())
            self._flat = None
        else:
            for sid in touched:
                state = states[sid]
                state.neighbors_known = all(
                    nid in states for nid in state.cand_nid.tolist())
            if self._flat is not None:
                self._flat = self._patched_flat(touched)
                if self._flat is not None:
                    # Patched rows may carry different virtual-link
                    # candidates and the chain cache was pruned above;
                    # rebuild the CSR arrays on next use.
                    self._flat.invalidate_chains()
        self.patch_events += 1

    def _patched_flat(self, touched) -> Optional[_FlatPlane]:
        """Update the dense plane's rows for ``touched`` in place, or
        return ``None`` (rebuild on next use) when a new candidate list
        no longer fits the padded width."""
        flat = self._flat
        width = flat.cx.shape[1]
        rows = {sid: r for r, sid in
                enumerate(flat.sid_sorted.tolist())}
        for sid in touched:
            r = rows[sid]
            state = self._states[sid]
            if len(state.cands) > width:
                return None
            flat.ox[r] = state.x
            flat.oy[r] = state.y
            flat.in_dt[r] = state.in_dt
            flat.ns[r] = max(state.num_servers, 0)
            flat.cx[r, :] = np.inf
            flat.cy[r, :] = np.inf
            flat.kind[r, :] = 2
            flat.nid[r, :] = -1
            flat.nrow[r, :] = -1
            for c, (x, y, kind, nid) in enumerate(state.cands):
                flat.cx[r, c] = x
                flat.cy[r, c] = y
                flat.kind[r, c] = kind
                flat.nid[r, c] = nid
                flat.nrow[r, c] = rows.get(nid, -1)
        return flat

    # ------------------------------------------------------------------
    def _chain(self, source: int, dest: int) -> Tuple[int, ...]:
        """Relay switches from ``source``'s successor through ``dest``
        for the virtual link toward DT neighbor ``dest``."""
        cached = self._chains.get((source, dest))
        if cached is not None:
            return cached
        entry = self._states[source].table.virtual_entry(dest)
        if entry is None or entry.succ is None:
            raise ForwardingError(
                f"switch {source} has no virtual-link entry "
                f"toward DT neighbor {dest}"
            )
        chain = [entry.succ]
        current = entry.succ
        bound = self._default_max_hops
        while current != dest:
            if current not in self._states:
                raise ForwardingError(
                    f"switch {chain[-2] if len(chain) > 1 else source} "
                    f"forwarded to unknown switch {current}"
                )
            relay = self._states[current].table.virtual_entry(dest)
            if relay is None or relay.succ is None:
                raise ForwardingError(
                    f"switch {current} has no relay entry toward "
                    f"virtual-link destination {dest}"
                )
            current = relay.succ
            chain.append(current)
            if len(chain) > bound:
                raise ForwardingError(
                    f"virtual link {source}->{dest} does not "
                    f"terminate within {bound} relays"
                )
        result = tuple(chain)
        self._chains[(source, dest)] = result
        return result

    def route(self, entry: int, data_id: str, px: float, py: float,
              serial_u64: int, max_hops: Optional[int] = None
              ) -> Tuple[List[int], int, int, int]:
        """Route one request; returns ``(trace, overlay_hops,
        destination_switch, primary_serial)``.

        Byte-identical to ``route_packet`` with no faults/tracing: the
        trace lists every switch visited (entry first), the hop bound
        raises the same error, and the primary serial is the
        ``H(d) mod s`` choice at the delivery switch.
        """
        states = self._states
        if entry not in states:
            raise ForwardingError(f"unknown entry switch {entry}")
        if max_hops is None:
            max_hops = self._default_max_hops
        trace = [entry]
        current = entry
        overlay = 0
        hops = 0
        # Decision-mix counts, kept event-time-faithful to the
        # reference engine (a greedy/vl-start counts at decision time,
        # a relay before its step's hop-bound check) so partial counts
        # on a failed route match the engine's too.
        stats = [0, 0, 0]  # greedy, vl_starts, vl_relays
        try:
            while True:
                state = states[current]
                if not state.in_dt:
                    raise ForwardingError(
                        f"greedy stage reached relay-only switch "
                        f"{current}"
                    )
                ox = state.x
                oy = state.y
                dx = ox - px
                dy = oy - py
                # Best strictly-improving candidate under the scalar
                # sort key ((d^2, x, y), kind, nid).  Seeding "best"
                # with the switch's own key and a sentinel kind is
                # exact because participant positions are deduplicated
                # — no candidate can tie the full (d^2, x, y) key of a
                # distinct switch.
                bd2 = dx * dx + dy * dy
                bx = ox
                by = oy
                bkind = 2
                bnid = -1
                for (cx, cy, kind, nid) in state.cands:
                    dx = cx - px
                    dy = cy - py
                    d2 = dx * dx + dy * dy
                    if d2 > bd2:
                        continue
                    if d2 == bd2:
                        if cx > bx:
                            continue
                        if cx == bx:
                            if cy > by:
                                continue
                            if cy == by and (kind > bkind or (
                                    kind == bkind and nid >= bnid)):
                                continue
                    bd2 = d2
                    bx = cx
                    by = cy
                    bkind = kind
                    bnid = nid
                if bkind == 2:
                    # No neighbor improves: deliver locally.
                    if state.num_servers <= 0:
                        raise ForwardingError(
                            f"switch {current} must deliver "
                            f"{data_id!r} but has no attached servers"
                        )
                    return (trace, overlay, current,
                            int(serial_u64 % state.num_servers))
                overlay += 1
                if bkind == 0:
                    stats[0] += 1
                    if bnid not in states:
                        raise ForwardingError(
                            f"switch {current} forwarded to unknown "
                            f"switch {bnid}"
                        )
                    trace.append(bnid)
                    current = bnid
                    hops += 1
                    if hops > max_hops:
                        raise ForwardingError(
                            f"hop bound {max_hops} exceeded routing "
                            f"{data_id!r} (trace {trace})"
                        )
                else:
                    stats[1] += 1
                    for step, relay in enumerate(
                            self._chain(current, bnid)):
                        if step:
                            stats[2] += 1
                        trace.append(relay)
                        hops += 1
                        if hops > max_hops:
                            raise ForwardingError(
                                f"hop bound {max_hops} exceeded "
                                f"routing {data_id!r} (trace {trace})"
                            )
                    current = bnid
        finally:
            self.last_route_stats = (stats[0], stats[1], stats[2])

    # ------------------------------------------------------------------
    def route_batch(self, entries: Sequence[int],
                    data_ids: Sequence[str],
                    pxs: np.ndarray, pys: np.ndarray,
                    serial_u64s: np.ndarray,
                    max_hops: Optional[int] = None
                    ) -> List[RouteOutcome]:
        """Route many requests in switch-grouped waves.

        Each wave groups the in-flight requests by their current
        switch and evaluates that switch's candidate set against all
        of them with one vectorized pass; the per-request winner and
        strict-improvement test replicate :meth:`route`'s float
        arithmetic and lexicographic tie-breaks exactly, so every
        outcome is byte-identical to the scalar walk.  The walk itself
        is the pure-array :func:`_route_batch_packed` program — trace
        assembly, relay chains and straggler continuation all stay in
        numpy — and this wrapper materializes its packed result.

        Returns one outcome per request, in order: the same
        ``(trace, overlay_hops, destination_switch, primary_serial)``
        tuple :meth:`route` produces, or the :class:`ForwardingError`
        it would have raised (the caller decides whether to raise).
        """
        if max_hops is None:
            max_hops = self._default_max_hops
        packed = self.route_batch_packed(
            np.asarray(entries, dtype=np.int64),
            pxs, pys, serial_u64s, max_hops)
        self.last_batch_waves = packed.waves
        self.last_batch_stats = packed.stats_list()
        return packed.materialize(data_ids, max_hops)

    def route_batch_packed(self, entries_arr: np.ndarray,
                           pxs: np.ndarray, pys: np.ndarray,
                           serial_u64s: np.ndarray,
                           max_hops: int) -> _PackedRoutes:
        """Array-form batch walk over the dense plane — the unit the
        shared-memory worker shards execute.  Returns the raw
        :class:`_PackedRoutes` without touching the router's
        last-batch telemetry (the caller owns aggregation)."""
        flat = self._ensure_flat()
        return _route_batch_packed(
            flat, entries_arr,
            np.asarray(pxs, dtype=np.float64),
            np.asarray(pys, dtype=np.float64),
            np.asarray(serial_u64s, dtype=np.uint64),
            max_hops)

    def _ensure_flat(self) -> _FlatPlane:
        """The dense plane with relay-chain CSR arrays attached,
        building either lazily (chains resolve through the epoch's
        pruned chain cache, so a scoped patch recomputes only what it
        invalidated)."""
        flat = self._flat
        if flat is None:
            flat = self._flat = _FlatPlane(self._states)
        if not flat.chains_built:
            flat.attach_chains(self._chain)
        return flat
