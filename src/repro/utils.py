"""Small shared utilities.

Currently: seedable-randomness threading.  Every optional ``rng``
parameter in the repo funnels through :func:`rng` so that omitting it
never silently falls back to an *unseeded* ``np.random.default_rng()``
(which breaks run-to-run reproducibility).  Instead, the fallback is a
process-global seeded stream: successive calls draw successive values
(so unseeded workloads still spread load), but two runs of the same
program see the same sequence.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Anything coercible to a generator: ``None`` (the global seeded
#: stream), an integer seed, or an existing generator.
RandomSource = Union[None, int, np.random.Generator]

#: Seed of the process-global stream (reset with :func:`reseed`).
DEFAULT_SEED = 0

_global_rng = np.random.default_rng(DEFAULT_SEED)


def rng(source: RandomSource = None) -> np.random.Generator:
    """Coerce ``source`` to a :class:`numpy.random.Generator`.

    * ``None`` — the process-global seeded stream (reproducible across
      runs, varied within a run);
    * ``int`` — a fresh generator seeded with that value;
    * a ``Generator`` — returned unchanged.

    >>> import numpy as np
    >>> g = np.random.default_rng(3)
    >>> rng(g) is g
    True
    >>> reseed(7) is rng()
    True
    """
    if source is None:
        return _global_rng
    if isinstance(source, np.random.Generator):
        return source
    return np.random.default_rng(source)


def reseed(seed: Optional[int] = DEFAULT_SEED) -> np.random.Generator:
    """Reset the process-global stream (tests / CLI entry points call
    this to pin unseeded randomness) and return the new generator."""
    global _global_rng
    _global_rng = np.random.default_rng(seed)
    return _global_rng
