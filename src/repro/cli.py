"""Command-line interface for the GRED reproduction.

File-backed workflows over a saved deployment snapshot::

    gred generate --switches 30 --servers 4 -o net.json
    gred place -n net.json videos/a.mp4 --payload '"h264..."' --entry 0
    gred retrieve -n net.json videos/a.mp4 --entry 7
    gred stats -n net.json [--json]
    gred extend -n net.json 4 0
    gred experiment fig9a [--metrics-out m.json]
    gred metrics -n net.json            # or: --from m.json [--json]
    gred chaos --switches 30 --copies 3 [--plan plan.json]
               [--control-plan cp.json] [--json]
    gred reconcile -n net.json [--max-divergence 0]   # anti-entropy
    gred reconcile [--quick] [-o CONVERGENCE_report.json]
                   [--max-divergence 0]   # churn-under-loss experiment
    gred scrub -n net.json [--max-divergence 0]   # storage anti-entropy
    gred scrub [--quick] [-o DURABILITY_report.json]
               [--max-divergence 0]   # crash+partition+delete churn
    gred loadtest [--quick] [--min-goodput 0.99] [-o SLO_report.json]
                  [--trace-out traces.jsonl [--trace-sample 0.05]]
    gred trace -n net.json [data_id] [--summary]
               [--spans-out t.jsonl] [--chrome-out t.json]
    gred bench [--quick] [-o BENCH_micro.json]
               [--max-telemetry-overhead 0.15]
    gred churn [--sizes 50 100 200 400] [--max-touched 25]
               [--regions 4 --max-foreign-touched 0]
    gred federate [--quick] [-o FEDERATION_report.json]
                  [--max-foreign-touched 0]

(Installed as the ``gred`` console script; also runnable via
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gred",
        description="GRED: data placement/retrieval for edge computing "
                    "(ICDCS'19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate",
                         help="generate a network and save a snapshot")
    gen.add_argument("--switches", type=int, default=20)
    gen.add_argument("--min-degree", type=int, default=3)
    gen.add_argument("--servers", type=int, default=4,
                     help="servers per switch")
    gen.add_argument("--cvt-iterations", type=int, default=50)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)

    place = sub.add_parser("place", help="place a data item")
    place.add_argument("-n", "--network", required=True)
    place.add_argument("data_id")
    place.add_argument("--payload", default=None,
                       help="JSON-encoded payload")
    place.add_argument("--entry", type=int, default=None)
    place.add_argument("--copies", type=int, default=1)

    retrieve = sub.add_parser("retrieve", help="retrieve a data item")
    retrieve.add_argument("-n", "--network", required=True)
    retrieve.add_argument("data_id")
    retrieve.add_argument("--entry", type=int, default=None)
    retrieve.add_argument("--copies", type=int, default=1)

    delete = sub.add_parser("delete", help="delete a data item")
    delete.add_argument("-n", "--network", required=True)
    delete.add_argument("data_id")
    delete.add_argument("--copies", type=int, default=1)

    stats = sub.add_parser("stats", help="deployment statistics")
    stats.add_argument("-n", "--network", required=True)
    stats.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of text")
    stats.add_argument("--sweep", action="store_true",
                       help="run one OverloadManager sweep and report "
                            "its extend/retract actions (persists any "
                            "range changes back to the snapshot)")
    stats.add_argument("--high-watermark", type=float, default=0.85,
                       help="utilization that triggers an extension "
                            "during --sweep")
    stats.add_argument("--low-watermark", type=float, default=0.4,
                       help="utilization that allows a retraction "
                            "during --sweep")

    metrics = sub.add_parser(
        "metrics",
        help="render telemetry as Prometheus text (or JSON)")
    metrics.add_argument("-n", "--network", default=None,
                         help="probe a snapshot: restore it with "
                              "telemetry enabled and report the "
                              "resulting registry")
    metrics.add_argument("--from", dest="from_file", default=None,
                         help="render a JSON dump previously written "
                              "by --metrics-out")
    metrics.add_argument("--json", action="store_true",
                         help="emit the JSON dump instead of "
                              "Prometheus text")

    extend = sub.add_parser("extend",
                            help="activate a range extension")
    extend.add_argument("-n", "--network", required=True)
    extend.add_argument("switch", type=int)
    extend.add_argument("serial", type=int)

    retract = sub.add_parser("retract",
                             help="retract a range extension")
    retract.add_argument("-n", "--network", required=True)
    retract.add_argument("switch", type=int)
    retract.add_argument("serial", type=int)

    verify = sub.add_parser(
        "verify", help="audit installed data-plane state")
    verify.add_argument("-n", "--network", required=True)

    render = sub.add_parser(
        "render", help="render the virtual space to an SVG file")
    render.add_argument("-n", "--network", required=True)
    render.add_argument("-o", "--output", required=True)
    render.add_argument("--voronoi", action="store_true",
                        help="draw exact Voronoi cell boundaries")
    render.add_argument("--data", nargs="*", default=[],
                        help="data ids to mark as crosses")
    render.add_argument("--route", default=None,
                        help="highlight the route of this data id")
    render.add_argument("--entry", type=int, default=None,
                        help="entry switch for --route")

    trace = sub.add_parser(
        "trace",
        help="explain a request's forwarding decisions, or record "
             "request spans and join them with telemetry")
    trace.add_argument("-n", "--network", required=True)
    trace.add_argument("data_id", nargs="?", default=None,
                       help="item to trace (optional with --summary / "
                            "--spans-out / --chrome-out: a sampled "
                            "workload over stored items is traced "
                            "instead)")
    trace.add_argument("--entry", type=int, default=None,
                       help="entry switch (default: first switch)")
    trace.add_argument("--summary", action="store_true",
                       help="print hop-histogram quantiles joined "
                            "with the recorded exemplar traces")
    trace.add_argument("--spans-out", default=None, metavar="FILE",
                       help="write recorded spans as JSONL")
    trace.add_argument("--chrome-out", default=None, metavar="FILE",
                       help="write recorded spans as a Chrome "
                            "trace-event file (chrome://tracing, "
                            "Perfetto)")
    trace.add_argument("--sample-rate", type=float, default=1.0,
                       help="head-based trace sampling rate")
    trace.add_argument("--requests", type=int, default=32,
                       help="stored items to retrieve when no data_id "
                            "is given")
    trace.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser(
        "experiment", help="run a paper-figure experiment")
    experiment.add_argument(
        "figure",
        choices=["fig7a", "fig7b", "fig8", "fig9a", "fig9b", "fig9c",
                 "fig9d", "fig10a", "fig10b", "fig10c", "ablations",
                 "extensions"],
    )
    experiment.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="run with telemetry enabled and write the JSON metrics "
             "dump next to the results")

    chaos = sub.add_parser(
        "chaos",
        help="replay a workload under injected faults and report "
             "availability / recovery")
    chaos.add_argument("--switches", type=int, default=30)
    chaos.add_argument("--min-degree", type=int, default=3)
    chaos.add_argument("--servers", type=int, default=2,
                       help="servers per switch")
    chaos.add_argument("--cvt-iterations", type=int, default=20)
    chaos.add_argument("--items", type=int, default=60)
    chaos.add_argument("--copies", type=int, default=3)
    chaos.add_argument("--requests", type=int, default=120)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--plan", default=None, metavar="FILE",
                       help="JSON fault plan; default crashes one "
                            "random switch mid-trace")
    chaos.add_argument("--control-plan", default=None, metavar="FILE",
                       help="JSON fault plan of control_* events that "
                            "degrade the southbound channel for the "
                            "whole run; the harness finishes with an "
                            "anti-entropy reconcile")
    chaos.add_argument("--duration", type=float, default=1.0,
                       help="request window in simulated seconds")
    chaos.add_argument("--detection-interval", type=float, default=0.1,
                       help="heartbeat period of the failure detector")
    chaos.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    chaos.add_argument("--min-availability", type=float, default=None,
                       metavar="FRACTION",
                       help="exit nonzero when recovered availability "
                            "falls below this threshold (CI gate)")

    loadtest = sub.add_parser(
        "loadtest",
        help="drive open-loop arrivals through the resilience "
             "pipeline and report goodput / shed rate / latency / "
             "SLO attainment")
    loadtest.add_argument("--switches", type=int, default=200)
    loadtest.add_argument("--entry-switches", type=int, default=20,
                          help="access gateways policed by admission "
                               "control")
    loadtest.add_argument("--servers", type=int, default=4,
                          help="servers per switch")
    loadtest.add_argument("--min-degree", type=int, default=3)
    loadtest.add_argument("--cvt-iterations", type=int, default=20)
    loadtest.add_argument("--items", type=int, default=1000)
    loadtest.add_argument("--copies", type=int, default=2)
    loadtest.add_argument("--requests", type=int, default=8000,
                          help="requests per load point")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--load-factors", type=float, nargs="+",
                          default=None, metavar="FACTOR",
                          help="offered load as fractions of capacity "
                               "(default: 0.8 1.5)")
    loadtest.add_argument("--deadline", type=float, default=0.25,
                          help="per-request SLO deadline in seconds")
    loadtest.add_argument("--rate", type=float, default=200.0,
                          help="admission tokens/second per entry "
                               "switch")
    loadtest.add_argument("--burst", type=float, default=40.0,
                          help="admission token-bucket capacity")
    loadtest.add_argument("--queue-limit", type=int, default=32,
                          help="pending-queue bound per entry switch")
    loadtest.add_argument("--plan", default=None, metavar="FILE",
                          help="JSON fault plan replayed on the "
                               "arrival clock")
    loadtest.add_argument("--quick", action="store_true",
                          help="tiny CI smoke preset (overrides the "
                               "workload-shape flags)")
    loadtest.add_argument("-o", "--output", default="SLO_report.json",
                          metavar="FILE",
                          help="report path (default: SLO_report.json)")
    loadtest.add_argument("--json", action="store_true",
                          help="print the full report instead of the "
                               "summary")
    loadtest.add_argument("--min-goodput", type=float, default=None,
                          metavar="FRACTION",
                          help="exit nonzero when goodput at any "
                               "at-or-below-capacity point falls below "
                               "this threshold (CI gate)")
    loadtest.add_argument("--min-attainment", type=float, default=None,
                          metavar="FRACTION",
                          help="exit nonzero when SLO attainment at "
                               "any point falls below this threshold "
                               "(CI gate)")
    loadtest.add_argument("--trace-out", default=None, metavar="FILE",
                          help="record sampled request traces and "
                               "write them as JSONL spans")
    loadtest.add_argument("--trace-sample", type=float, default=None,
                          metavar="RATE",
                          help="head-based trace sampling rate "
                               "(default 0.05 when --trace-out is "
                               "given)")

    bench = sub.add_parser(
        "bench",
        help="benchmark the request fast path (scalar vs batch) and "
             "write BENCH_micro.json")
    bench.add_argument("--switches", type=int, default=200)
    bench.add_argument("--requests", type=int, default=10_000)
    bench.add_argument("--copies", type=int, default=1)
    bench.add_argument("--servers", type=int, default=4,
                       help="servers per switch")
    bench.add_argument("--min-degree", type=int, default=3)
    bench.add_argument("--cvt-iterations", type=int, default=20)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing rounds; throughput is the best round")
    bench.add_argument("--chunks", type=int, default=1,
                       help="batch calls per round (batch p50/p99 are "
                            "per-call amortized)")
    bench.add_argument("--quick", action="store_true",
                       help="tiny CI smoke preset (overrides the "
                            "workload-shape flags)")
    bench.add_argument("-o", "--output", default="BENCH_micro.json",
                       metavar="FILE",
                       help="report path (default: BENCH_micro.json)")
    bench.add_argument("--json", action="store_true",
                       help="print the full report instead of the "
                            "summary")
    bench.add_argument("--max-telemetry-overhead", type=float,
                       default=None, metavar="FRACTION",
                       help="exit nonzero when enabling telemetry "
                            "slows the batch path by more than this "
                            "fraction, or forces the scalar fallback "
                            "(CI gate)")
    bench.add_argument("--scaling", action="store_true",
                       help="additionally run the switches x batch x "
                            "workers scaling sweep (replica fan-out, "
                            "worker-sharded routing) and attach it to "
                            "the report; exits nonzero when the sweep "
                            "hits the scalar fallback or an "
                            "equivalence mismatch")
    bench.add_argument("--scaling-switches", type=int, nargs="+",
                       default=None, metavar="N",
                       help="topology sizes for the scaling sweep "
                            "(default: 100 200)")
    bench.add_argument("--scaling-batches", type=int, nargs="+",
                       default=None, metavar="K",
                       help="batch sizes for the scaling sweep "
                            "(default: 2000 10000)")
    bench.add_argument("--scaling-workers", type=int, nargs="+",
                       default=None, metavar="W",
                       help="worker counts for the scaling sweep; 1 = "
                            "in-process (default: 1 2 4)")
    bench.add_argument("--scaling-copies", type=int, default=None,
                       metavar="C",
                       help="replica fan-out for the scaling sweep "
                            "(default: 2)")

    churn = sub.add_parser(
        "churn",
        help="measure per-join control traffic (delta vs full "
             "reinstall) across network sizes and write "
             "CHURN_report.json")
    churn.add_argument("--sizes", type=int, nargs="+",
                       default=[50, 100, 200, 400],
                       help="network sizes (switch counts) to sweep")
    churn.add_argument("--joins", type=int, default=5,
                       help="node joins per size")
    churn.add_argument("--servers", type=int, default=2,
                       help="servers per switch")
    churn.add_argument("--cvt-iterations", type=int, default=30)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("-o", "--output", default="CHURN_report.json",
                       metavar="FILE",
                       help="report path (default: CHURN_report.json)")
    churn.add_argument("--json", action="store_true",
                       help="print the full report instead of the "
                            "summary table")
    churn.add_argument("--max-touched", type=float, default=None,
                       metavar="N",
                       help="exit nonzero when the average switches "
                            "touched per join exceeds N at any size "
                            "(CI gate for delta locality)")
    churn.add_argument("--regions", type=int, default=1,
                       help="shard the control plane into this many "
                            "regions (metro topology); joins then "
                            "round-robin across regions and the "
                            "report adds a per-region touched "
                            "breakdown")
    churn.add_argument("--max-foreign-touched", type=float, default=0,
                       metavar="N",
                       help="exit nonzero when a join touches more "
                            "than N switches outside its home region "
                            "(cross-shard locality gate; default 0, "
                            "only meaningful with --regions > 1)")

    federate = sub.add_parser(
        "federate",
        help="federation scaling experiment: per-shard recompute "
             "time, per-join cost and cross-region traffic as the "
             "switch count grows at constant region size; writes "
             "FEDERATION_report.json")
    federate.add_argument("--sizes", type=int, nargs="+",
                          default=None, metavar="N",
                          help="total switch counts to sweep "
                               "(default: 1000 5000)")
    federate.add_argument("--per-region", type=int, default=None,
                          metavar="N",
                          help="switches per region (default: 250)")
    federate.add_argument("--servers", type=int, default=2,
                          help="servers per switch")
    federate.add_argument("--cvt-iterations", type=int, default=8)
    federate.add_argument("--joins", type=int, default=8,
                          help="switch joins, round-robin across "
                               "regions")
    federate.add_argument("--requests", type=int, default=256,
                          help="data items placed and retrieved "
                               "through the overlay")
    federate.add_argument("--copies", type=int, default=2)
    federate.add_argument("--seed", type=int, default=0)
    federate.add_argument("--quick", action="store_true",
                          help="tiny CI smoke preset (overrides the "
                               "workload-shape flags)")
    federate.add_argument("-o", "--output",
                          default="FEDERATION_report.json",
                          metavar="FILE",
                          help="report path (default: "
                               "FEDERATION_report.json)")
    federate.add_argument("--json", action="store_true",
                          help="print the full report instead of the "
                               "summary table")
    federate.add_argument("--max-foreign-touched", type=float,
                          default=0, metavar="N",
                          help="exit nonzero when churn ships more "
                               "than N southbound messages into "
                               "foreign regions (default 0: perfect "
                               "isolation)")

    reconcile = sub.add_parser(
        "reconcile",
        help="anti-entropy reconcile of a snapshot (-n), or the "
             "churn-under-loss convergence experiment writing "
             "CONVERGENCE_report.json")
    reconcile.add_argument("-n", "--network", default=None,
                           help="snapshot to reconcile in place "
                                "(omit to run the convergence "
                                "experiment instead)")
    reconcile.add_argument("--switches", type=int, default=200)
    reconcile.add_argument("--events", type=int, default=30,
                           help="churn events (joins/leaves/link "
                                "flaps) to drive under loss")
    reconcile.add_argument("--drop", type=float, default=0.2,
                           help="southbound drop probability")
    reconcile.add_argument("--dup", type=float, default=0.05,
                           help="southbound duplication probability")
    reconcile.add_argument("--delay", type=float, default=0.0,
                           help="southbound delayed-delivery "
                                "probability")
    reconcile.add_argument("--reorder-window", type=int, default=4,
                           help="southbound reorder window (1 = "
                                "in order)")
    reconcile.add_argument("--servers", type=int, default=2,
                           help="servers per switch")
    reconcile.add_argument("--cvt-iterations", type=int, default=15)
    reconcile.add_argument("--seed", type=int, default=0)
    reconcile.add_argument("--max-sweeps", type=int, default=12,
                           help="anti-entropy sweep budget")
    reconcile.add_argument("--quick", action="store_true",
                           help="tiny CI smoke preset (overrides the "
                                "workload-shape flags)")
    reconcile.add_argument("-o", "--output",
                           default="CONVERGENCE_report.json",
                           metavar="FILE",
                           help="experiment report path (default: "
                                "CONVERGENCE_report.json)")
    reconcile.add_argument("--json", action="store_true",
                           help="print the full report instead of the "
                                "summary")
    reconcile.add_argument("--max-divergence", type=int, default=None,
                           metavar="N",
                           help="exit nonzero when more than N "
                                "switches stay divergent after the "
                                "reconcile (CI gate; the experiment "
                                "mode additionally requires the "
                                "install_all_rules oracle to match)")

    scrub = sub.add_parser(
        "scrub",
        help="storage anti-entropy scrub of a snapshot (-n), or the "
             "crash+partition+delete durability experiment writing "
             "DURABILITY_report.json")
    scrub.add_argument("-n", "--network", default=None,
                       help="snapshot to scrub in place (omit to run "
                            "the durability experiment instead)")
    scrub.add_argument("--switches", type=int, default=40)
    scrub.add_argument("--servers", type=int, default=2,
                       help="servers per switch")
    scrub.add_argument("--items", type=int, default=120,
                       help="items seeded before the fault schedule")
    scrub.add_argument("--copies", type=int, default=2,
                       help="replicas per item")
    scrub.add_argument("--ops", type=int, default=80,
                       help="delete-heavy write ops driven through "
                            "the partitioned network")
    scrub.add_argument("--crash-fraction", type=float, default=0.2,
                       help="fraction of edge servers crashed before "
                            "the partition window")
    scrub.add_argument("--partition-fraction", type=float,
                       default=0.3,
                       help="fraction of switches split away during "
                            "the write workload")
    scrub.add_argument("--late-crashes", type=int, default=3,
                       help="extra crashes inside the partition "
                            "window")
    scrub.add_argument("--cvt-iterations", type=int, default=10)
    scrub.add_argument("--seed", type=int, default=0)
    scrub.add_argument("--max-sweeps", type=int, default=6,
                       help="scrub sweep budget")
    scrub.add_argument("--quick", action="store_true",
                       help="tiny CI smoke preset (overrides the "
                            "workload-shape flags)")
    scrub.add_argument("-o", "--output",
                       default="DURABILITY_report.json",
                       metavar="FILE",
                       help="experiment report path (default: "
                            "DURABILITY_report.json)")
    scrub.add_argument("--json", action="store_true",
                       help="print the full report instead of the "
                            "summary")
    scrub.add_argument("--max-divergence", type=int, default=None,
                       metavar="N",
                       help="exit nonzero when more than N "
                            "(server, hash-range) pairs stay "
                            "divergent after the scrub (CI gate; "
                            "the experiment mode additionally "
                            "requires the fault-free oracle to "
                            "match: zero resurrected, lost or "
                            "stale items)")
    return parser


def _load(path: str):
    from .io import load_network

    return load_network(path)


def _save(net, path: str) -> None:
    from .io import save_network

    save_network(net, path)


def _cmd_generate(args) -> int:
    from . import GredNetwork, attach_uniform, brite_waxman_graph

    topology, _ = brite_waxman_graph(
        args.switches, min_degree=args.min_degree,
        rng=np.random.default_rng(args.seed),
    )
    servers = attach_uniform(topology.nodes(),
                             servers_per_switch=args.servers)
    net = GredNetwork(topology, servers,
                      cvt_iterations=args.cvt_iterations,
                      seed=args.seed)
    _save(net, args.output)
    print(f"generated {args.switches} switches x {args.servers} servers "
          f"-> {args.output}")
    return 0


def _cmd_place(args) -> int:
    net = _load(args.network)
    payload = json.loads(args.payload) if args.payload else None
    result = net.place(args.data_id, payload=payload,
                       entry_switch=args.entry, copies=args.copies,
                       rng=np.random.default_rng(0))
    _save(net, args.network)
    for record in result.records:
        print(f"placed {record.data_id} on server {record.server_id} "
              f"({record.physical_hops} hops"
              f"{', extended' if record.extended else ''})")
    return 0


def _cmd_retrieve(args) -> int:
    net = _load(args.network)
    result = net.retrieve(args.data_id, entry_switch=args.entry,
                          copies=args.copies,
                          rng=np.random.default_rng(0))
    if not result.found:
        print(f"not found: {args.data_id}")
        return 1
    print(f"found {args.data_id} on server {result.server_id} "
          f"(round trip {result.round_trip_hops} hops)")
    print(json.dumps(result.payload))
    return 0


def _cmd_delete(args) -> int:
    net = _load(args.network)
    removed = net.delete(args.data_id, copies=args.copies,
                         entry_switch=net.switch_ids()[0])
    _save(net, args.network)
    print(f"deleted {removed} copies of {args.data_id}")
    return 0 if removed else 1


def _cmd_stats(args) -> int:
    from .controlplane import average_table_entries
    from .metrics import load_imbalance_summary

    net = _load(args.network)
    overload_events = None
    if args.sweep:
        from .services import OverloadManager

        manager = OverloadManager(net,
                                  high_watermark=args.high_watermark,
                                  low_watermark=args.low_watermark)
        overload_events = manager.sweep()
        if overload_events:
            _save(net, args.network)
    topology = net.topology
    loads = net.load_vector()
    avg_entries = average_table_entries(
        net.controller.switches.values())
    extensions = sum(
        len(s.table.extensions())
        for s in net.controller.switches.values()
    )
    balance = load_imbalance_summary(loads) if sum(loads) else None
    from .dataplane import batch_fastpath_blockers

    blockers = batch_fastpath_blockers(net)
    if args.json:
        payload = {
            "switches": topology.num_nodes(),
            "links": topology.num_edges(),
            "servers": len(loads),
            "stored_items": sum(loads),
            "avg_table_entries": avg_entries,
            "active_extensions": extensions,
            "load_balance": balance,
            "fastpath_blockers": blockers,
        }
        if overload_events is not None:
            payload["overload_events"] = [
                {"action": e.action, "switch": e.switch,
                 "serial": e.serial, "utilization": e.utilization}
                for e in overload_events
            ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"switches          : {topology.num_nodes()}")
    print(f"links             : {topology.num_edges()}")
    print(f"servers           : {len(loads)}")
    print(f"stored items      : {sum(loads)}")
    if balance is not None:
        print(f"load max/avg      : {balance['max_avg']:.3f}")
        print(f"load Jain index   : {balance['jain']:.3f}")
    print(f"avg table entries : {avg_entries:.1f}")
    print(f"active extensions : {extensions}")
    print(f"fastpath blockers : "
          f"{', '.join(blockers) if blockers else 'none'}")
    if overload_events is not None:
        print(f"overload sweep    : {len(overload_events)} action(s)")
        for event in overload_events:
            print(f"  {event.action} ({event.switch}, {event.serial}) "
                  f"at utilization {event.utilization:.2f}")
    return 0


def _cmd_metrics(args) -> int:
    from . import obs

    if args.from_file is not None:
        dump = obs.load_json(args.from_file)
    elif args.network is not None:
        # Restore the snapshot under a fresh enabled registry so the
        # probe reports this deployment only (recompute-phase timings,
        # rule counts, per-server load gauges).
        previous = obs.set_default_registry(obs.MetricsRegistry())
        try:
            net = _load(args.network)
            net.record_load_gauges()
            dump = obs.default_registry().to_dict()
        finally:
            obs.set_default_registry(previous)
    else:
        print("error: metrics needs --network or --from",
              file=sys.stderr)
        return 2
    if args.json:
        print(obs.to_json(dump))
    else:
        print(obs.render_prometheus(dump), end="")
    return 0


def _cmd_extend(args) -> int:
    net = _load(args.network)
    net.extend_range(args.switch, args.serial)
    _save(net, args.network)
    entry = net.controller.switches[args.switch].table.extension_for(
        args.serial)
    print(f"extended ({args.switch}, {args.serial}) -> "
          f"({entry.target_switch}, {entry.target_serial})")
    return 0


def _cmd_retract(args) -> int:
    net = _load(args.network)
    moved = net.retract_range(args.switch, args.serial)
    _save(net, args.network)
    print(f"retracted ({args.switch}, {args.serial}); "
          f"{moved} items migrated home")
    return 0


def _cmd_verify(args) -> int:
    from .controlplane import verify_installed_state

    net = _load(args.network)
    violations = verify_installed_state(net.controller)
    if not violations:
        print("installed state is consistent")
        return 0
    for violation in violations:
        print(violation)
    print(f"{len(violations)} violations found")
    return 1


def _cmd_render(args) -> int:
    from .viz import render_virtual_space

    net = _load(args.network)
    route_trace = None
    if args.route is not None:
        entry = args.entry if args.entry is not None \
            else net.switch_ids()[0]
        route_trace = net.route_for(args.route, entry).trace
    svg = render_virtual_space(
        net.controller,
        show_voronoi=args.voronoi,
        data_ids=args.data,
        route_trace=route_trace,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(svg)
    print(f"wrote {args.output}")
    return 0


def _cmd_trace(args) -> int:
    net = _load(args.network)
    entry = args.entry if args.entry is not None \
        else net.switch_ids()[0]
    recording = bool(args.summary or args.spans_out or args.chrome_out)
    if args.data_id is None and not recording:
        print("error: trace needs a data_id (or --summary / "
              "--spans-out / --chrome-out)", file=sys.stderr)
        return 2
    if not recording:
        route, tracer = net.trace_route(args.data_id, entry)
        print(tracer.render())
        print(f"-> destination switch {route.destination_switch}, "
              f"{route.physical_hops} physical hops, "
              f"{route.overlay_hops} overlay hops")
        return 0

    from . import obs
    from .obs import spans as ospans

    recorder = ospans.SpanRecorder(sample_rate=args.sample_rate)
    previous_recorder = ospans.set_default_recorder(recorder)
    previous_registry = obs.set_default_registry(obs.MetricsRegistry())
    try:
        rng = np.random.default_rng(args.seed)
        if args.data_id is not None:
            targets = [args.data_id]
        else:
            stored = sorted({data_id for server in net.servers()
                             for data_id in server.stored_ids()})
            if not stored:
                print("error: snapshot stores no items to trace",
                      file=sys.stderr)
                return 1
            count = min(args.requests, len(stored))
            picks = rng.choice(len(stored), size=count, replace=False)
            targets = [stored[i] for i in sorted(picks.tolist())]
        found = 0
        for data_id in targets:
            result = net.retrieve(data_id, entry_switch=entry,
                                  rng=np.random.default_rng(args.seed))
            found += int(result.found)
        dump = obs.default_registry().to_dict(include_events=False)
    finally:
        obs.set_default_registry(previous_registry)
        ospans.set_default_recorder(previous_recorder)
    spans = recorder.spans()
    print(f"traced {len(targets)} request(s) from switch {entry}: "
          f"{found} found, {len(targets) - found} missed, "
          f"{len(spans)} spans recorded")
    if args.spans_out:
        ospans.write_jsonl(spans, args.spans_out)
        print(f"wrote {args.spans_out}")
    if args.chrome_out:
        ospans.write_chrome(spans, args.chrome_out)
        print(f"wrote {args.chrome_out}")
    if args.summary:
        print(_render_trace_summary(dump, spans))
    return 0


def _render_trace_summary(dump, spans) -> str:
    """Join hop-histogram quantiles with the recorded traces."""
    from . import obs
    from .obs import spans as ospans

    lines = []
    for name in ("dataplane.hops_per_request", "core.retrieve_hops"):
        quantiles = obs.dump_quantiles(dump, name)
        if quantiles:
            rendered = ", ".join(
                f"{key}={value:.1f}" if value is not None
                else f"{key}=-"
                for key, value in sorted(quantiles.items()))
            lines.append(f"{name:<28}: {rendered}")
    by_trace = ospans.traces(spans)
    lines.append(f"recorded traces             : {len(by_trace)}")
    for trace_id, members in sorted(by_trace.items()):
        root = next((s for s in members if s.parent_id is None),
                    members[0])
        closed = [s for s in members if s.end is not None]
        duration = (max(s.end for s in closed) - root.start
                    if closed else 0.0)
        key = root.attrs.get("key", root.attrs.get("data_id", "-"))
        lines.append(
            f"  {trace_id}: {root.name} key={key} "
            f"spans={len(members)} duration={duration * 1e3:.3f}ms "
            f"status={root.status}")
    return "\n".join(lines)


def _cmd_experiment(args) -> int:
    from . import experiments as exp

    runners = {
        "fig7a": lambda: exp.print_table(
            exp.run_fig7a(), ["protocol", "stretch_mean",
                              "stretch_ci_low", "stretch_ci_high"],
            "Fig 7(a): testbed routing stretch"),
        "fig7b": lambda: exp.print_table(
            exp.run_fig7b(), ["protocol", "max_avg", "items", "servers"],
            "Fig 7(b): testbed load balance"),
        "fig8": lambda: exp.print_table(
            exp.run_fig8(), ["protocol", "requests", "avg_delay_ms",
                             "avg_request_hops"],
            "Fig 8: response delay"),
        "fig9a": lambda: exp.print_table(
            exp.run_fig9a(), ["switches", "protocol", "stretch_mean",
                              "ci_low", "ci_high"],
            "Fig 9(a): stretch vs size"),
        "fig9b": lambda: exp.print_table(
            exp.run_fig9b(), ["min_degree", "protocol", "stretch_mean",
                              "ci_low", "ci_high"],
            "Fig 9(b): stretch vs degree"),
        "fig9c": lambda: exp.print_table(
            exp.run_fig9c(), ["switches", "protocol", "stretch_mean"],
            "Fig 9(c): extension stretch"),
        "fig9d": lambda: exp.print_table(
            exp.run_fig9d(), ["switches", "avg_entries", "ci_low",
                              "ci_high", "max_entries"],
            "Fig 9(d): table entries"),
        "fig10a": lambda: exp.print_table(
            exp.run_fig10a(), ["servers", "protocol", "max_avg"],
            "Fig 10(a): load vs size"),
        "fig10b": lambda: exp.print_table(
            exp.run_fig10b(), ["items", "protocol", "max_avg"],
            "Fig 10(b): load vs data"),
        "fig10c": lambda: exp.print_table(
            exp.run_fig10c(), ["T", "protocol", "max_avg"],
            "Fig 10(c): load vs iterations"),
        "extensions": lambda: (
            exp.print_table(exp.run_mobility(),
                            ["copies", "mean_request_hops", "p_max"],
                            "X1: mobility"),
            exp.print_table(exp.run_failure_availability(),
                            ["failed_fraction", "copies",
                             "availability"],
                            "X2: failure availability"),
            exp.print_table(exp.run_state_stretch_tradeoff(),
                            ["switches", "protocol", "state_per_node",
                             "stretch_mean"],
                            "X3: state vs stretch"),
            exp.print_table(exp.run_link_utilization(),
                            ["protocol", "total_link_traversals",
                             "max_link_load", "mean_link_load",
                             "links_used"],
                            "X4: link utilization"),
            exp.print_table(exp.run_overflow_protection(),
                            ["small_fraction", "rejected_unmanaged",
                             "rejected_managed", "extensions_used"],
                            "X9: overflow protection"),
        ),
        "ablations": lambda: (
            exp.print_table(exp.run_cvt_samples(),
                            ["samples", "energy_at_10", "energy_at_30",
                             "energy_final"],
                            "A1: CVT samples"),
            exp.print_table(exp.run_embedding_quality(),
                            ["switches", "protocol", "stress",
                             "stretch_mean"],
                            "A2: embedding quality"),
            exp.print_table(exp.run_chord_virtual_nodes(),
                            ["virtual_nodes", "max_avg",
                             "avg_finger_entries"],
                            "A3: Chord virtual nodes"),
        ),
    }
    if args.metrics_out is None:
        runners[args.figure]()
        return 0
    from . import obs

    previous = obs.set_default_registry(obs.MetricsRegistry())
    try:
        runners[args.figure]()
        registry = obs.default_registry()
    finally:
        obs.set_default_registry(previous)
    obs.write_json(registry, args.metrics_out)
    print(f"\nwrote metrics to {args.metrics_out}")
    return 0


def _cmd_chaos(args) -> int:
    from .faults import ChaosConfig, FaultPlan, run_chaos

    plan = FaultPlan.from_json(args.plan) if args.plan else None
    control_plan = (FaultPlan.from_json(args.control_plan)
                    if args.control_plan else None)
    config = ChaosConfig(
        switches=args.switches,
        min_degree=args.min_degree,
        servers_per_switch=args.servers,
        cvt_iterations=args.cvt_iterations,
        items=args.items,
        copies=args.copies,
        requests=args.requests,
        seed=args.seed,
        plan=plan,
        control_plan=control_plan,
        duration=args.duration,
        detection_interval=args.detection_interval,
    )
    report = run_chaos(config)
    gate_failed = (args.min_availability is not None
                   and report["availability"] < args.min_availability)
    if gate_failed:
        print(f"error: recovered availability "
              f"{report['availability']:.4f} is below the "
              f"--min-availability gate {args.min_availability}",
              file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 1 if gate_failed else 0
    repair = report["repair"]
    print(f"baseline availability  : "
          f"{report['baseline']['availability']:.3f} "
          f"({report['baseline']['mean_round_trip_hops']:.2f} hops)")
    events = report["plan"]["events"]
    if events:
        print(f"fault plan             : {len(events)} event(s), "
              f"first at t={events[0]['time']:.3f}")
    else:
        print("fault plan             : empty")
    print(f"under faults           : {report['under_faults']['completed']}"
          f"/{report['under_faults']['requests']} requests completed, "
          f"{report['under_faults']['failed']} failed")
    print(f"dead switches detected : {repair['dead_switches']}")
    print(f"stranded switches      : {repair['stranded_switches']}")
    print(f"servers replaced       : {repair['servers_replaced']}")
    print(f"re-replicated copies   : {report['re_replicated']}")
    print(f"items lost             : {report['items_lost']}")
    print(f"recovery time          : {report['recovery_time']:.3f}s")
    print(f"recovered availability : {report['availability']:.3f} "
          f"({report['recovered']['mean_round_trip_hops']:.2f} hops, "
          f"inflation x{report['hop_inflation']:.2f})")
    print(f"verifier violations    : {report['verifier_violations']}")
    southbound = report.get("southbound")
    if southbound is not None:
        stats = southbound["channel"]
        reconcile = southbound["reconcile"]
        print(f"southbound channel     : {stats['sent']} sent, "
              f"{stats['dropped']} dropped, "
              f"{stats['duplicated']} duplicated, "
              f"{stats['reordered']} reordered, "
              f"{stats['delayed']} delayed")
        print(f"reconcile              : "
              f"{reconcile['divergent_initial']} divergent, "
              f"{reconcile['sweeps']} sweep(s), "
              f"{reconcile['resynced']} resync(s), "
              f"{reconcile['drained']} drained, "
              f"converged={reconcile['converged']}")
    return 1 if gate_failed else 0


def _cmd_loadtest(args) -> int:
    from .faults import FaultPlan
    from .slo import (DEFAULT_LOAD_FACTORS, SloConfig, evaluate_gates,
                      render_summary, run_loadtest, write_report)

    plan = FaultPlan.from_json(args.plan) if args.plan else None
    if args.quick:
        config = SloConfig.quick()
        config.seed = args.seed
        config.plan = plan
        if args.load_factors is not None:
            config.load_factors = tuple(args.load_factors)
    else:
        config = SloConfig(
            switches=args.switches,
            entry_switches=args.entry_switches,
            servers_per_switch=args.servers,
            min_degree=args.min_degree,
            cvt_iterations=args.cvt_iterations,
            items=args.items,
            copies=args.copies,
            requests=args.requests,
            seed=args.seed,
            load_factors=(tuple(args.load_factors)
                          if args.load_factors is not None
                          else DEFAULT_LOAD_FACTORS),
            deadline=args.deadline,
            rate_per_switch=args.rate,
            burst=args.burst,
            queue_limit=args.queue_limit,
            plan=plan,
        )
    recorder = None
    if args.trace_out is not None or args.trace_sample is not None:
        from .obs import spans as ospans

        config.trace_sample_rate = (args.trace_sample
                                    if args.trace_sample is not None
                                    else 0.05)
        recorder = ospans.SpanRecorder(
            sample_rate=config.trace_sample_rate)
    report = run_loadtest(config, recorder=recorder)
    write_report(report, args.output)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_summary(report))
    print(f"wrote {args.output}")
    if recorder is not None and args.trace_out is not None:
        from .obs import spans as ospans

        ospans.write_jsonl(recorder.spans(), args.trace_out)
        summary = report["trace_summary"]
        print(f"wrote {summary['traces']} trace(s) "
              f"({summary['spans']} spans, sample rate "
              f"{summary['sample_rate']:g}) to {args.trace_out}")
    failures = evaluate_gates(report, min_goodput=args.min_goodput,
                              min_attainment=args.min_attainment)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_bench(args) -> int:
    from .bench import (BenchConfig, ScalingConfig, render_summary,
                        run_bench, write_report)

    if args.quick:
        config = BenchConfig.quick()
        config.seed = args.seed
    else:
        config = BenchConfig(
            switches=args.switches,
            requests=args.requests,
            copies=args.copies,
            servers_per_switch=args.servers,
            min_degree=args.min_degree,
            cvt_iterations=args.cvt_iterations,
            seed=args.seed,
            repeats=args.repeats,
            chunks=args.chunks,
        )
    scaling = None
    if args.scaling:
        scaling = (ScalingConfig.quick() if args.quick
                   else ScalingConfig())
        scaling.seed = args.seed
        if args.scaling_switches is not None:
            scaling.switches = tuple(args.scaling_switches)
        if args.scaling_batches is not None:
            scaling.batches = tuple(args.scaling_batches)
        if args.scaling_workers is not None:
            scaling.workers = tuple(args.scaling_workers)
        if args.scaling_copies is not None:
            scaling.copies = args.scaling_copies
    report = run_bench(config, scaling=scaling)
    write_report(report, args.output)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_summary(report))
    print(f"wrote {args.output}")
    failed = not all(report["equivalence"].values())
    if args.scaling:
        summary = report["scaling"]["summary"]
        if not summary["replica_fanout_vectorized"]:
            print("error: the scaling sweep degraded to the scalar "
                  "fallback (no wave-router waves recorded)",
                  file=sys.stderr)
            failed = True
        if not summary["equivalence_verified"]:
            print("error: a scaling-sweep batch diverged from the "
                  "scalar reference loop", file=sys.stderr)
            failed = True
    if args.max_telemetry_overhead is not None:
        telemetry = report["telemetry"]
        if not telemetry["vectorized"]:
            print("error: telemetry forced the batch path into the "
                  "scalar fallback (no wave-router waves recorded)",
                  file=sys.stderr)
            failed = True
        for op in ("placement", "retrieval"):
            overhead = telemetry[op]["overhead_fraction"]
            if overhead > args.max_telemetry_overhead:
                print(f"error: telemetry overhead on {op} "
                      f"({overhead:+.1%}) exceeds "
                      f"--max-telemetry-overhead "
                      f"{args.max_telemetry_overhead:g}",
                      file=sys.stderr)
                failed = True
    return 1 if failed else 0


def _cmd_churn(args) -> int:
    from .experiments.control_churn import run_churn_scaling

    report = run_churn_scaling(
        sizes=tuple(args.sizes),
        servers_per_switch=args.servers,
        num_joins=args.joins,
        cvt_iterations=args.cvt_iterations,
        seed=args.seed,
        regions=args.regions,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        from .experiments.common import print_table

        columns = ["switches", "avg_delta_messages",
                   "avg_switches_touched",
                   "avg_full_reinstall_messages",
                   "route_cache_survival"]
        if args.regions > 1:
            columns = ["switches", "regions", "avg_delta_messages",
                       "avg_switches_touched", "avg_foreign_touched",
                       "avg_foreign_messages",
                       "avg_full_reinstall_messages"]
        print_table(report["rows"], columns,
                    "churn: delta vs full-reinstall control traffic")
    print(f"wrote {args.output}")
    failures = []
    for row in report["rows"]:
        if args.max_touched is not None and \
                row["avg_switches_touched"] > args.max_touched:
            failures.append(
                f"avg switches touched per join at n={row['switches']} "
                f"is {row['avg_switches_touched']:.1f} > "
                f"--max-touched {args.max_touched:g}")
        if args.max_foreign_touched is not None and \
                row.get("avg_foreign_touched", 0) \
                > args.max_foreign_touched:
            failures.append(
                f"churn at n={row['switches']} touched "
                f"{row['avg_foreign_touched']:.1f} switch(es) outside "
                f"the joining region > --max-foreign-touched "
                f"{args.max_foreign_touched:g} (cross-shard locality "
                f"leak)")
        if not row["untouched_generations_preserved"]:
            failures.append(
                f"untouched switch generations were bumped at "
                f"n={row['switches']} (scoped invalidation leak)")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_federate(args) -> int:
    from .experiments.federation import run_federation_scaling

    if args.quick:
        report = run_federation_scaling(
            total_switches=(48, 96), switches_per_region=12,
            servers_per_switch=args.servers, cvt_iterations=4,
            num_joins=4, num_requests=96, copies=args.copies,
            seed=args.seed)
    else:
        report = run_federation_scaling(
            total_switches=(tuple(args.sizes)
                            if args.sizes is not None else (1000, 5000)),
            switches_per_region=(args.per_region
                                 if args.per_region is not None
                                 else 250),
            servers_per_switch=args.servers,
            cvt_iterations=args.cvt_iterations,
            num_joins=args.joins, num_requests=args.requests,
            copies=args.copies, seed=args.seed)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        from .experiments.common import print_table

        print_table(report["rows"],
                    ["total_switches", "regions",
                     "mean_shard_recompute_s", "avg_join_messages",
                     "foreign_messages", "cross_region_fraction",
                     "retrieved_found"],
                    "federation: flat per-shard cost, zero foreign "
                    "churn traffic")
        differential = report["single_region_differential"]
        print("single-region differential vs monolith: "
              + ", ".join(f"{key}={value}"
                          for key, value in differential.items()
                          if key != "switches"))
    print(f"wrote {args.output}")
    failures = []
    for row in report["rows"]:
        if args.max_foreign_touched is not None and \
                row["foreign_messages"] > args.max_foreign_touched:
            failures.append(
                f"churn at n={row['total_switches']} shipped "
                f"{row['foreign_messages']} southbound message(s) "
                f"into foreign regions > --max-foreign-touched "
                f"{args.max_foreign_touched:g}")
        if row["retrieved_found"] != row["requests"]:
            failures.append(
                f"{row['requests'] - row['retrieved_found']} of "
                f"{row['requests']} retrievals missed at "
                f"n={row['total_switches']}")
    differential = report["single_region_differential"]
    for key, value in differential.items():
        if key != "switches" and value is not True:
            failures.append(
                f"single-region differential mismatch: {key}={value} "
                f"(1-region federation must be identical to the "
                f"monolithic controller)")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_reconcile(args) -> int:
    if args.network is not None:
        return _reconcile_snapshot(args)
    return _reconcile_experiment(args)


def _reconcile_snapshot(args) -> int:
    """Anti-entropy sweep over a saved deployment: repair any drift
    between the snapshot's installed state and the compiled plan."""
    net = _load(args.network)
    report = net.controller.reconcile(max_sweeps=args.max_sweeps)
    _save(net, args.network)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"divergent switches : {report.divergent_initial}")
        print(f"sweeps             : {report.sweeps}")
        print(f"resyncs shipped    : {report.resynced}")
        print(f"pending drained    : {report.drained}")
        print(f"still divergent    : "
              f"{sorted(report.divergent_final) or 'none'}")
    if args.max_divergence is not None and \
            len(report.divergent_final) > args.max_divergence:
        print(f"error: {len(report.divergent_final)} switch(es) stay "
              f"divergent after reconcile, above the --max-divergence "
              f"gate {args.max_divergence}", file=sys.stderr)
        return 1
    return 0


def _reconcile_experiment(args) -> int:
    """Churn-under-loss convergence experiment; writes the committed
    CONVERGENCE_report.json CI artifact."""
    from .experiments.convergence import run_convergence

    if args.quick:
        report = run_convergence(
            switches=24, events=8, drop=args.drop, dup=args.dup,
            delay=args.delay, reorder_window=args.reorder_window,
            servers_per_switch=args.servers, cvt_iterations=5,
            seed=args.seed, max_sweeps=args.max_sweeps)
    else:
        report = run_convergence(
            switches=args.switches, events=args.events, drop=args.drop,
            dup=args.dup, delay=args.delay,
            reorder_window=args.reorder_window,
            servers_per_switch=args.servers,
            cvt_iterations=args.cvt_iterations, seed=args.seed,
            max_sweeps=args.max_sweeps)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        config = report["config"]
        stats = report["channel"]
        divergence = report["divergence"]
        print(f"churn              : {report['events_applied']} "
              f"event(s) applied ({report['events_skipped']} skipped) "
              f"over {config['switches']} switches")
        print(f"channel faults     : drop={config['drop']:g} "
              f"dup={config['dup']:g} delay={config['delay']:g} "
              f"reorder_window={config['reorder_window']}")
        print(f"southbound         : {stats['sent']} sent, "
              f"{stats['dropped']} dropped, "
              f"{stats['duplicated']} duplicated, "
              f"{stats['reordered']} reordered, "
              f"{stats['delayed']} delayed")
        print(f"retries            : {report['totals']['retries']}")
        print(f"divergence         : {divergence['before_reconcile']} "
              f"before reconcile, {divergence['after_reconcile']} "
              f"after ({report['reconcile']['sweeps']} sweep(s))")
        print(f"oracle match       : {report['oracle_match']}")
        print(f"verifier violations: {report['verifier_violations']}")
    print(f"wrote {args.output}")
    failures = []
    if args.max_divergence is not None:
        after = report["divergence"]["after_reconcile"]
        if after > args.max_divergence:
            failures.append(
                f"{after} switch(es) stay divergent after reconcile, "
                f"above the --max-divergence gate "
                f"{args.max_divergence}")
        if not report["oracle_match"]:
            failures.append(
                f"switches {report['mismatched_switches']} diverge "
                f"from the install_all_rules oracle")
        if report["verifier_violations"]:
            failures.append(
                f"{report['verifier_violations']} verifier "
                f"violation(s) after reconcile")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_scrub(args) -> int:
    if args.network is not None:
        return _scrub_snapshot(args)
    return _scrub_experiment(args)


def _scrub_snapshot(args) -> int:
    """Anti-entropy sweep over a saved deployment's storage plane:
    drain parked hints, repair stale/missing/orphaned replicas and
    collect eligible tombstones, then save the snapshot back."""
    from .core import storage_divergence

    net = _load(args.network)
    report = net.scrub(max_sweeps=args.max_sweeps)
    divergent = storage_divergence(net)
    _save(net, args.network)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"sweeps             : {report.sweeps}")
        print(f"hints drained      : {report.hints_drained}")
        print(f"repairs            : {report.repairs}")
        print(f"resurrections cut  : {report.resurrections_removed}")
        print(f"orphans removed    : {report.orphans_removed}")
        print(f"tombstones gc'd    : {report.tombstones_gced}")
        print(f"unreachable skips  : {report.skipped_unreachable}")
        print(f"still divergent    : {divergent}")
    if args.max_divergence is not None and \
            divergent > args.max_divergence:
        print(f"error: {divergent} (server, range) pair(s) stay "
              f"divergent after scrub, above the --max-divergence "
              f"gate {args.max_divergence}", file=sys.stderr)
        return 1
    return 0


def _scrub_experiment(args) -> int:
    """Crash+partition+delete durability experiment; writes the
    committed DURABILITY_report.json CI artifact."""
    from .experiments.durability import run_durability

    if args.quick:
        report = run_durability(
            switches=24, servers_per_switch=args.servers, items=60,
            copies=args.copies, ops=40,
            crash_fraction=args.crash_fraction,
            partition_fraction=args.partition_fraction,
            late_crashes=args.late_crashes, cvt_iterations=5,
            seed=args.seed, max_sweeps=args.max_sweeps)
    else:
        report = run_durability(
            switches=args.switches,
            servers_per_switch=args.servers, items=args.items,
            copies=args.copies, ops=args.ops,
            crash_fraction=args.crash_fraction,
            partition_fraction=args.partition_fraction,
            late_crashes=args.late_crashes,
            cvt_iterations=args.cvt_iterations, seed=args.seed,
            max_sweeps=args.max_sweeps)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        config = report["config"]
        workload = report["workload"]
        divergence = report["divergence"]
        scrub_stats = report["scrub"]
        print(f"workload           : {workload['items_placed']} "
              f"item(s), {workload['items_deleted']} deleted, "
              f"{config['ops']} op(s) under partition")
        print(f"faults             : {workload['crashes']} crash(es) "
              f"({workload['crash_fraction_actual']:.0%} of servers), "
              f"partition_fraction={config['partition_fraction']:g}")
        print(f"hints              : "
              f"{workload['hints_parked_pre_scrub']} parked, "
              f"{scrub_stats['hints_drained']} drained by scrub")
        print(f"divergence         : {divergence['before_scrub']} "
              f"before scrub, {divergence['after_scrub']} after "
              f"({scrub_stats['sweeps']} sweep(s), "
              f"{scrub_stats['repairs']} repair(s))")
        print(f"tombstones         : "
              f"{scrub_stats['resurrections_removed']} "
              f"resurrection(s) cut, {scrub_stats['tombstones_gced']} "
              f"gc'd")
        print(f"oracle verdicts    : {len(report['resurrected'])} "
              f"resurrected, {len(report['lost'])} lost, "
              f"{len(report['stale'])} stale, "
              f"{len(report['unavailable'])} unavailable")
        print(f"oracle match       : {report['oracle_match']}")
    print(f"wrote {args.output}")
    failures = []
    if args.max_divergence is not None:
        after = report["divergence"]["after_scrub"]
        if after > args.max_divergence:
            failures.append(
                f"{after} (server, range) pair(s) stay divergent "
                f"after scrub, above the --max-divergence gate "
                f"{args.max_divergence}")
        if not report["oracle_match"]:
            failures.append(
                "storage plane diverges from the fault-free oracle: "
                f"{len(report['resurrected'])} resurrected, "
                f"{len(report['lost'])} lost, "
                f"{len(report['stale'])} stale, "
                f"{len(report['unavailable'])} unavailable")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


_COMMANDS = {
    "generate": _cmd_generate,
    "place": _cmd_place,
    "retrieve": _cmd_retrieve,
    "delete": _cmd_delete,
    "stats": _cmd_stats,
    "metrics": _cmd_metrics,
    "extend": _cmd_extend,
    "retract": _cmd_retract,
    "verify": _cmd_verify,
    "render": _cmd_render,
    "trace": _cmd_trace,
    "experiment": _cmd_experiment,
    "chaos": _cmd_chaos,
    "loadtest": _cmd_loadtest,
    "bench": _cmd_bench,
    "churn": _cmd_churn,
    "federate": _cmd_federate,
    "reconcile": _cmd_reconcile,
    "scrub": _cmd_scrub,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except Exception as exc:  # surface library errors as CLI errors
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
