"""Visualization: SVG rendering of the virtual space / topology and
terminal histograms."""

from .svg import (
    DEFAULT_SIZE,
    SvgCanvas,
    ascii_load_histogram,
    render_topology,
    render_virtual_space,
)

__all__ = [
    "SvgCanvas",
    "DEFAULT_SIZE",
    "render_virtual_space",
    "render_topology",
    "ascii_load_histogram",
]
