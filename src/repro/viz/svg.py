"""SVG rendering of the GRED virtual space and physical topology.

Pure-string SVG generation (no plotting dependency): render the
controller's virtual space — switch positions, Delaunay edges, data
positions, a highlighted route — or the physical topology drawn at the
virtual coordinates.  Useful for debugging embeddings and for the
documentation figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from ..geometry import Point

#: Default canvas size in pixels.
DEFAULT_SIZE = 640
_MARGIN = 30


def _scale(point: Point, size: int) -> Tuple[float, float]:
    """Map a unit-square point to canvas pixels (y flipped)."""
    usable = size - 2 * _MARGIN
    x = _MARGIN + point[0] * usable
    y = size - (_MARGIN + point[1] * usable)
    return (x, y)


class SvgCanvas:
    """Minimal SVG document builder."""

    def __init__(self, size: int = DEFAULT_SIZE) -> None:
        self.size = size
        self._elements: List[str] = []

    def line(self, a: Tuple[float, float], b: Tuple[float, float],
             color: str = "#999", width: float = 1.0,
             dashed: bool = False) -> None:
        dash = ' stroke-dasharray="6 4"' if dashed else ""
        self._elements.append(
            f'<line x1="{a[0]:.1f}" y1="{a[1]:.1f}" '
            f'x2="{b[0]:.1f}" y2="{b[1]:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{dash} />'
        )

    def circle(self, center: Tuple[float, float], radius: float,
               fill: str = "#336", stroke: str = "none") -> None:
        self._elements.append(
            f'<circle cx="{center[0]:.1f}" cy="{center[1]:.1f}" '
            f'r="{radius}" fill="{fill}" stroke="{stroke}" />'
        )

    def cross(self, center: Tuple[float, float], size: float = 4.0,
              color: str = "#c33") -> None:
        x, y = center
        self.line((x - size, y - size), (x + size, y + size),
                  color=color, width=1.5)
        self.line((x - size, y + size), (x + size, y - size),
                  color=color, width=1.5)

    def text(self, position: Tuple[float, float], content: str,
             size: int = 11, color: str = "#222") -> None:
        self._elements.append(
            f'<text x="{position[0]:.1f}" y="{position[1]:.1f}" '
            f'font-size="{size}" fill="{color}" '
            f'font-family="monospace">{escape(content)}</text>'
        )

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.size}" height="{self.size}" '
            f'viewBox="0 0 {self.size} {self.size}">\n'
            f'<rect width="{self.size}" height="{self.size}" '
            f'fill="white" />\n'
            f"{body}\n</svg>"
        )


def render_virtual_space(
    controller,
    size: int = DEFAULT_SIZE,
    show_dt: bool = True,
    show_voronoi: bool = False,
    data_ids: Sequence[str] = (),
    route_trace: Optional[Sequence[int]] = None,
    label_switches: bool = True,
) -> str:
    """Render the virtual space of a configured controller.

    Parameters
    ----------
    controller:
        A :class:`repro.controlplane.Controller`.
    show_dt:
        Draw the Delaunay edges between DT participants.
    show_voronoi:
        Draw the exact Voronoi cell boundaries of the DT participants
        (each cell is the region of data positions a switch attracts).
    data_ids:
        Data identifiers whose hash positions are drawn as crosses.
    route_trace:
        Optional switch-id sequence to highlight (e.g. a
        ``RouteResult.trace``).
    """
    from ..hashing import data_position

    canvas = SvgCanvas(size)
    positions: Dict[int, Point] = controller.positions
    if show_voronoi:
        from ..geometry import voronoi_cell

        participants = controller.dt_participants()
        sites = [positions[node] for node in participants]
        for i in range(len(sites)):
            cell = voronoi_cell(sites, i)
            for a, b in zip(cell, cell[1:] + cell[:1]):
                canvas.line(_scale(a, size), _scale(b, size),
                            color="#dcb", width=1.0, dashed=True)
    if show_dt:
        for node, nbrs in controller.dt_adjacency().items():
            for other in nbrs:
                if node < other:
                    canvas.line(
                        _scale(positions[node], size),
                        _scale(positions[other], size),
                        color="#bbb",
                    )
    if route_trace:
        for a, b in zip(route_trace, route_trace[1:]):
            canvas.line(_scale(positions[a], size),
                        _scale(positions[b], size),
                        color="#e80", width=2.5)
    participants = set(controller.dt_participants())
    for node, pos in positions.items():
        pixel = _scale(pos, size)
        if node in participants:
            canvas.circle(pixel, 5, fill="#336")
        else:
            canvas.circle(pixel, 4, fill="#aaa")
        if label_switches:
            canvas.text((pixel[0] + 6, pixel[1] - 6), str(node))
    for data_id in data_ids:
        canvas.cross(_scale(data_position(data_id), size))
    return canvas.render()


def render_topology(
    graph,
    coordinates: Dict[int, Point],
    size: int = DEFAULT_SIZE,
    label_switches: bool = True,
) -> str:
    """Render a physical topology at the given (unit-square or plane)
    coordinates; plane coordinates are normalized first."""
    xs = [c[0] for c in coordinates.values()]
    ys = [c[1] for c in coordinates.values()]
    span_x = (max(xs) - min(xs)) or 1.0
    span_y = (max(ys) - min(ys)) or 1.0
    normalized = {
        node: ((c[0] - min(xs)) / span_x, (c[1] - min(ys)) / span_y)
        for node, c in coordinates.items()
    }
    canvas = SvgCanvas(size)
    for u, v, _ in graph.edges():
        canvas.line(_scale(normalized[u], size),
                    _scale(normalized[v], size), color="#888")
    for node, pos in normalized.items():
        pixel = _scale(pos, size)
        canvas.circle(pixel, 5, fill="#264")
        if label_switches:
            canvas.text((pixel[0] + 6, pixel[1] - 6), str(node))
    return canvas.render()


def ascii_load_histogram(loads: Iterable[int], bins: int = 10,
                         width: int = 50) -> str:
    """A terminal histogram of per-server loads.

    >>> print(ascii_load_histogram([1, 1, 2, 8]))  # doctest: +SKIP
    """
    values = list(loads)
    if not values:
        raise ValueError("load vector is empty")
    low, high = min(values), max(values)
    if low == high:
        return (f"[{low}, {high}] | " + "#" * width
                + f" {len(values)}")
    bin_width = (high - low) / bins
    counts = [0] * bins
    for value in values:
        idx = min(bins - 1, int((value - low) / bin_width))
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        lo = low + i * bin_width
        hi = lo + bin_width
        bar = "#" * int(round(width * count / peak)) if count else ""
        lines.append(f"[{lo:8.1f}, {hi:8.1f}) | {bar} {count}")
    return "\n".join(lines)
