"""Theoretical companions to the measured results.

The paper appeals to known results ("Theoretical analysis shows the
correctness and efficiency of GRED"); this module provides the closed
forms the experiments are compared against:

* expected Chord lookup hops ``~ (1/2) log2 n``;
* the balls-into-bins maximum load (the best an oblivious uniform
  placement can do — what GRED's ``H(d) mod s`` approaches under a
  perfect CVT);
* consistent-hashing arc-length imbalance (why plain Chord's max/avg
  is so much worse than balls-into-bins);
* average Delaunay degree (< 6) — why GRED's per-switch state is
  effectively constant.

The test-suite checks the *measured* systems against these predictions.
"""

from __future__ import annotations

import math


def expected_chord_hops(num_nodes: int) -> float:
    """Expected overlay hops of a Chord lookup: ``(1/2) log2 n``.

    Stoica et al., Theorem IV.5: lookups take ``O(log n)`` messages,
    with the constant ~1/2 in expectation.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_nodes == 1:
        return 0.0
    return 0.5 * math.log2(num_nodes)


def expected_max_load_balls_in_bins(num_balls: int,
                                    num_bins: int) -> float:
    """Approximate expected maximum bin load for uniform placement.

    Two regimes (Raab & Steger):

    * heavy loading (``m >> n log n``):
      ``m/n + sqrt(2 (m/n) ln n)``;
    * light loading (``m ~ n``): ``ln n / ln ln n`` scale.

    Used to annotate the load-balance experiments: GRED with a perfect
    CVT approaches this bound; Chord exceeds it because ring arcs are
    uneven.
    """
    if num_balls < 0 or num_bins <= 0:
        raise ValueError("need num_balls >= 0 and num_bins > 0")
    if num_balls == 0:
        return 0.0
    mean = num_balls / num_bins
    log_n = math.log(max(num_bins, 2))
    if mean >= log_n:
        return mean + math.sqrt(2.0 * mean * log_n)
    # Light loading: ln n / ln ln n (guard the double log).
    ll = math.log(max(log_n, math.e))
    return log_n / ll


def expected_max_avg_balls_in_bins(num_balls: int,
                                   num_bins: int) -> float:
    """The max/avg ratio corresponding to
    :func:`expected_max_load_balls_in_bins`."""
    mean = num_balls / num_bins
    if mean == 0:
        raise ValueError("no balls placed")
    return expected_max_load_balls_in_bins(num_balls, num_bins) / mean


def expected_max_avg_consistent_hashing(num_nodes: int) -> float:
    """Expected max/avg for plain consistent hashing (one ring position
    per node), driven by the largest arc.

    With ``n`` uniform ring positions, the largest arc is ``~ ln n / n``
    of the circle while the mean is ``1/n``, so for many keys
    ``max/avg -> ln n`` (arc lengths dominate key-sampling noise).
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_nodes == 1:
        return 1.0
    return math.log(num_nodes)


def average_delaunay_degree(num_sites: int) -> float:
    """Average vertex degree of a planar Delaunay triangulation.

    Euler's formula bounds edges by ``3n - 3 - h`` (``h`` hull points),
    so the average degree is strictly below 6 and approaches it from
    below as ``n`` grows; the ``h ~ O(log n)`` hull of uniform points
    gives ``6 - O(log n / n)``.
    """
    if num_sites < 1:
        raise ValueError(f"num_sites must be >= 1, got {num_sites}")
    if num_sites < 3:
        return float(num_sites - 1)
    hull = max(3.0, math.log(num_sites))
    edges = 3.0 * num_sites - 3.0 - hull
    return 2.0 * edges / num_sites


def gred_expected_state(degree: float, num_sites: int) -> float:
    """Expected per-switch installed entries: physical ports plus DT
    degree plus a small relay share — O(degree), independent of flows.

    ``degree`` is the physical degree; the DT contributes
    :func:`average_delaunay_degree`; relay tuples add roughly one entry
    per multi-hop DT edge crossing the switch, empirically ~ the DT
    degree share again at Waxman densities.
    """
    return degree + 2.0 * average_delaunay_degree(num_sites) / 2.0
