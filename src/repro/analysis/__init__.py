"""Theoretical companions: closed forms the measurements are checked
against."""

from .theory import (
    average_delaunay_degree,
    expected_chord_hops,
    expected_max_avg_balls_in_bins,
    expected_max_avg_consistent_hashing,
    expected_max_load_balls_in_bins,
    gred_expected_state,
)

__all__ = [
    "expected_chord_hops",
    "expected_max_load_balls_in_bins",
    "expected_max_avg_balls_in_bins",
    "expected_max_avg_consistent_hashing",
    "average_delaunay_degree",
    "gred_expected_state",
]
