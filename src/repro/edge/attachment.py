"""Attaching edge servers to switches.

The paper's simulations attach a fixed number of servers to every switch
("each switch connects to 10 edge servers") but explicitly note that
"switches could connect to different numbers of edge servers or servers
with different capacity".  Both models are provided.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .server import EdgeServer

ServerMap = Dict[int, List[EdgeServer]]


def attach_uniform(switches: Iterable[int], servers_per_switch: int,
                   capacity: Optional[int] = None) -> ServerMap:
    """Attach ``servers_per_switch`` identical servers to every switch."""
    if servers_per_switch <= 0:
        raise ValueError(
            f"servers_per_switch must be positive, got {servers_per_switch}"
        )
    return {
        switch: [
            EdgeServer(switch=switch, serial=i, capacity=capacity)
            for i in range(servers_per_switch)
        ]
        for switch in switches
    }


def attach_heterogeneous(
    switches: Sequence[int],
    min_servers: int = 1,
    max_servers: int = 10,
    capacity_choices: Sequence[Optional[int]] = (None,),
    rng: np.random.Generator = None,
) -> ServerMap:
    """Attach a random number of servers with random capacities.

    Parameters
    ----------
    switches:
        Switch ids to populate.
    min_servers, max_servers:
        Inclusive range for the per-switch server count.
    capacity_choices:
        Pool of capacities sampled uniformly per server (``None`` means
        unbounded).
    rng:
        Random generator; defaults to a fixed seed.
    """
    if min_servers <= 0 or max_servers < min_servers:
        raise ValueError(
            f"invalid server count range [{min_servers}, {max_servers}]"
        )
    if not capacity_choices:
        raise ValueError("capacity_choices must be non-empty")
    if rng is None:
        rng = np.random.default_rng(0)
    result: ServerMap = {}
    choices = list(capacity_choices)
    for switch in switches:
        count = int(rng.integers(min_servers, max_servers + 1))
        servers = []
        for serial in range(count):
            capacity = choices[int(rng.integers(0, len(choices)))]
            servers.append(
                EdgeServer(switch=switch, serial=serial, capacity=capacity)
            )
        result[switch] = servers
    return result


def all_servers(server_map: ServerMap) -> List[EdgeServer]:
    """Flatten a server map into a list (switch order, then serial)."""
    flat: List[EdgeServer] = []
    for switch in sorted(server_map):
        flat.extend(server_map[switch])
    return flat


def total_load(server_map: ServerMap) -> int:
    """Total number of items stored across all servers."""
    return sum(s.load for s in all_servers(server_map))


def load_vector(server_map: ServerMap) -> List[int]:
    """Per-server loads, in deterministic (switch, serial) order."""
    return [s.load for s in all_servers(server_map)]
