"""Item-level anti-entropy digests for the storage plane.

Mirrors the control plane's ``plan.switch_digest`` pattern one layer
down: a server's contents are split into ``ranges`` hash ranges (by the
SHA-256 of each replica identifier) and each range is summarized as one
SHA-256 digest over its canonical rows ``(kind, copy_id, version,
origin)``.  Two parties that agree on a range's digest agree on every
stamped item *and tombstone* in that range, so a scrub sweep only
pulls item-level detail for ranges whose digests mismatch — the same
bounded-traffic trick ``Controller.reconcile`` uses for rules.

Payloads are deliberately not digested: a stamped write is immutable
under its ``(version, origin)`` stamp (the network's write clock never
reissues a version), so stamp agreement implies payload agreement.
Legacy unversioned items digest with the ``NO_STAMP`` sentinel.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from .server import NO_STAMP, EdgeServer, Stamp

#: Default number of hash ranges per server.
DEFAULT_RANGES = 16

#: One canonical digest row: ``(kind, copy_id, version, origin)`` with
#: kind ``"item"`` or ``"tomb"``.
DigestRow = Tuple[str, str, int, int]


def hash_range(copy_id: str, ranges: int = DEFAULT_RANGES) -> int:
    """The hash range (0..ranges-1) a replica identifier falls into.

    Uses the first byte of the id's SHA-256 digest, so ranges are
    uniform and independent of the virtual-position hashing.
    """
    if ranges < 1:
        raise ValueError(f"ranges must be >= 1, got {ranges}")
    first = hashlib.sha256(copy_id.encode("utf-8")).digest()[0]
    return first * ranges // 256


def digest_rows(items: Iterable[Tuple[str, Stamp]],
                tombstones: Iterable[Tuple[str, Stamp]],
                ranges: int = DEFAULT_RANGES
                ) -> Dict[int, List[DigestRow]]:
    """Canonical per-range rows for a set of stamped items and
    tombstones (rows sorted within each range)."""
    buckets: Dict[int, List[DigestRow]] = {}
    for copy_id, stamp in items:
        buckets.setdefault(hash_range(copy_id, ranges), []).append(
            ("item", copy_id, stamp[0], stamp[1]))
    for copy_id, stamp in tombstones:
        buckets.setdefault(hash_range(copy_id, ranges), []).append(
            ("tomb", copy_id, stamp[0], stamp[1]))
    for rows in buckets.values():
        rows.sort()
    return buckets


def rows_digest(rows: List[DigestRow]) -> str:
    """SHA-256 hex digest of one range's canonical rows (the
    ``switch_digest`` recipe applied to storage rows)."""
    return hashlib.sha256(repr(tuple(rows)).encode("utf-8")).hexdigest()


def server_rows(server: EdgeServer,
                ranges: int = DEFAULT_RANGES
                ) -> Dict[int, List[DigestRow]]:
    """The server's actual contents as canonical per-range rows."""
    return digest_rows(
        ((copy_id, server.stamp_of(copy_id) or NO_STAMP)
         for copy_id in server.stored_ids()),
        server.tombstones().items(),
        ranges,
    )


def server_range_digests(server: EdgeServer,
                         ranges: int = DEFAULT_RANGES
                         ) -> Dict[int, str]:
    """Per-range digests of one server's stamped contents.  Ranges
    with no rows are omitted (their digest is the empty-rows digest on
    both sides, so omission cannot mask divergence)."""
    return {r: rows_digest(rows)
            for r, rows in server_rows(server, ranges).items()}
