"""Edge servers: the storage endpoints of the edge plane.

Each switch in the SDEN connects to one or more edge servers (paper
Fig. 3).  A server stores data items up to an optional capacity; the load
statistics collected here feed the max/avg load-balance metric of the
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

ServerId = Tuple[int, int]  # (switch id, serial number at that switch)


class StorageFull(Exception):
    """Raised when a bounded-capacity server cannot accept another item."""

    def __init__(self, server_id: ServerId, capacity: int):
        super().__init__(
            f"server {server_id} is full (capacity {capacity})"
        )
        self.server_id = server_id
        self.capacity = capacity


@dataclass
class EdgeServer:
    """A single edge server attached to a switch.

    Attributes
    ----------
    switch:
        Id of the switch the server is physically attached to.
    serial:
        The switch-local serial number (0..s-1) used by the
        ``H(d) mod s`` selection rule.
    capacity:
        Maximum number of stored items, or ``None`` for unbounded (the
        large-scale load-balance experiments count items rather than
        rejecting them).
    """

    switch: int
    serial: int
    capacity: Optional[int] = None
    _items: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def server_id(self) -> ServerId:
        return (self.switch, self.serial)

    @property
    def load(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    @property
    def utilization(self) -> float:
        """Load as a fraction of capacity; 0.0 when unbounded and empty."""
        if self.capacity is None:
            return 0.0 if self.load == 0 else float("nan")
        if self.capacity == 0:
            return float("inf") if self.load else 1.0
        return self.load / self.capacity

    def is_full(self) -> bool:
        """True when a bounded server has reached capacity."""
        return self.capacity is not None and self.load >= self.capacity

    def store(self, data_id: str, payload: Any = None) -> None:
        """Store (or overwrite) an item.

        Raises
        ------
        StorageFull
            When the server is bounded and full and ``data_id`` is new.
        """
        if data_id not in self._items and self.is_full():
            raise StorageFull(self.server_id, self.capacity)
        self._items[data_id] = payload

    def store_many(self, data_ids, payloads=None) -> None:
        """Bulk :meth:`store`: same per-id semantics in order.

        The unbounded case collapses to one dict update, which is what
        lets the batch placement path store a whole per-server group
        without a Python call per item; bounded servers keep the exact
        per-id capacity check (and partial-store-then-raise behavior)
        of sequential ``store`` calls.
        """
        if self.capacity is None:
            if payloads is None:
                self._items.update(dict.fromkeys(data_ids))
            else:
                self._items.update(zip(data_ids, payloads))
            return
        if payloads is None:
            for data_id in data_ids:
                self.store(data_id)
        else:
            for data_id, payload in zip(data_ids, payloads):
                self.store(data_id, payload)

    def has(self, data_id: str) -> bool:
        return data_id in self._items

    def retrieve(self, data_id: str) -> Any:
        """Payload of a stored item.

        Raises
        ------
        KeyError
            When the item is not stored here.
        """
        return self._items[data_id]

    def delete(self, data_id: str) -> Any:
        """Remove and return an item (KeyError when absent)."""
        return self._items.pop(data_id)

    def stored_ids(self) -> Tuple[str, ...]:
        """Identifiers of all stored items (snapshot)."""
        return tuple(self._items)

    def clear(self) -> None:
        """Drop all stored items."""
        self._items.clear()
