"""Edge servers: the storage endpoints of the edge plane.

Each switch in the SDEN connects to one or more edge servers (paper
Fig. 3).  A server stores data items up to an optional capacity; the load
statistics collected here feed the max/avg load-balance metric of the
evaluation.

Durability additions (self-healing storage plane)
-------------------------------------------------
Beyond the paper's bare dict, a server carries three side tables that
make replicas repairable under faults without changing the fault-free
request path:

* **Stamps** — a monotone ``(version, origin)`` pair per stored item,
  assigned by the network's write clock when a fault state is attached.
  Stamped writes are last-writer-wins: a replay or a hint drained out
  of order can never roll an item back.
* **Tombstones** — :meth:`entomb` records a delete as a stamped
  tombstone instead of merely popping the payload, so repair and
  re-replication can tell "deleted" from "never stored" and cannot
  resurrect removed items.  Tombstones are invisible to
  :meth:`has`/:meth:`retrieve`/:attr:`load` and are garbage-collected
  by the anti-entropy scrubber once every live replica acked the
  delete.
* **Hints** — writes/deletes destined for a crashed or unreachable
  server are parked here (hinted handoff) and drained on recovery.
  Hints do not count toward :attr:`load` or capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

ServerId = Tuple[int, int]  # (switch id, serial number at that switch)

#: Monotone write stamp: ``(version, origin switch)``.  Versions come
#: from the network's write clock, so comparing stamps as tuples gives
#: a total last-writer-wins order; ``NO_STAMP`` sorts below any real
#: stamp and marks legacy (unversioned) writes.
Stamp = Tuple[int, int]

NO_STAMP: Stamp = (0, -1)


class StorageFull(Exception):
    """Raised when a bounded-capacity server cannot accept another item.

    ``stored`` names the identifiers a bulk :meth:`EdgeServer.
    store_many` call landed before hitting the capacity wall (empty for
    a scalar :meth:`EdgeServer.store`), so callers of the batch path
    can tell exactly which prefix of the group was stored.
    """

    def __init__(self, server_id: ServerId, capacity: int,
                 stored: Tuple[str, ...] = ()):
        super().__init__(
            f"server {server_id} is full (capacity {capacity})"
        )
        self.server_id = server_id
        self.capacity = capacity
        self.stored = stored


@dataclass(frozen=True)
class Hint:
    """A parked write or delete awaiting its target's recovery.

    ``op`` is ``"store"`` (payload carried) or ``"delete"`` (tombstone
    carried); ``target`` is the home server the operation could not
    reach when it was issued.
    """

    copy_id: str
    op: str
    target: ServerId
    stamp: Stamp
    payload: Any = None


@dataclass
class EdgeServer:
    """A single edge server attached to a switch.

    Attributes
    ----------
    switch:
        Id of the switch the server is physically attached to.
    serial:
        The switch-local serial number (0..s-1) used by the
        ``H(d) mod s`` selection rule.
    capacity:
        Maximum number of stored items, or ``None`` for unbounded (the
        large-scale load-balance experiments count items rather than
        rejecting them).
    """

    switch: int
    serial: int
    capacity: Optional[int] = None
    _items: Dict[str, Any] = field(default_factory=dict, repr=False)
    #: Version stamps of live items (absent = legacy unversioned).
    _stamps: Dict[str, Stamp] = field(default_factory=dict, repr=False)
    #: Stamped tombstones of deleted items.
    _tombstones: Dict[str, Stamp] = field(default_factory=dict,
                                          repr=False)
    #: Hinted-handoff queue (operations parked for other servers).
    _hints: List[Hint] = field(default_factory=list, repr=False)

    @property
    def server_id(self) -> ServerId:
        return (self.switch, self.serial)

    @property
    def load(self) -> int:
        """Number of items currently stored (tombstones and hints do
        not count)."""
        return len(self._items)

    @property
    def utilization(self) -> Optional[float]:
        """Load as a fraction of capacity.

        An unbounded server has no meaningful utilization: the sentinel
        is ``None`` when it holds items (callers must skip or handle
        it) and ``0.0`` when empty.  A zero-capacity server reports
        ``inf`` when (impossibly) loaded, else ``1.0``.
        """
        if self.capacity is None:
            return 0.0 if self.load == 0 else None
        if self.capacity == 0:
            return float("inf") if self.load else 1.0
        return self.load / self.capacity

    def is_full(self) -> bool:
        """True when a bounded server has reached capacity."""
        return self.capacity is not None and self.load >= self.capacity

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def store(self, data_id: str, payload: Any = None,
              stamp: Optional[Stamp] = None) -> bool:
        """Store (or overwrite) an item; returns whether it applied.

        An unstamped store keeps the exact legacy semantics (always
        applies, drops any recorded stamp).  A stamped store is
        last-writer-wins: it is ignored (``False``) when an existing
        stamp — live or tombstone — is strictly newer, so hint drains
        and repair traffic can replay in any order.  Either way a write
        that applies clears the item's tombstone.

        Raises
        ------
        StorageFull
            When the server is bounded and full and ``data_id`` is new.
        """
        if stamp is not None:
            current = self._stamps.get(data_id)
            if current is None:
                current = self._tombstones.get(data_id)
            if current is not None and stamp < current:
                return False
        if data_id not in self._items and self.is_full():
            raise StorageFull(self.server_id, self.capacity)
        if self._tombstones:
            self._tombstones.pop(data_id, None)
        if stamp is not None:
            self._stamps[data_id] = stamp
        elif self._stamps:
            self._stamps.pop(data_id, None)
        self._items[data_id] = payload
        return True

    def store_many(self, data_ids, payloads=None) -> None:
        """Bulk :meth:`store`: same per-id semantics in order.

        The unbounded case collapses to one dict update, which is what
        lets the batch placement path store a whole per-server group
        without a Python call per item; bounded servers keep the exact
        per-id capacity check (and partial-store-then-raise behavior)
        of sequential ``store`` calls — the raised :class:`StorageFull`
        carries the ids that landed before the wall in ``stored``.
        """
        if self.capacity is None:
            data_ids = list(data_ids)
            if self._tombstones:
                for data_id in data_ids:
                    self._tombstones.pop(data_id, None)
            if self._stamps:
                for data_id in data_ids:
                    self._stamps.pop(data_id, None)
            if payloads is None:
                self._items.update(dict.fromkeys(data_ids))
            else:
                self._items.update(zip(data_ids, payloads))
            return
        landed: List[str] = []
        if payloads is None:
            pairs = ((data_id, None) for data_id in data_ids)
        else:
            pairs = zip(data_ids, payloads)
        for data_id, payload in pairs:
            try:
                self.store(data_id, payload)
            except StorageFull as exc:
                raise StorageFull(exc.server_id, exc.capacity,
                                  stored=tuple(landed)) from None
            landed.append(data_id)

    def has(self, data_id: str) -> bool:
        return data_id in self._items

    def retrieve(self, data_id: str) -> Any:
        """Payload of a stored item.

        Raises
        ------
        KeyError
            When the item is not stored here.
        """
        return self._items[data_id]

    def delete(self, data_id: str) -> Any:
        """Remove and return an item (KeyError when absent).

        This is the *migration* primitive: the item and its stamp are
        dropped with no tombstone, because the item is moving, not
        being destroyed.  A user-facing delete goes through
        :meth:`entomb` so repair cannot resurrect it.
        """
        payload = self._items.pop(data_id)
        if self._stamps:
            self._stamps.pop(data_id, None)
        return payload

    def entomb(self, data_id: str, stamp: Stamp) -> bool:
        """Delete by tombstone: record that ``data_id`` was deleted at
        ``stamp`` and drop the live copy if the delete is newer.

        Returns whether a live item was removed.  A tombstone older
        than the live item's stamp is ignored (the item was re-created
        after the delete); an older tombstone is upgraded in place.
        """
        live = self._stamps.get(data_id)
        if live is not None and stamp < live:
            return False
        existing = self._tombstones.get(data_id)
        if existing is None or existing < stamp:
            self._tombstones[data_id] = stamp
        removed = data_id in self._items
        if removed:
            self._items.pop(data_id)
            if self._stamps:
                self._stamps.pop(data_id, None)
        return removed

    # ------------------------------------------------------------------
    # versioning / tombstone inspection
    # ------------------------------------------------------------------
    def stamp_of(self, data_id: str) -> Optional[Stamp]:
        """Stamp of a live item, or ``None`` (absent or unversioned)."""
        return self._stamps.get(data_id)

    def tombstone_of(self, data_id: str) -> Optional[Stamp]:
        """Tombstone stamp of a deleted item, or ``None``."""
        return self._tombstones.get(data_id)

    def tombstones(self) -> Dict[str, Stamp]:
        """Snapshot of all tombstones (``copy_id -> stamp``)."""
        return dict(self._tombstones)

    def gc_tombstone(self, data_id: str) -> bool:
        """Drop one tombstone (scrubber GC); returns whether it
        existed."""
        return self._tombstones.pop(data_id, None) is not None

    # ------------------------------------------------------------------
    # hinted handoff
    # ------------------------------------------------------------------
    def park_hint(self, hint: Hint) -> None:
        """Queue an operation for another (currently unreachable)
        server."""
        self._hints.append(hint)

    def hints(self) -> Tuple[Hint, ...]:
        """Snapshot of the parked hints (drain order)."""
        return tuple(self._hints)

    def take_hints(self) -> List[Hint]:
        """Remove and return all parked hints (the drain step)."""
        taken = self._hints
        self._hints = []
        return taken

    @property
    def hint_count(self) -> int:
        return len(self._hints)

    # ------------------------------------------------------------------
    # snapshots / teardown
    # ------------------------------------------------------------------
    def stored_ids(self) -> Tuple[str, ...]:
        """Identifiers of all stored items (snapshot)."""
        return tuple(self._items)

    def clear(self) -> None:
        """Drop all stored state — items, stamps, tombstones and hints
        (a crash loses everything on the box)."""
        self._items.clear()
        self._stamps.clear()
        self._tombstones.clear()
        self._hints.clear()
