"""Edge plane: edge servers, capacity models, and switch attachment."""

from .server import EdgeServer, ServerId, StorageFull
from .attachment import (
    ServerMap,
    all_servers,
    attach_heterogeneous,
    attach_uniform,
    load_vector,
    total_load,
)

__all__ = [
    "EdgeServer",
    "ServerId",
    "StorageFull",
    "ServerMap",
    "attach_uniform",
    "attach_heterogeneous",
    "all_servers",
    "total_load",
    "load_vector",
]
