"""Edge plane: edge servers, capacity models, and switch attachment."""

from .server import (
    NO_STAMP,
    EdgeServer,
    Hint,
    ServerId,
    Stamp,
    StorageFull,
)
from .antientropy import (
    DEFAULT_RANGES,
    hash_range,
    rows_digest,
    server_range_digests,
    server_rows,
)
from .attachment import (
    ServerMap,
    all_servers,
    attach_heterogeneous,
    attach_uniform,
    load_vector,
    total_load,
)

__all__ = [
    "EdgeServer",
    "Hint",
    "NO_STAMP",
    "ServerId",
    "Stamp",
    "StorageFull",
    "DEFAULT_RANGES",
    "hash_range",
    "rows_digest",
    "server_range_digests",
    "server_rows",
    "ServerMap",
    "attach_uniform",
    "attach_heterogeneous",
    "all_servers",
    "total_load",
    "load_vector",
]
