"""Request-scoped tracing: spans, head-based sampling, exporters.

A :class:`Span` is one timed operation (trace id, span id, parent id,
name, attrs, monotonic start/end on the shared :mod:`repro.obs.clock`);
a :class:`SpanRecorder` collects spans for sampled requests and keeps a
context stack so nested operations attach to their parent
automatically.  Sampling is **head-based**: the decision is made once
when a trace starts (a deterministic hash of the request key against
``sample_rate``) and every descendant span inherits it, so a sampled
request is always recorded end to end and an unsampled one costs a
single integer comparison per span site.

Components that model *virtual* time (the resilience pipeline, the SLO
loadtest) pass explicit ``start``/``end`` timestamps so their traces
are deterministic and bit-identical across runs; everything else reads
the shared monotonic clock.

Exports: JSON Lines (one span per line — the streamable form) and the
Chrome trace-event format (open in ``chrome://tracing`` or Perfetto).
Both round-trip: :func:`load_jsonl` / :func:`load_chrome` rebuild the
spans, and :func:`reconstruct` rebuilds one request's tree.

The module-level **default recorder** starts unset (tracing off);
:func:`enable_tracing` installs one, and instrumented code guards every
span site with ``recorder() is not None`` so the off path costs one
global read.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence, Union

from .clock import now as _now

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanRecorder",
    "default_recorder",
    "disable_tracing",
    "enable_tracing",
    "lifecycle",
    "load_chrome",
    "load_jsonl",
    "reconstruct",
    "set_default_recorder",
    "to_chrome",
    "to_jsonl",
    "traces",
    "write_chrome",
    "write_jsonl",
]


@dataclass
class Span:
    """One timed operation inside a trace."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end, or ``None`` while open."""
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            span_id=int(data["span_id"]),
            parent_id=(None if data.get("parent_id") is None
                       else int(data["parent_id"])),
            name=data["name"],
            start=float(data["start"]),
            end=(None if data.get("end") is None
                 else float(data["end"])),
            attrs=dict(data.get("attrs") or {}),
            status=data.get("status", "ok"),
        )


class _NullSpan:
    """Shared no-op handle for unsampled traces and disabled tracing.

    Implements the full write surface of :class:`_SpanHandle` so span
    sites never branch on whether the request is sampled.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def end_at(self, when: float) -> None:
        pass

    def fail(self, status: str = "error") -> None:
        pass

    @property
    def recording(self) -> bool:
        return False


#: The singleton null span handle.
NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager around one live :class:`Span`.

    Entering pushes the span on the recorder's context stack (children
    created inside attach to it); exiting pops and stamps ``end`` with
    the recorder clock unless :meth:`end_at` preset an explicit
    (virtual) end time.
    """

    __slots__ = ("_recorder", "span", "_preset_end")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self.span = span
        self._preset_end: Optional[float] = None

    def __enter__(self) -> "_SpanHandle":
        self._recorder._push(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self.span.status == "ok":
            self.span.status = "error"
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._recorder._pop(self.span, self._preset_end)
        return False

    def set(self, **attrs: Any) -> None:
        """Merge attributes into the span."""
        self.span.attrs.update(attrs)

    def end_at(self, when: float) -> None:
        """Preset an explicit (virtual-time) end timestamp."""
        self._preset_end = float(when)

    def fail(self, status: str = "error") -> None:
        self.span.status = status

    @property
    def recording(self) -> bool:
        return True


class _SuppressedTrace:
    """Context manager marking an *unsampled* trace: while entered,
    every nested ``span()`` call returns :data:`NULL_SPAN`, so one
    head decision silences the whole request."""

    __slots__ = ("_recorder",)

    def __init__(self, recorder: "SpanRecorder") -> None:
        self._recorder = recorder

    def __enter__(self) -> _NullSpan:
        self._recorder._suppressed += 1
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._suppressed -= 1
        return False


class SpanRecorder:
    """Collects spans for sampled traces.

    Parameters
    ----------
    sample_rate:
        Fraction of traces recorded (head-based).  ``1.0`` records
        everything; ``0.0`` nothing.  The decision hashes the trace
        *key* (usually the data id), so the same request is sampled
        consistently across the scalar and batch paths.
    capacity:
        Maximum retained spans; beyond it new spans are counted in
        :attr:`dropped` instead of stored (head sampling keeps whole
        traces — a trace that started under capacity may still lose
        its tail, which ``dropped`` makes visible).
    clock:
        Timestamp source for spans without explicit times (defaults to
        the shared monotonic clock, so span durations and
        :class:`~repro.obs.PhaseTimer` histograms are comparable).
    """

    def __init__(self, sample_rate: float = 1.0, capacity: int = 65536,
                 clock=_now) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = sample_rate
        self.capacity = capacity
        self._clock = clock
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._suppressed = 0
        self._next_span_id = 0
        self._next_trace = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sampled(self, key: Optional[str]) -> bool:
        """The head-based sampling decision for a trace keyed ``key``
        (deterministic: the same key always decides the same way)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        if key is None:
            # Keyless traces fall back to a sequence-based decision.
            key = f"#{self._next_trace}"
        bucket = zlib.crc32(key.encode("utf-8")) % 1_000_000
        return bucket < int(self.sample_rate * 1_000_000)

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------
    def trace(self, name: str, key: Optional[str] = None,
              start: Optional[float] = None, **attrs: Any
              ) -> Union[_SpanHandle, _SuppressedTrace]:
        """Start a new trace (root span) — the head sampling point.

        Returns a context manager; when the trace is not sampled it
        suppresses every nested span of the request.
        """
        if self._suppressed or not self.sampled(key):
            return _SuppressedTrace(self)
        trace_id = f"t{self._next_trace:06d}"
        self._next_trace += 1
        if key is not None:
            attrs.setdefault("key", key)
        return self._handle(trace_id, None, name, start, attrs)

    def span(self, name: str, start: Optional[float] = None,
             **attrs: Any) -> Union[_SpanHandle, _SuppressedTrace]:
        """A span under the current context (a new root trace when no
        trace is active — sampled by ``name``)."""
        if self._suppressed:
            return _SuppressedTrace(self)
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            return self.trace(name, key=name, start=start, **attrs)
        return self._handle(parent.trace_id, parent.span_id, name,
                            start, attrs)

    def record_trace(self, name: str, key: Optional[str] = None,
                     start: Optional[float] = None,
                     end: Optional[float] = None, status: str = "ok",
                     **attrs: Any) -> Optional[Span]:
        """Start a root span *without* touching the context stack.

        For components that narrate a request themselves with explicit
        (virtual) timestamps — the resilience pipeline, the SLO
        loadtest — and attach children via :meth:`add_span` with an
        explicit ``parent``.  The returned span is live: the caller
        mutates ``end``/``attrs``/``status`` as the request completes.
        Returns ``None`` when the trace is not sampled.
        """
        if self._suppressed or not self.sampled(key):
            return None
        trace_id = f"t{self._next_trace:06d}"
        self._next_trace += 1
        if key is not None:
            attrs.setdefault("key", key)
        span = Span(
            trace_id=trace_id,
            span_id=self._take_id(),
            parent_id=None,
            name=name,
            start=(self._clock() if start is None else float(start)),
            end=None if end is None else float(end),
            attrs=attrs,
            status=status,
        )
        self._store(span)
        return span

    def suppress(self) -> _SuppressedTrace:
        """Silence every span site entered under the returned context
        manager.  Used by wrappers that re-narrate the wrapped call's
        work with their own (virtual-time) spans."""
        return _SuppressedTrace(self)

    def add_span(self, name: str, start: float, end: float,
                 parent: Optional[Span] = None, status: str = "ok",
                 **attrs: Any) -> Optional[Span]:
        """Record one fully-formed span (explicit virtual times) under
        ``parent`` (the current context when omitted).  Returns the
        span, or ``None`` when no trace is active / not sampled."""
        if self._suppressed:
            return None
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        if parent is None:
            return None
        span = Span(
            trace_id=parent.trace_id,
            span_id=self._take_id(),
            parent_id=parent.span_id,
            name=name,
            start=float(start),
            end=float(end),
            attrs=attrs,
            status=status,
        )
        self._store(span)
        return span

    def current(self) -> Optional[Span]:
        """The innermost active span, or ``None``."""
        return self._stack[-1] if self._stack else None

    @property
    def active(self) -> bool:
        """Whether a sampled trace is currently open."""
        return bool(self._stack)

    # ------------------------------------------------------------------
    # collected state
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All retained spans in creation order."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        """Drop retained spans (open context survives; its spans will
        record into the cleared list)."""
        self._spans.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _take_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def _handle(self, trace_id: str, parent_id: Optional[int],
                name: str, start: Optional[float],
                attrs: Dict[str, Any]) -> _SpanHandle:
        span = Span(
            trace_id=trace_id,
            span_id=self._take_id(),
            parent_id=parent_id,
            name=name,
            start=self._clock() if start is None else float(start),
            attrs=attrs,
        )
        return _SpanHandle(self, span)

    def _push(self, span: Span) -> None:
        self._stack.append(span)
        self._store(span)

    def _pop(self, span: Span, preset_end: Optional[float]) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if span.end is None:
            span.end = (self._clock() if preset_end is None
                        else preset_end)

    def _store(self, span: Span) -> None:
        if len(self._spans) >= self.capacity:
            self.dropped += 1
            return
        self._spans.append(span)


# ----------------------------------------------------------------------
# module default recorder
# ----------------------------------------------------------------------
_default_recorder: Optional[SpanRecorder] = None


def default_recorder() -> Optional[SpanRecorder]:
    """The recorder instrumented span sites record into, or ``None``
    while tracing is off (the default)."""
    return _default_recorder


def set_default_recorder(recorder: Optional[SpanRecorder]
                         ) -> Optional[SpanRecorder]:
    """Install ``recorder`` as the default (``None`` turns tracing
    off); returns the previous one so callers can restore it."""
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    return previous


def enable_tracing(sample_rate: float = 1.0,
                   capacity: int = 65536) -> SpanRecorder:
    """Turn request tracing on with a fresh recorder; returns it."""
    recorder = SpanRecorder(sample_rate=sample_rate, capacity=capacity)
    set_default_recorder(recorder)
    return recorder


def disable_tracing() -> Optional[SpanRecorder]:
    """Turn request tracing off; returns the recorder that was active
    (its spans remain readable)."""
    return set_default_recorder(None)


# ----------------------------------------------------------------------
# export / import
# ----------------------------------------------------------------------
def _as_spans(source: Union[SpanRecorder, Sequence[Span]]) -> List[Span]:
    if isinstance(source, SpanRecorder):
        return source.spans()
    return list(source)


def to_jsonl(source: Union[SpanRecorder, Sequence[Span]]) -> str:
    """The spans as JSON Lines (one span object per line)."""
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True, default=str)
        for span in _as_spans(source))


def write_jsonl(source: Union[SpanRecorder, Sequence[Span]],
                destination: Union[str, IO[str]]) -> int:
    """Write the spans as JSONL; returns the span count."""
    spans = _as_spans(source)
    text = to_jsonl(spans)
    if text:
        text += "\n"
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(spans)


def load_jsonl(source: Union[str, IO[str]]) -> List[Span]:
    """Parse a JSONL span stream back into spans."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def to_chrome(source: Union[SpanRecorder, Sequence[Span]]
              ) -> Dict[str, Any]:
    """The spans in Chrome trace-event format (``chrome://tracing``,
    Perfetto).  Complete spans become ``X`` (duration) events; open
    spans become ``i`` (instant) events.  Span identity rides in
    ``args`` so :func:`load_chrome` can round-trip."""
    spans = _as_spans(source)
    origin = min((s.start for s in spans), default=0.0)
    tids = {}
    events = []
    for span in spans:
        tid = tids.setdefault(span.trace_id, len(tids) + 1)
        args = dict(span.attrs)
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        event = {
            "name": span.name,
            "cat": span.name.split(".")[0],
            "pid": 1,
            "tid": tid,
            "ts": (span.start - origin) * 1e6,
            "args": args,
        }
        if span.end is None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * 1e6
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "gred-trace-v1", "origin": origin},
    }


def write_chrome(source: Union[SpanRecorder, Sequence[Span]],
                 destination: Union[str, IO[str]]) -> int:
    """Write the spans as a Chrome trace JSON file; returns the span
    count."""
    spans = _as_spans(source)
    text = json.dumps(to_chrome(spans), sort_keys=True, default=str)
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(spans)


def load_chrome(source: Union[str, IO[str]]) -> List[Span]:
    """Rebuild spans from a Chrome trace written by
    :func:`write_chrome`."""
    if hasattr(source, "read"):
        dump = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            dump = json.load(handle)
    origin = float(dump.get("otherData", {}).get("origin", 0.0))
    spans = []
    for event in dump.get("traceEvents", []):
        args = dict(event.get("args", {}))
        trace_id = args.pop("trace_id", None)
        if trace_id is None:
            continue  # not one of ours
        span_id = int(args.pop("span_id"))
        parent_id = args.pop("parent_id", None)
        status = args.pop("status", "ok")
        start = origin + float(event["ts"]) / 1e6
        end = None
        if event.get("ph") == "X":
            end = start + float(event.get("dur", 0.0)) / 1e6
        spans.append(Span(
            trace_id=str(trace_id), span_id=span_id,
            parent_id=(None if parent_id is None else int(parent_id)),
            name=event["name"], start=start, end=end, attrs=args,
            status=status,
        ))
    return spans


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def traces(spans: Sequence[Span]) -> Dict[str, List[Span]]:
    """Spans grouped by trace id (each group in span-id order)."""
    groups: Dict[str, List[Span]] = {}
    for span in spans:
        groups.setdefault(span.trace_id, []).append(span)
    for group in groups.values():
        group.sort(key=lambda s: s.span_id)
    return groups


def reconstruct(spans: Sequence[Span],
                trace_id: str) -> Optional[Dict[str, Any]]:
    """Rebuild one trace as a nested tree ``{"span": Span,
    "children": [...]}`` rooted at its parentless span, or ``None``
    when the trace id is unknown."""
    group = traces(spans).get(trace_id)
    if not group:
        return None
    nodes = {span.span_id: {"span": span, "children": []}
             for span in group}
    root = None
    for span in group:
        node = nodes[span.span_id]
        parent = (nodes.get(span.parent_id)
                  if span.parent_id is not None else None)
        if parent is None:
            if root is None:
                root = node
        else:
            parent["children"].append(node)
    return root


def lifecycle(spans: Sequence[Span], trace_id: str) -> Dict[str, Any]:
    """Summary of one request's journey: root name/duration, the set
    of stage names seen, and whether the lifecycle is complete (root
    span closed)."""
    tree = reconstruct(spans, trace_id)
    if tree is None:
        return {"trace_id": trace_id, "complete": False, "stages": []}
    root = tree["span"]
    stages = sorted({s.name for s in traces(spans)[trace_id]})
    return {
        "trace_id": trace_id,
        "root": root.name,
        "key": root.attrs.get("key"),
        "complete": root.end is not None,
        "duration": root.duration,
        "status": root.status,
        "spans": len(traces(spans)[trace_id]),
        "stages": stages,
    }
