"""A structured, severity-leveled, memory-bounded event log.

Where metrics aggregate, events narrate: one :class:`Event` per notable
occurrence (switch join, link failure, range extension, overload sweep)
with arbitrary structured fields.  The log is a ring buffer — old
events fall off the back once ``capacity`` is reached, so a long-lived
deployment cannot grow without bound — and serializes to JSON Lines
for ingestion by standard log tooling.
"""

from __future__ import annotations

import enum
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union


class EventLevel(enum.IntEnum):
    """Severity, ordered so levels can be compared/filtered."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40


@dataclass(frozen=True)
class Event:
    """One structured occurrence."""

    sequence: int
    timestamp: float
    level: EventLevel
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "seq": self.sequence,
            "ts": self.timestamp,
            "level": self.level.name.lower(),
            "event": self.name,
        }
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class EventLog:
    """Collects events in a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Maximum retained events; the oldest are dropped beyond this
        (``dropped`` counts how many were lost).
    min_level:
        Events below this severity are ignored at ``log`` time.
    clock:
        Injectable time source (defaults to ``time.time``), so tests
        can pin timestamps.
    """

    def __init__(self, capacity: int = 4096,
                 min_level: EventLevel = EventLevel.DEBUG,
                 clock=time.time) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.min_level = min_level
        self._clock = clock
        self._events: deque = deque(maxlen=capacity)
        self._sequence = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    def log(self, level: EventLevel, name: str, **fields: Any) -> None:
        """Append one event (ignored when below ``min_level``)."""
        level = EventLevel(level)
        if level < self.min_level:
            return
        if len(self._events) == self.capacity:
            self._dropped += 1
        self._events.append(Event(
            sequence=self._sequence,
            timestamp=self._clock(),
            level=level,
            name=name,
            fields=fields,
        ))
        self._sequence += 1

    def debug(self, name: str, **fields: Any) -> None:
        self.log(EventLevel.DEBUG, name, **fields)

    def info(self, name: str, **fields: Any) -> None:
        self.log(EventLevel.INFO, name, **fields)

    def warning(self, name: str, **fields: Any) -> None:
        self.log(EventLevel.WARNING, name, **fields)

    def error(self, name: str, **fields: Any) -> None:
        self.log(EventLevel.ERROR, name, **fields)

    # ------------------------------------------------------------------
    def events(self, name: Optional[str] = None,
               min_level: Optional[EventLevel] = None) -> List[Event]:
        """Retained events, optionally filtered by name and severity."""
        out: List[Event] = list(self._events)
        if name is not None:
            out = [e for e in out if e.name == name]
        if min_level is not None:
            out = [e for e in out if e.level >= min_level]
        return out

    @property
    def dropped(self) -> int:
        """Events lost to the capacity bound."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop everything and restart the sequence counter."""
        self._events.clear()
        self._sequence = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    def to_jsonl(self, name: Optional[str] = None,
                 min_level: Optional[EventLevel] = None) -> str:
        """The (filtered) events as JSON Lines text."""
        return "\n".join(e.to_json()
                         for e in self.events(name, min_level))

    def write(self, destination: Union[str, IO[str]]) -> int:
        """Write all retained events as JSONL; returns the count."""
        events = self.events()
        text = "\n".join(e.to_json() for e in events)
        if text:
            text += "\n"
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        return len(events)
