"""The single monotonic clock shared by phase timers and spans.

Phase timings (:class:`repro.obs.PhaseTimer`) and span durations
(:mod:`repro.obs.spans`) must be comparable — an operator reading a
trace next to a phase histogram should be able to subtract one from the
other.  Both therefore read the same monotonic source, defined exactly
once here.  Components that model *virtual* time (the resilience
pipeline, the SLO loadtest) bypass the clock by passing explicit
timestamps instead.
"""

from __future__ import annotations

import time

#: The shared monotonic source.  ``time.perf_counter`` is monotonic,
#: unaffected by wall-clock adjustments, and the highest-resolution
#: timer Python exposes portably.
monotonic = time.perf_counter


def now() -> float:
    """Seconds on the shared monotonic clock (arbitrary epoch)."""
    return monotonic()
