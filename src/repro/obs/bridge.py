"""Bridges between the telemetry layer and the per-packet tracer.

The data plane's :class:`repro.dataplane.Tracer` narrates individual
packets; :class:`CountingTracer` additionally aggregates every trace
event into per-kind counters of a metrics registry, so a traced
debugging session and fleet-wide telemetry come from one instrument
stream.
"""

from __future__ import annotations

from typing import Any, Optional

from ..dataplane.tracing import TraceEventKind, Tracer


class CountingTracer(Tracer):
    """A :class:`Tracer` that mirrors every event into counters.

    Each recorded event increments
    ``dataplane.trace_events{kind=<event kind>}`` in ``registry`` (the
    default registry when omitted, resolved at record time).
    """

    def __init__(self, registry=None) -> None:
        super().__init__()
        self._registry = registry

    def record(self, kind: TraceEventKind, switch: int, data_id: str,
               **details: Any) -> None:
        super().record(kind, switch, data_id, **details)
        registry = self._registry
        if registry is None:
            from . import default_registry

            registry = default_registry()
        if registry.enabled:
            registry.counter(
                "dataplane.trace_events",
                help="Trace events bridged from the data-plane tracer",
                kind=kind.value,
            ).inc()
