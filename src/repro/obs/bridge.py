"""Bridges between the telemetry layer and the per-packet tracer.

The data plane's :class:`repro.dataplane.Tracer` narrates individual
packets; :class:`CountingTracer` additionally aggregates every trace
event into per-kind counters of a metrics registry, so a traced
debugging session and fleet-wide telemetry come from one instrument
stream.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..dataplane.tracing import TraceEventKind, Tracer
from .spans import Span, SpanRecorder


class CountingTracer(Tracer):
    """A :class:`Tracer` that mirrors every event into counters.

    Each recorded event increments
    ``dataplane.trace_events{kind=<event kind>}`` in ``registry`` (the
    default registry when omitted, resolved at record time).
    """

    def __init__(self, registry=None) -> None:
        super().__init__()
        self._registry = registry

    def record(self, kind: TraceEventKind, switch: int, data_id: str,
               **details: Any) -> None:
        super().record(kind, switch, data_id, **details)
        registry = self._registry
        if registry is None:
            from . import default_registry

            registry = default_registry()
        if registry.enabled:
            registry.counter(
                "dataplane.trace_events",
                help="Trace events bridged from the data-plane tracer",
                kind=kind.value,
            ).inc()


def spans_from_tracer(recorder: SpanRecorder, tracer: Tracer,
                      parent: Optional[Span] = None,
                      data_id: Optional[str] = None,
                      start: Optional[float] = None,
                      hop_seconds: float = 1e-6) -> List[Span]:
    """Promote a packet's tracer events to per-hop child spans.

    Each forwarding decision becomes one span named
    ``hop.<event kind>`` under ``parent`` (the recorder's current span
    when omitted).  Simulated forwarding has no measurable per-hop
    wall time, so hops are laid out sequentially from the parent's
    start at ``hop_seconds`` apiece — the sequence/topology is the
    signal, the synthetic durations just make the hops render in order
    in ``chrome://tracing``.
    """
    if parent is None:
        parent = recorder.current()
    if parent is None:
        return []
    base = parent.start if start is None else float(start)
    spans: List[Span] = []
    for i, event in enumerate(tracer.events(data_id)):
        attrs = {"switch": event.switch, "data_id": event.data_id}
        attrs.update(event.details)
        span = recorder.add_span(
            f"hop.{event.kind.value}",
            start=base + i * hop_seconds,
            end=base + (i + 1) * hop_seconds,
            parent=parent,
            **attrs,
        )
        if span is not None:
            spans.append(span)
    return spans
