"""Exporters: Prometheus-style text exposition and JSON dumps.

Both work from the registry's :meth:`~repro.obs.MetricsRegistry.to_dict`
representation, so a dump written by ``gred experiment --metrics-out``
can later be re-rendered as exposition text by ``gred metrics --from``
without the originating process.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, IO, List, Optional, Sequence, Union

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix applied to every exposed metric name.
METRIC_NAMESPACE = "gred"


def _metric_name(name: str) -> str:
    """Sanitize a dotted instrument name into a Prometheus name."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized.startswith(METRIC_NAMESPACE + "_"):
        sanitized = f"{METRIC_NAMESPACE}_{sanitized}"
    return sanitized


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_NAME_RE.sub("_", k)}="{v}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _as_dict(registry_or_dict) -> Dict[str, Any]:
    if isinstance(registry_or_dict, dict):
        return registry_or_dict
    return registry_or_dict.to_dict()


def render_prometheus(registry_or_dict) -> str:
    """Prometheus text-exposition rendering of a registry (or of a
    previously saved ``to_dict`` dump).

    Histograms expose the standard cumulative ``_bucket``/``_sum``/
    ``_count`` series; the reservoir percentiles are added as a comment
    line per histogram (they are not part of the exposition format).
    """
    dump = _as_dict(registry_or_dict)
    lines: List[str] = []
    typed = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for counter in dump.get("counters", []):
        name = _metric_name(counter["name"])
        declare(name, "counter")
        lines.append(f"{name}{_label_suffix(counter.get('labels', {}))} "
                     f"{_fmt(counter['value'])}")
    for gauge in dump.get("gauges", []):
        name = _metric_name(gauge["name"])
        declare(name, "gauge")
        lines.append(f"{name}{_label_suffix(gauge.get('labels', {}))} "
                     f"{_fmt(gauge['value'])}")
    for hist in dump.get("histograms", []):
        name = _metric_name(hist["name"])
        declare(name, "histogram")
        labels = hist.get("labels", {})
        cumulative = 0
        for bound, count in zip(hist["buckets"],
                                hist["bucket_counts"]):
            cumulative += count
            le = dict(labels, le=_fmt(bound))
            lines.append(f"{name}_bucket{_label_suffix(le)} "
                         f"{cumulative}")
        cumulative += hist["bucket_counts"][-1]
        inf = dict(labels, le="+Inf")
        lines.append(f"{name}_bucket{_label_suffix(inf)} {cumulative}")
        lines.append(f"{name}_sum{_label_suffix(labels)} "
                     f"{_fmt(hist['sum'])}")
        lines.append(f"{name}_count{_label_suffix(labels)} "
                     f"{hist['count']}")
        lines.append(f"# {name}{_label_suffix(labels)} "
                     f"p50={_fmt(hist.get('p50'))} "
                     f"p90={_fmt(hist.get('p90'))} "
                     f"p99={_fmt(hist.get('p99'))}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry_or_dict, indent: int = 2) -> str:
    """The registry dump as a JSON string."""
    return json.dumps(_as_dict(registry_or_dict), indent=indent,
                      sort_keys=True, default=str)


def write_json(registry_or_dict,
               destination: Union[str, IO[str]],
               indent: int = 2) -> None:
    """Write the JSON dump to a path or open file."""
    text = to_json(registry_or_dict, indent=indent) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)


def histogram_quantile(buckets: Sequence[float],
                       bucket_counts: Sequence[int],
                       q: float) -> Optional[float]:
    """Prometheus-style ``histogram_quantile``: the ``q``-quantile
    estimated from bucket bounds and per-bucket counts by linear
    interpolation inside the bucket the quantile falls in.

    ``bucket_counts`` are the *non-cumulative* counts as stored by
    :meth:`~repro.obs.Histogram.bucket_counts` (``+Inf`` last, so one
    longer than ``buckets``).  Like Prometheus: a quantile in the
    ``+Inf`` bucket reports the highest finite bound; interpolation in
    the first bucket assumes a lower edge of 0.  Returns ``None`` for
    an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    counts = [int(c) for c in bucket_counts]
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts[:len(buckets)]):
        cumulative += count
        if cumulative >= rank:
            upper = float(buckets[i])
            lower = float(buckets[i - 1]) if i > 0 else 0.0
            if count == 0:
                return upper
            frac = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * frac
    # Quantile lands in the +Inf bucket: clamp to the highest finite
    # bound (Prometheus behaviour).
    return float(buckets[-1]) if buckets else None


def dump_quantiles(registry_or_dict, name: str,
                   quantiles: Sequence[float] = (0.5, 0.9, 0.99),
                   ) -> Dict[str, Optional[float]]:
    """Bucket-interpolated quantiles for every histogram series named
    ``name`` in a registry (or saved dump), keyed ``q<percent>`` (with
    a label suffix when the series is labeled)."""
    dump = _as_dict(registry_or_dict)
    out: Dict[str, Optional[float]] = {}
    for hist in dump.get("histograms", []):
        if hist["name"] != name:
            continue
        suffix = _label_suffix(hist.get("labels", {}))
        for q in quantiles:
            key = f"q{q * 100:g}{suffix}"
            out[key] = histogram_quantile(
                hist["buckets"], hist["bucket_counts"], q)
    return out


def burn_rate(bad: float, total: float, objective: float) -> float:
    """SLO burn rate: observed failure fraction over the error budget.

    ``objective`` is the success target (e.g. ``0.99``); the budget is
    ``1 - objective``.  A burn rate of 1.0 consumes the budget exactly
    as fast as allowed, >1 is burning too fast, 0 means no failures.
    Returns 0.0 when nothing was observed.
    """
    if not 0.0 <= objective < 1.0:
        raise ValueError(
            f"objective must be in [0, 1), got {objective}")
    if total <= 0:
        return 0.0
    return (bad / total) / (1.0 - objective)


def load_json(source: Union[str, IO[str]]) -> Dict[str, Any]:
    """Load a dump previously written by :func:`write_json`."""
    if hasattr(source, "read"):
        dump = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            dump = json.load(handle)
    if not isinstance(dump, dict) or "counters" not in dump:
        raise ValueError("not a gred metrics dump")
    return dump
