"""Phase timers: wall-time histograms as context managers/decorators.

The control plane times its pipeline phases with these::

    with registry.timer("controlplane.phase.dt_build"):
        self._build_dt(participants)

or, for a whole function::

    @timed("embedding.m_position")
    def m_position(...): ...

A timer on a disabled registry never reads the clock — entering and
leaving costs two attribute checks.

Timers read the shared monotonic clock (:mod:`repro.obs.clock`) — the
same source spans use — so a phase histogram and a span duration are
directly comparable.  One timer instance is safe to re-enter (e.g. as a
decorator on a recursive function): starts are kept on a stack, so an
inner timing never clobbers the outer one.
"""

from __future__ import annotations

import functools
from typing import Any, List, Optional, Sequence

from .clock import now as _now


class PhaseTimer:
    """Context manager/decorator recording elapsed seconds into a
    histogram of ``registry``.

    Attributes
    ----------
    elapsed:
        Seconds of the most recent completed timing, or ``None`` when
        nothing was timed (e.g. the registry was disabled).
    """

    def __init__(self, registry, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 **labels: Any) -> None:
        self._registry = registry
        self._name = name
        self._help = help
        self._buckets = buckets
        self._labels = labels
        # A stack, not a single slot: the same instance may be
        # re-entered (recursive decorated function) and each nesting
        # level owns its own start.  A sentinel marks entries made
        # while the registry was disabled so enter/exit stay paired.
        self._starts: List[Optional[float]] = []
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self._starts.append(_now() if self._registry.enabled else None)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        start = self._starts.pop() if self._starts else None
        if start is not None:
            self.elapsed = _now() - start
            self._registry.histogram(
                self._name, help=self._help, buckets=self._buckets,
                **self._labels,
            ).observe(self.elapsed)

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        return wrapper


def timed(name: str, help: str = "",
          buckets: Optional[Sequence[float]] = None, **labels: Any):
    """Decorator timing every call of a function into the *default*
    registry (resolved at call time, so enabling telemetry later still
    takes effect)."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from . import default_registry

            registry = default_registry()
            if not registry.enabled:
                return fn(*args, **kwargs)
            with PhaseTimer(registry, name, help=help, buckets=buckets,
                            **labels):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
