"""Phase timers: wall-time histograms as context managers/decorators.

The control plane times its pipeline phases with these::

    with registry.timer("controlplane.phase.dt_build"):
        self._build_dt(participants)

or, for a whole function::

    @timed("embedding.m_position")
    def m_position(...): ...

A timer on a disabled registry never calls ``perf_counter`` — entering
and leaving costs two attribute checks.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Optional, Sequence


class PhaseTimer:
    """Context manager/decorator recording elapsed seconds into a
    histogram of ``registry``.

    Attributes
    ----------
    elapsed:
        Seconds of the most recent completed timing, or ``None`` when
        nothing was timed (e.g. the registry was disabled).
    """

    def __init__(self, registry, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 **labels: Any) -> None:
        self._registry = registry
        self._name = name
        self._help = help
        self._buckets = buckets
        self._labels = labels
        self._start: Optional[float] = None
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        if self._registry.enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None
            self._registry.histogram(
                self._name, help=self._help, buckets=self._buckets,
                **self._labels,
            ).observe(self.elapsed)

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        return wrapper


def timed(name: str, help: str = "",
          buckets: Optional[Sequence[float]] = None, **labels: Any):
    """Decorator timing every call of a function into the *default*
    registry (resolved at call time, so enabling telemetry later still
    takes effect)."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from . import default_registry

            registry = default_registry()
            if not registry.enabled:
                return fn(*args, **kwargs)
            with PhaseTimer(registry, name, help=help, buckets=buckets,
                            **labels):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
