"""Metric instruments and the registry that owns them.

Three instrument kinds (mirroring the Prometheus data model, which the
exporters speak):

* :class:`Counter` — a monotonically increasing count (requests routed,
  rules installed, items migrated);
* :class:`Gauge` — a value that goes up and down (per-server load,
  simulator queue depth);
* :class:`Histogram` — a distribution with configurable bucket bounds
  plus p50/p90/p99 summaries from a bounded reservoir (phase wall
  times, hops per request, payload sizes).

Instruments live in a :class:`MetricsRegistry`.  A *disabled* registry
hands out a shared null instrument whose methods do nothing, so
instrumented hot paths cost one attribute check when telemetry is off —
the repository-wide default registry (:mod:`repro.obs`) starts
disabled for exactly this reason.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default bucket bounds (seconds) for wall-time histograms.
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket bounds for hop-count histograms.
HOP_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64,
)

#: Default bucket bounds for payload/message sizes (bytes).
BYTE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Dict[str, Any]) -> LabelPairs:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity of every instrument."""

    kind: str = "instrument"

    def __init__(self, name: str, help: str = "",
                 labels: LabelPairs = ()) -> None:
        self.name = name
        self.help = help
        self.labels: LabelPairs = labels

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: LabelPairs = ()) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": self.label_dict,
                "value": self._value}


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: LabelPairs = ()) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": self.label_dict,
                "value": self._value}


class Histogram(_Instrument):
    """A distribution: cumulative buckets plus percentile summaries.

    ``buckets`` are the upper bounds (``le``) of the finite buckets; an
    implicit ``+Inf`` bucket always exists.  Percentiles come from a
    bounded reservoir of the most recent observations (nearest-rank
    over up to ``reservoir_size`` values), so memory stays constant no
    matter how long the process runs.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 reservoir_size: int = 2048,
                 labels: LabelPairs = ()) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(buckets if buckets is not None
                              else TIME_BUCKETS))
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly "
                             f"increasing: {bounds}")
        self.buckets: Tuple[float, ...] = bounds
        # One count per finite bucket plus the +Inf overflow bucket.
        self._bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._reservoir: deque = deque(maxlen=reservoir_size)

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self._bucket_counts[index] += 1
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        self._reservoir.append(value)

    def observe_many(self, values) -> None:
        """Observe a batch of values with numpy reductions.

        For integer-valued observations (hop counts, byte sizes — the
        batch fast path's cases) the resulting state is *identical* to
        observing each value sequentially: integers are exact in
        float64 under any summation order, bucket indexing matches the
        scalar ``value <= bound`` scan, and the reservoir sees the
        values in the same order ``values`` carries them.
        """
        import numpy as np

        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        # First bound with value <= bound == count of bounds < value.
        idx = np.searchsorted(np.asarray(self.buckets), arr,
                              side="left")
        counts = np.bincount(idx, minlength=len(self.buckets) + 1)
        for i, c in enumerate(counts):
            if c:
                self._bucket_counts[i] += int(c)
        self._count += int(arr.size)
        self._sum += float(np.sum(arr))
        lo = float(np.min(arr))
        hi = float(np.max(arr))
        if self._min is None or lo < self._min:
            self._min = lo
        if self._max is None or hi > self._max:
            self._max = hi
        self._reservoir.extend(arr.tolist())

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._count if self._count else None

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last."""
        return list(self._bucket_counts)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile (``q`` in [0, 1]) over the
        reservoir; ``None`` when nothing was observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, Any]:
        """count/sum/mean/min/max plus p50/p90/p99."""
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> Dict[str, Any]:
        out = {"name": self.name, "labels": self.label_dict,
               "buckets": list(self.buckets),
               "bucket_counts": self.bucket_counts()}
        out.update(self.summary())
        return out


class NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry.

    Implements the full write surface of all three instrument kinds so
    instrumented code never needs to branch on whether telemetry is on.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


#: The singleton null instrument.
NULL_INSTRUMENT = NullInstrument()


#: Grid resolution of :func:`demand_region` (regions 0..63).
DEMAND_GRID = 8


def demand_region(x: float, y: float, grid: int = DEMAND_GRID,
                  extent: float = 1.0) -> int:
    """Map a virtual-space position to a coarse region id.

    The unit square is cut into a ``grid x grid`` lattice (row-major,
    ``0 .. grid*grid - 1``); out-of-range coordinates clamp to the edge
    cells.  The demand-adaptive embedding work (ROADMAP) consumes
    these region ids as its spatial access signal.
    """
    col = min(grid - 1, max(0, int(x / extent * grid)))
    row = min(grid - 1, max(0, int(y / extent * grid)))
    return row * grid + col


class DemandTracker:
    """Per-item access counts for the demand-adaptive embedding signal.

    A plain dict of ``item id -> access count``, fed by both the scalar
    path and the batch fast path (the latter via
    :meth:`record_many`).  Deliberately not a labeled counter family:
    item cardinality is unbounded, and the embedding layer wants the
    raw map, not an exposition series per item.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def record(self, item_id: str, count: int = 1) -> None:
        self._counts[item_id] = self._counts.get(item_id, 0) + count

    def record_many(self, item_ids: Iterable[str]) -> None:
        counts = self._counts
        for item_id in item_ids:
            counts[item_id] = counts.get(item_id, 0) + 1

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    @property
    def unique_items(self) -> int:
        return len(self._counts)

    def counts(self) -> Dict[str, int]:
        """The full ``item id -> access count`` map (a copy)."""
        return dict(self._counts)

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest items, most-accessed first (ties broken
        by item id for determinism)."""
        return sorted(self._counts.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:n]

    def clear(self) -> None:
        self._counts.clear()

    def to_dict(self, top_n: int = 10) -> Dict[str, Any]:
        return {
            "total": self.total,
            "unique_items": self.unique_items,
            "top": [{"item": item, "count": count}
                    for item, count in self.top(top_n)],
        }


class MetricsRegistry:
    """Owns named instruments and the structured event log.

    Parameters
    ----------
    enabled:
        When ``False`` every instrument getter returns the shared
        :data:`NULL_INSTRUMENT` and :meth:`event` does nothing, making
        instrumented code a cheap no-op.
    event_capacity:
        Bounded size of the attached :class:`repro.obs.EventLog`.
    reservoir_size:
        Percentile reservoir size for histograms created here.
    """

    def __init__(self, enabled: bool = True, event_capacity: int = 4096,
                 reservoir_size: int = 2048) -> None:
        from .eventlog import EventLevel, EventLog

        self.enabled = enabled
        self.reservoir_size = reservoir_size
        self.event_log = EventLog(capacity=event_capacity)
        self.demand = DemandTracker()
        self._info_level = EventLevel.INFO
        self._instruments: Dict[Tuple[str, str, LabelPairs],
                                _Instrument] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # instrument getters (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, kind: str, factory, name: str, help: str,
             labels: Dict[str, Any]):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (kind, name, _label_pairs(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory(key[2])
                    self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(
            "counter",
            lambda pairs: Counter(name, help, labels=pairs),
            name, help, labels,
        )

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(
            "gauge",
            lambda pairs: Gauge(name, help, labels=pairs),
            name, help, labels,
        )

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        return self._get(
            "histogram",
            lambda pairs: Histogram(
                name, help, buckets=buckets,
                reservoir_size=self.reservoir_size, labels=pairs,
            ),
            name, help, labels,
        )

    def timer(self, name: str, help: str = "",
              buckets: Optional[Sequence[float]] = None, **labels: Any):
        """A :class:`repro.obs.PhaseTimer` recording into
        ``histogram(name)`` (seconds)."""
        from .timing import PhaseTimer

        return PhaseTimer(self, name, help=help, buckets=buckets,
                          **labels)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def event(self, name: str, level=None, **fields: Any) -> None:
        """Append a structured event (no-op when disabled).

        When the bounded ring wraps, the overwritten event is counted
        in the ``obs.eventlog.dropped`` counter so the loss is visible
        in exports instead of silent.
        """
        if not self.enabled:
            return
        before = self.event_log.dropped
        self.event_log.log(level if level is not None
                           else self._info_level, name, **fields)
        lost = self.event_log.dropped - before
        if lost:
            self.counter(
                "obs.eventlog.dropped",
                help="Events lost to ring-buffer wrap",
            ).inc(lost)

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def instruments(self) -> Iterable[_Instrument]:
        """All instruments, deterministically ordered."""
        return [self._instruments[key]
                for key in sorted(self._instruments)]

    def lookup(self, instrument_kind: str, name: str,
                  **labels: Any) -> Optional[_Instrument]:
        """Look up an existing instrument by kind ("counter", "gauge",
        "histogram"), name and labels (``None`` when absent).

        The first parameter is positional-only in spirit so that a
        label literally named ``kind`` (as the data-plane counters use)
        can be passed through ``**labels``.
        """
        return self._instruments.get(
            (instrument_kind, name, _label_pairs(labels)))

    def counter_values(self, prefix: str = "") -> Dict[str, float]:
        """Current counter values, optionally filtered by name prefix.

        Labeled series are keyed ``name{k=v,...}`` (labels sorted) so
        one flat dict carries the whole counter state — handy for
        embedding in JSON reports.
        """
        out: Dict[str, float] = {}
        for instrument in self.instruments():
            if instrument.kind != "counter":
                continue
            if prefix and not instrument.name.startswith(prefix):
                continue
            if instrument.labels:
                label_text = ",".join(f"{k}={v}" for k, v
                                      in instrument.labels)
                key = f"{instrument.name}{{{label_text}}}"
            else:
                key = instrument.name
            out[key] = instrument.value
        return out

    def reset(self) -> None:
        """Drop every instrument, all logged events, and the demand
        map."""
        with self._lock:
            self._instruments.clear()
        self.event_log.clear()
        self.demand.clear()

    def to_dict(self, include_events: bool = True) -> Dict[str, Any]:
        """JSON-serializable dump of the whole registry."""
        counters = []
        gauges = []
        histograms = []
        for instrument in self.instruments():
            if instrument.kind == "counter":
                counters.append(instrument.to_dict())
            elif instrument.kind == "gauge":
                gauges.append(instrument.to_dict())
            elif instrument.kind == "histogram":
                histograms.append(instrument.to_dict())
        out: Dict[str, Any] = {
            "format": "gred-metrics-v1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "events_dropped": self.event_log.dropped,
            "demand": self.demand.to_dict(),
        }
        if include_events:
            out["events"] = [e.to_dict() for e in self.event_log.events()]
        return out
