"""Process-local observability: metrics, phase timers, event log,
exporters.

The layer is deliberately dependency-free and cheap when off:

* a module-level **default registry** starts *disabled*; every
  instrumented path in the library asks it for instruments and gets a
  shared no-op until :func:`enable` (or ``gred ... --metrics-out`` /
  ``gred metrics``) switches telemetry on;
* :class:`MetricsRegistry` owns :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments (histograms carry bucket counts and
  p50/p90/p99 summaries) plus a bounded :class:`EventLog`;
* :class:`PhaseTimer` / :func:`timed` record wall time into histograms;
* :func:`render_prometheus` and :func:`write_json` export a registry
  (or a saved dump) for scraping and offline analysis.

Typical use::

    from repro import obs

    obs.enable()
    net = GredNetwork(topology, servers)      # phases timed
    net.place("a", payload=b"...")            # counters/histograms
    print(obs.render_prometheus(obs.default_registry()))
"""

from __future__ import annotations

from typing import Optional

from .clock import monotonic, now
from .eventlog import Event, EventLevel, EventLog
from .export import (
    burn_rate,
    dump_quantiles,
    histogram_quantile,
    load_json,
    render_prometheus,
    to_json,
    write_json,
)
from .instruments import (
    BYTE_BUCKETS,
    Counter,
    DEMAND_GRID,
    DemandTracker,
    Gauge,
    HOP_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullInstrument,
    TIME_BUCKETS,
    demand_region,
)
from .spans import (
    NULL_SPAN,
    Span,
    SpanRecorder,
    default_recorder,
    disable_tracing,
    enable_tracing,
    set_default_recorder,
)
from .timing import PhaseTimer, timed

#: The repository-wide default registry.  Starts disabled so the
#: instrumented hot paths are no-ops unless telemetry is requested.
_default_registry = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    """The registry all built-in instrumentation records into."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one (so callers
    can restore it, e.g. around one CLI command)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn telemetry on.

    With no argument, enables the current default registry in place;
    with a registry, installs it as the default (enabled).  Returns the
    now-active registry.
    """
    global _default_registry
    if registry is not None:
        _default_registry = registry
    _default_registry.enabled = True
    return _default_registry


def disable() -> MetricsRegistry:
    """Turn telemetry off (instruments keep their collected state)."""
    _default_registry.enabled = False
    return _default_registry


def __getattr__(name: str):
    # CountingTracer lives in .bridge, imported lazily to avoid a
    # circular import with repro.dataplane.
    if name == "CountingTracer":
        from .bridge import CountingTracer

        return CountingTracer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "CountingTracer",
    "DEMAND_GRID",
    "DemandTracker",
    "Event",
    "EventLevel",
    "EventLog",
    "Gauge",
    "HOP_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "NullInstrument",
    "PhaseTimer",
    "Span",
    "SpanRecorder",
    "TIME_BUCKETS",
    "burn_rate",
    "default_recorder",
    "default_registry",
    "demand_region",
    "disable",
    "disable_tracing",
    "dump_quantiles",
    "enable",
    "enable_tracing",
    "histogram_quantile",
    "load_json",
    "monotonic",
    "now",
    "render_prometheus",
    "set_default_recorder",
    "set_default_registry",
    "spans",
    "timed",
    "to_json",
    "write_json",
]
