"""Routing-stretch measurement (paper Section VII-B).

    "The routing stretch value is defined to be the ratio of the hop
    count in the selected route to the hop count in the shortest route
    between a pair of source and destination nodes."

Pairs whose shortest route is zero hops (the data lands on the access
switch itself) have no defined ratio and are excluded, matching the
paper's random source/destination sampling where such pairs are
vanishingly rare at scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..graph import Graph, hop_count


def routing_stretch(route_hops: int, shortest_hops: int) -> Optional[float]:
    """Stretch of one route, or ``None`` when undefined.

    ``route_hops == shortest_hops == 0`` (request already at the
    destination) is excluded rather than treated as stretch 1, since no
    route was exercised.
    """
    if route_hops < 0 or shortest_hops < 0:
        raise ValueError("hop counts must be non-negative")
    if shortest_hops == 0:
        return None
    return route_hops / shortest_hops


def stretch_samples(
    topology: Graph,
    routes: Sequence,
) -> List[float]:
    """Stretch values for a batch of route results.

    ``routes`` may mix GRED :class:`repro.dataplane.RouteResult`-like and
    Chord :class:`repro.chord.ChordRouteResult`-like objects: anything
    with ``physical_hops`` and a way to tell source/destination switches
    (``trace[0]``/``destination_switch`` or
    ``entry_switch``/``destination_switch``).
    """
    samples: List[float] = []
    for route in routes:
        if hasattr(route, "entry_switch"):
            source = route.entry_switch
        else:
            source = route.trace[0]
        dest = route.destination_switch
        shortest = hop_count(topology, source, dest)
        value = routing_stretch(route.physical_hops, shortest)
        if value is not None:
            samples.append(value)
    return samples


def measure_gred_stretch(
    net,
    num_items: int,
    rng: np.random.Generator,
    prefix: str = "item",
) -> List[float]:
    """Place nothing; route ``num_items`` random retrievals through a
    :class:`repro.core.GredNetwork` and return the stretch samples.

    Each data item gets a random access switch, following the paper's
    setup ("randomly generate 100 data items ... randomly select an
    access point for each data").
    """
    switches = net.switch_ids()
    routes = []
    for i in range(num_items):
        data_id = f"{prefix}-{i}"
        entry = switches[int(rng.integers(0, len(switches)))]
        route = net.route_for(data_id, entry)
        routes.append(_GredRouteView(route, entry))
    return stretch_samples(net.topology, routes)


class _GredRouteView:
    """Adapter giving RouteResult an explicit entry switch."""

    def __init__(self, route, entry_switch: int):
        self.entry_switch = entry_switch
        self.destination_switch = route.destination_switch
        self.physical_hops = route.physical_hops


def measure_chord_stretch(
    chord_net,
    num_items: int,
    rng: np.random.Generator,
    prefix: str = "item",
) -> List[float]:
    """Stretch samples for the Chord baseline under the same workload
    shape as :func:`measure_gred_stretch`."""
    switches = chord_net.topology.nodes()
    routes = []
    for i in range(num_items):
        data_id = f"{prefix}-{i}"
        entry = switches[int(rng.integers(0, len(switches)))]
        routes.append(chord_net.route_for(data_id, entry))
    return stretch_samples(chord_net.topology, routes)
