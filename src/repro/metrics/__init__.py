"""Evaluation metrics: routing stretch, load balance, summary stats."""

from .stats import Summary, confidence_interval, mean, sample_std, summarize
from .stretch import (
    measure_chord_stretch,
    measure_gred_stretch,
    routing_stretch,
    stretch_samples,
)
from .balance import (
    jains_fairness_index,
    load_imbalance_summary,
    max_avg_ratio,
)

__all__ = [
    "Summary",
    "mean",
    "sample_std",
    "confidence_interval",
    "summarize",
    "routing_stretch",
    "stretch_samples",
    "measure_gred_stretch",
    "measure_chord_stretch",
    "max_avg_ratio",
    "jains_fairness_index",
    "load_imbalance_summary",
]
