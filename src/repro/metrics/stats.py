"""Summary statistics for the evaluation harness.

The paper reports averages with 90% confidence intervals of the mean
(Figs. 9 and 9d); this module provides exactly that plus the usual
descriptive summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class Summary:
    """Descriptive summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


def mean(values: Sequence[float]) -> float:
    # len() instead of truthiness: numpy arrays raise "truth value of
    # an array is ambiguous" under `not values`.
    if len(values) == 0:
        raise ValueError("mean of an empty sample is undefined")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased (n-1) standard deviation; 0.0 for samples of size 1."""
    n = len(values)
    if n == 0:
        raise ValueError("std of an empty sample is undefined")
    if n == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def confidence_interval(values: Sequence[float],
                        confidence: float = 0.90):
    """Student-t confidence interval of the mean.

    Returns ``(low, high)``; degenerate samples (n <= 1 or zero
    variance) collapse to the mean.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    m = mean(values)
    s = sample_std(values)
    if n <= 1 or s == 0.0:
        return (m, m)
    t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    half = t * s / math.sqrt(n)
    return (m - half, m + half)


def summarize(values: Sequence[float],
              confidence: float = 0.90) -> Summary:
    """Full descriptive summary with a CI of the mean."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    low, high = confidence_interval(values, confidence)
    return Summary(
        count=len(values),
        mean=float(mean(values)),
        std=float(sample_std(values)),
        minimum=float(min(values)),
        maximum=float(max(values)),
        ci_low=float(low),
        ci_high=float(high),
        confidence=confidence,
    )
