"""Load-balance metrics (paper Section VII-B).

    "The max/avg metric quantifies the load balance, defined as the
    ratio of the number of data items received by the most loaded edge
    server (max) to the average load of all edge servers (avg)."

The optimal value is 1 (perfect balance); higher is worse.
"""

from __future__ import annotations

from typing import Sequence


def max_avg_ratio(loads: Sequence[int]) -> float:
    """The paper's ``max/avg`` metric over per-server loads.

    Raises
    ------
    ValueError
        On an empty load vector or zero total load (no data placed).
    """
    if len(loads) == 0:
        raise ValueError("load vector is empty")
    total = sum(loads)
    if total == 0:
        raise ValueError("no data has been placed; max/avg is undefined")
    avg = total / len(loads)
    return max(loads) / avg


def jains_fairness_index(loads: Sequence[int]) -> float:
    """Jain's fairness index (supplementary metric; 1 is perfect).

    ``(sum x)^2 / (n * sum x^2)`` — gives a whole-distribution view that
    the paper's max-focused metric does not.
    """
    if len(loads) == 0:
        raise ValueError("load vector is empty")
    total = sum(loads)
    squares = sum(x * x for x in loads)
    if squares == 0:
        raise ValueError("no data has been placed; fairness is undefined")
    return (total * total) / (len(loads) * squares)


def load_imbalance_summary(loads: Sequence[int]) -> dict:
    """Dictionary with the metrics the experiments report."""
    return {
        "servers": len(loads),
        "total": sum(loads),
        "max": max(loads) if loads else 0,
        "min": min(loads) if loads else 0,
        "avg": sum(loads) / len(loads) if loads else 0.0,
        "max_avg": max_avg_ratio(loads),
        "jain": jains_fairness_index(loads),
    }
