"""BRITE-style Waxman topology generation.

The paper's large-scale simulations (Section VII-B) use BRITE with the
Waxman model to generate switch-level topologies, varying both the number
of switches and the *minimum degree* of switches for interconnection.

Two generators are provided:

* :func:`waxman_graph` — the classic flat Waxman model: every node pair is
  connected independently with probability ``alpha * exp(-d / (beta * L))``
  where ``d`` is the Euclidean distance between the two nodes and ``L`` the
  maximum possible distance.  The result may be disconnected, so a repair
  pass can be requested.

* :func:`brite_waxman_graph` — BRITE's incremental growth variant: nodes
  join one at a time and each new node attaches to ``min_degree`` existing
  nodes sampled with Waxman-weighted probability.  This is the generator
  used by the paper's evaluation because it enforces the minimum-degree
  knob directly and always yields a connected graph.

Both generators also return the node placement on the plane, which tests
use to validate the distance-dependence of the model.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from .. import utils
from ..graph import Graph

Coordinates = Dict[int, Tuple[float, float]]


def _place_nodes(n: int, plane_size: float,
                 rng: np.random.Generator) -> Coordinates:
    points = rng.uniform(0.0, plane_size, size=(n, 2))
    return {i: (float(points[i, 0]), float(points[i, 1])) for i in range(n)}


def _euclidean(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def waxman_graph(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.2,
    plane_size: float = 1000.0,
    rng: Optional[np.random.Generator] = None,
    connect: bool = True,
) -> Tuple[Graph, Coordinates]:
    """Generate a flat Waxman random graph of ``n`` nodes.

    Parameters
    ----------
    n:
        Number of switches.
    alpha:
        Maximal link probability (at distance 0).
    beta:
        Distance decay: larger beta gives more long links.
    plane_size:
        Side of the square on which nodes are placed.
    rng:
        Explicit random generator (required for isolated reproducibility
        in the experiment harness; defaults to the process-global seeded
        stream from :mod:`repro.utils`).
    connect:
        When True (default), bridge disconnected components by linking each
        component to its nearest node in the growing connected part, so
        the returned graph is always connected.

    Returns
    -------
    (graph, coordinates):
        The topology and the planar positions used to generate it.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = utils.rng(rng)
    coords = _place_nodes(n, plane_size, rng)
    max_dist = plane_size * math.sqrt(2.0)
    graph = Graph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            d = _euclidean(coords[i], coords[j])
            p = alpha * math.exp(-d / (beta * max_dist))
            if rng.random() < p:
                graph.add_edge(i, j)
    if connect:
        _bridge_components(graph, coords)
    return graph, coords


def _bridge_components(graph: Graph, coords: Coordinates) -> None:
    """Connect components by their geometrically closest node pairs."""
    from ..graph import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return
    # Greedily merge: attach every other component to the largest one via
    # the closest cross pair.
    components.sort(key=len, reverse=True)
    core = set(components[0])
    for comp in components[1:]:
        best = None
        for u in comp:
            for v in core:
                d = _euclidean(coords[u], coords[v])
                if best is None or d < best[0]:
                    best = (d, u, v)
        _, u, v = best
        graph.add_edge(u, v)
        core |= comp


def brite_waxman_graph(
    n: int,
    min_degree: int = 2,
    alpha: float = 0.4,
    beta: float = 0.2,
    plane_size: float = 1000.0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Graph, Coordinates]:
    """Generate a BRITE-style incremental Waxman graph.

    Nodes join one at a time; each new node connects to ``min_degree``
    distinct existing nodes, sampled proportionally to the Waxman weight
    ``alpha * exp(-d / (beta * L))``.  The first ``min_degree + 1`` nodes
    form a clique so every node ends with degree >= ``min_degree``.

    The result is always connected.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if min_degree < 1:
        raise ValueError(f"min_degree must be >= 1, got {min_degree}")
    rng = utils.rng(rng)
    coords = _place_nodes(n, plane_size, rng)
    max_dist = plane_size * math.sqrt(2.0)
    graph = Graph()
    seed_count = min(n, min_degree + 1)
    for i in range(seed_count):
        graph.add_node(i)
        for j in range(i):
            graph.add_edge(i, j)
    for i in range(seed_count, n):
        existing = list(range(i))
        weights = np.array([
            alpha * math.exp(-_euclidean(coords[i], coords[j])
                             / (beta * max_dist))
            for j in existing
        ])
        total = weights.sum()
        if total <= 0:
            probs = np.full(len(existing), 1.0 / len(existing))
        else:
            probs = weights / total
        k = min(min_degree, len(existing))
        targets = rng.choice(len(existing), size=k, replace=False, p=probs)
        graph.add_node(i)
        for t in targets:
            graph.add_edge(i, existing[int(t)])
    return graph, coords
