"""Reading and writing the BRITE topology file format.

The paper generates its simulation topologies with BRITE; deployments
that already have BRITE output files can load them directly instead of
re-generating with :func:`repro.topology.brite_waxman_graph`.  The
flat-ASCII format is::

    Topology: ( 20 Nodes, 37 Edges )
    Model (2 - Waxman): 20 1000 100 1 2 0.15000 0.2000 1 1 10.0 1024.0

    Nodes: (20)
    0  242.00 156.00  3 3 -1 RT_NODE
    ...

    Edges: (37)
    0  3 7  123.45 0.00041 10.0 -1 -1 E_RT U
    ...

Only the fields the reproduction needs are interpreted: node ids and
plane coordinates, and edge endpoints (with the Euclidean length kept
as the edge weight).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graph import Graph

Coordinates = Dict[int, Tuple[float, float]]


class BriteFormatError(Exception):
    """Raised on malformed BRITE files."""


def parse_brite(text: str) -> Tuple[Graph, Coordinates]:
    """Parse BRITE flat-ASCII content into a topology.

    Returns ``(graph, coordinates)``; edge weights carry the recorded
    Euclidean length (1.0 when the field is missing or zero).
    """
    graph = Graph()
    coords: Coordinates = {}
    section = None
    expected_nodes = expected_edges = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        lower = line.lower()
        if lower.startswith("topology:") or lower.startswith("model"):
            continue
        if lower.startswith("nodes:"):
            section = "nodes"
            expected_nodes = _parse_count(line, line_no)
            continue
        if lower.startswith("edges:"):
            section = "edges"
            expected_edges = _parse_count(line, line_no)
            continue
        if section == "nodes":
            fields = line.split()
            if len(fields) < 3:
                raise BriteFormatError(
                    f"line {line_no}: node record needs at least "
                    f"'id x y', got {line!r}"
                )
            try:
                node = int(fields[0])
                x = float(fields[1])
                y = float(fields[2])
            except ValueError as exc:
                raise BriteFormatError(
                    f"line {line_no}: malformed node record {line!r}"
                ) from exc
            graph.add_node(node)
            coords[node] = (x, y)
        elif section == "edges":
            fields = line.split()
            if len(fields) < 3:
                raise BriteFormatError(
                    f"line {line_no}: edge record needs at least "
                    f"'id from to', got {line!r}"
                )
            try:
                u = int(fields[1])
                v = int(fields[2])
                length = float(fields[3]) if len(fields) > 3 else 1.0
            except ValueError as exc:
                raise BriteFormatError(
                    f"line {line_no}: malformed edge record {line!r}"
                ) from exc
            if not graph.has_node(u) or not graph.has_node(v):
                raise BriteFormatError(
                    f"line {line_no}: edge references unknown node"
                )
            if u != v:
                graph.add_edge(u, v, weight=length if length > 0 else 1.0)
        else:
            raise BriteFormatError(
                f"line {line_no}: content outside any section: {line!r}"
            )
    if expected_nodes is not None and graph.num_nodes() != expected_nodes:
        raise BriteFormatError(
            f"header declares {expected_nodes} nodes, file has "
            f"{graph.num_nodes()}"
        )
    if expected_edges is not None and graph.num_edges() != expected_edges:
        raise BriteFormatError(
            f"header declares {expected_edges} edges, file has "
            f"{graph.num_edges()}"
        )
    return graph, coords


def _parse_count(line: str, line_no: int) -> int:
    digits = "".join(ch for ch in line if ch.isdigit())
    if not digits:
        raise BriteFormatError(
            f"line {line_no}: section header without a count: {line!r}"
        )
    return int(digits)


def write_brite(graph: Graph, coords: Coordinates) -> str:
    """Serialize a topology to BRITE flat-ASCII (subset: the fields
    :func:`parse_brite` reads back)."""
    missing = [n for n in graph.nodes() if n not in coords]
    if missing:
        raise BriteFormatError(
            f"coordinates missing for nodes: {missing}"
        )
    lines = [
        f"Topology: ( {graph.num_nodes()} Nodes, "
        f"{graph.num_edges()} Edges )",
        "Model (2 - Waxman): repro-export",
        "",
        f"Nodes: ({graph.num_nodes()})",
    ]
    for node in sorted(graph.nodes()):
        x, y = coords[node]
        lines.append(f"{node} {x:.2f} {y:.2f} 0 0 -1 RT_NODE")
    lines.append("")
    lines.append(f"Edges: ({graph.num_edges()})")
    for i, (u, v, w) in enumerate(sorted(
            graph.edges(), key=lambda e: (min(e[0], e[1]),
                                          max(e[0], e[1])))):
        lines.append(f"{i} {u} {v} {w:.2f} 0.0 10.0 -1 -1 E_RT U")
    return "\n".join(lines) + "\n"


def load_brite(path: str) -> Tuple[Graph, Coordinates]:
    """Load a BRITE file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_brite(handle.read())


def save_brite(graph: Graph, coords: Coordinates, path: str) -> None:
    """Write a topology to a BRITE file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_brite(graph, coords))
