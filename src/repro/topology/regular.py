"""Regular and structured topologies used by tests and examples.

These small deterministic topologies complement the Waxman generator: they
make unit tests exact (known shortest paths, known diameters) and give the
examples recognisable shapes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import utils
from ..graph import Graph


def line_graph(n: int) -> Graph:
    """A path of ``n`` switches: 0 - 1 - ... - (n-1)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    g = Graph()
    g.add_node(0)
    for i in range(1, n):
        g.add_edge(i - 1, i)
    return g


def ring_graph(n: int) -> Graph:
    """A cycle of ``n`` switches (requires ``n >= 3``)."""
    if n < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {n}")
    g = line_graph(n)
    g.add_edge(n - 1, 0)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` mesh; node ids are ``r * cols + c``."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"grid dimensions must be positive, got "
                         f"{rows}x{cols}")
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            g.add_node(node)
            if c > 0:
                g.add_edge(node, node - 1)
            if r > 0:
                g.add_edge(node, node - cols)
    return g


def star_graph(n_leaves: int) -> Graph:
    """A hub (node 0) with ``n_leaves`` leaves."""
    if n_leaves < 1:
        raise ValueError(f"a star needs at least one leaf, got {n_leaves}")
    g = Graph()
    g.add_node(0)
    for i in range(1, n_leaves + 1):
        g.add_edge(0, i)
    return g


def complete_graph(n: int) -> Graph:
    """A clique of ``n`` switches."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    g = Graph()
    g.add_node(0)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def random_regular_graph(n: int, degree: int,
                         rng: Optional[np.random.Generator] = None,
                         max_tries: int = 200) -> Graph:
    """A random ``degree``-regular graph on ``n`` nodes (pairing model).

    Retries the stub-matching until it produces a simple connected graph.

    Raises
    ------
    ValueError
        If ``n * degree`` is odd or ``degree >= n``.
    RuntimeError
        If no valid graph is found within ``max_tries`` attempts.
    """
    if degree >= n:
        raise ValueError(f"degree {degree} must be < n {n}")
    if (n * degree) % 2 != 0:
        raise ValueError(f"n * degree must be even, got {n} * {degree}")
    rng = utils.rng(rng)
    from ..graph import is_connected

    for _ in range(max_tries):
        stubs: List[int] = [node for node in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        edges: List[Tuple[int, int]] = []
        ok = True
        seen = set()
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                ok = False
                break
            seen.add(key)
            edges.append((u, v))
        if not ok:
            continue
        g = Graph()
        for node in range(n):
            g.add_node(node)
        for u, v in edges:
            g.add_edge(u, v)
        if is_connected(g):
            return g
    raise RuntimeError(
        f"could not generate a connected {degree}-regular graph on {n} "
        f"nodes in {max_tries} tries"
    )


def random_geometric_graph(n: int, radius: float,
                           rng: Optional[np.random.Generator] = None,
                           max_tries: int = 50):
    """A connected unit-disk graph: ``n`` points uniform in the unit
    square, edges between pairs within ``radius``.

    The natural setting for geographic routing (GHT/GPSR); retries the
    placement until the graph is connected.

    Returns ``(graph, coordinates)``.

    Raises
    ------
    RuntimeError
        If no connected instance is found within ``max_tries``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    rng = utils.rng(rng)
    from ..graph import is_connected

    for _ in range(max_tries):
        points = rng.uniform(0.0, 1.0, size=(n, 2))
        g = Graph()
        coords = {}
        for i in range(n):
            g.add_node(i)
            coords[i] = (float(points[i, 0]), float(points[i, 1]))
        r_sq = radius * radius
        for i in range(n):
            for j in range(i + 1, n):
                dx = points[i, 0] - points[j, 0]
                dy = points[i, 1] - points[j, 1]
                if dx * dx + dy * dy <= r_sq:
                    g.add_edge(i, j)
        if is_connected(g):
            return g, coords
    raise RuntimeError(
        f"no connected geometric graph with n={n}, radius={radius} in "
        f"{max_tries} tries"
    )
