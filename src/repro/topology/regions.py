"""Region partitioning for the federated control plane.

Two ways to obtain a regionalized topology:

* :func:`partition_regions` — metro-style auto-partition of an
  *existing* graph into ``num_regions`` balanced, connected regions
  (multi-source BFS growth from spread-out seeds).
* :func:`federated_topology` — generate a hierarchical edge topology
  directly: one BRITE-style Waxman metro graph per region plus a small
  backbone of inter-region gateway links (ring or line), the shape
  real telco edge deployments take.

Both return an *assignment* (``switch id -> region id``) that
:class:`repro.controlplane.RegionMap` validates and turns into shard
boundaries and designated gateway links.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import Graph
from ..graph.shortest_paths import bfs_distances
from .waxman import brite_waxman_graph

__all__ = [
    "partition_regions",
    "federated_topology",
    "region_members",
]


def region_members(assignment: Dict[int, int]) -> Dict[int, List[int]]:
    """``region id -> sorted member switches`` view of an assignment."""
    regions: Dict[int, List[int]] = {}
    for node in sorted(assignment):
        regions.setdefault(assignment[node], []).append(node)
    return regions


def _spread_seeds(graph: Graph, num_regions: int) -> List[int]:
    """Greedy farthest-point seed selection (deterministic).

    The first seed is the lowest switch id; each next seed maximizes
    its hop distance to the already-chosen seeds (ties by id), which
    spreads the region cores across the graph.
    """
    nodes = sorted(graph.nodes())
    seeds = [nodes[0]]
    # min hop distance from any chosen seed
    dist = bfs_distances(graph, seeds[0])
    while len(seeds) < num_regions:
        best = max(nodes, key=lambda n: (dist.get(n, 0), -n))
        if best in seeds:  # pragma: no cover - defensive
            break
        seeds.append(best)
        for node, d in bfs_distances(graph, best).items():
            if d < dist.get(node, d + 1):
                dist[node] = d
    return seeds


def partition_regions(graph: Graph, num_regions: int,
                      seed: int = 0) -> Dict[int, int]:
    """Partition a connected graph into balanced connected regions.

    Seeds are chosen by greedy farthest-point selection, then regions
    grow one frontier switch at a time, smallest region first, so the
    sizes stay balanced while every region remains connected (each
    switch joins a region it is physically adjacent to).

    Parameters
    ----------
    graph:
        Connected switch topology.
    num_regions:
        Number of regions (``1 <= num_regions <= len(graph)``).
    seed:
        Reserved for tie-breaking variations; the default partition is
        fully deterministic in the graph alone.

    Returns
    -------
    Dict[int, int]
        ``switch id -> region id`` with region ids ``0..num_regions-1``.
    """
    nodes = graph.nodes()
    if num_regions < 1:
        raise ValueError(f"num_regions must be >= 1, got {num_regions}")
    if num_regions > len(nodes):
        raise ValueError(
            f"cannot split {len(nodes)} switches into {num_regions} "
            f"regions"
        )
    if num_regions == 1:
        return {node: 0 for node in nodes}
    seeds = _spread_seeds(graph, num_regions)
    assignment: Dict[int, int] = {}
    frontiers: List[deque] = []
    sizes = [0] * num_regions
    for rid, s in enumerate(seeds):
        assignment[s] = rid
        sizes[rid] = 1
        frontiers.append(deque(sorted(graph.neighbors(s))))
    remaining = len(nodes) - num_regions
    while remaining > 0:
        # Smallest region with a non-empty frontier claims next.
        order = sorted(range(num_regions), key=lambda r: (sizes[r], r))
        progressed = False
        for rid in order:
            frontier = frontiers[rid]
            claimed = None
            while frontier:
                candidate = frontier.popleft()
                if candidate not in assignment:
                    claimed = candidate
                    break
            if claimed is None:
                continue
            assignment[claimed] = rid
            sizes[rid] += 1
            remaining -= 1
            for neighbor in sorted(graph.neighbors(claimed)):
                if neighbor not in assignment:
                    frontier.append(neighbor)
            progressed = True
            break
        if not progressed:  # pragma: no cover - disconnected input
            raise ValueError(
                "partition_regions requires a connected graph"
            )
    return assignment


def federated_topology(
    num_regions: int,
    switches_per_region: int,
    min_degree: int = 2,
    backbone: str = "ring",
    seed: int = 0,
) -> Tuple[Graph, Dict[int, int]]:
    """Generate a metro/backbone edge topology with a known partition.

    Each region is an independent BRITE-style Waxman metro graph of
    ``switches_per_region`` switches; regions are then stitched by one
    gateway link per backbone edge (``ring`` — region ``r`` to region
    ``r+1 mod R`` — or ``line``, dropping the closing link).  Region
    ``r`` occupies the contiguous id block
    ``[r * switches_per_region, (r+1) * switches_per_region)``.

    Returns ``(topology, assignment)`` ready for
    :class:`repro.controlplane.FederatedNetwork`.
    """
    if num_regions < 1:
        raise ValueError(f"num_regions must be >= 1, got {num_regions}")
    if switches_per_region < min_degree + 1:
        raise ValueError(
            f"switches_per_region must be >= {min_degree + 1}, got "
            f"{switches_per_region}"
        )
    if backbone not in ("ring", "line"):
        raise ValueError(f"unknown backbone {backbone!r}")
    topology = Graph()
    assignment: Dict[int, int] = {}
    for rid in range(num_regions):
        metro, _ = brite_waxman_graph(
            switches_per_region, min_degree=min_degree,
            rng=np.random.default_rng(seed * 7919 + rid),
        )
        offset = rid * switches_per_region
        for node in metro.nodes():
            topology.add_node(node + offset)
            assignment[node + offset] = rid
        for u, v, w in metro.edges():
            topology.add_edge(u + offset, v + offset, w)
    # Backbone gateway links: the egress gateway of region r is its
    # highest id, the ingress gateway of region r+1 its lowest — one
    # designated physical link per backbone edge.
    pairs = []
    if num_regions >= 2:
        pairs = [(r, r + 1) for r in range(num_regions - 1)]
        if backbone == "ring" and num_regions > 2:
            pairs.append((num_regions - 1, 0))
    for a, b in pairs:
        u = a * switches_per_region + switches_per_region - 1
        v = b * switches_per_region
        topology.add_edge(u, v)
    return topology, assignment
