"""Topology generation: BRITE-style Waxman graphs, regular shapes, and the
paper's 6-switch P4 testbed."""

from .waxman import brite_waxman_graph, waxman_graph
from .regular import (
    complete_graph,
    grid_graph,
    line_graph,
    random_geometric_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
)
from .brite_io import (
    BriteFormatError,
    load_brite,
    parse_brite,
    save_brite,
    write_brite,
)
from .regions import (
    federated_topology,
    partition_regions,
    region_members,
)
from .testbed import (
    TESTBED_NUM_SWITCHES,
    TESTBED_SERVERS_PER_SWITCH,
    testbed_ring_topology,
    testbed_topology,
)

__all__ = [
    "waxman_graph",
    "brite_waxman_graph",
    "line_graph",
    "ring_graph",
    "grid_graph",
    "star_graph",
    "complete_graph",
    "random_regular_graph",
    "random_geometric_graph",
    "partition_regions",
    "federated_topology",
    "region_members",
    "testbed_topology",
    "testbed_ring_topology",
    "TESTBED_NUM_SWITCHES",
    "TESTBED_SERVERS_PER_SWITCH",
    "parse_brite",
    "write_brite",
    "load_brite",
    "save_brite",
    "BriteFormatError",
]
