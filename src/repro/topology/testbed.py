"""The paper's P4 testbed topology (Fig. 6).

The prototype in Section VII-A consists of 1 controller, 6 P4 switches and
12 edge servers (2 servers per switch).  The exact link set of Fig. 6 is
not machine-readable from the paper, so this module encodes a 6-switch
topology of matching scale: a 2x3 mesh (each switch has degree 2-3), which
reproduces the figure's qualitative properties — small diameter, multiple
redundant paths, and every switch hosting exactly two servers.  The
reproduction's conclusions for Fig. 7/8 (stretch ~1, CVT improving load
balance, flat response delay) are insensitive to the precise wiring, which
is validated by the testbed benchmarks also running on the alternative
ring wiring below.
"""

from __future__ import annotations

from ..graph import Graph

#: Number of P4 switches in the paper's prototype.
TESTBED_NUM_SWITCHES = 6

#: Edge servers attached to every prototype switch.
TESTBED_SERVERS_PER_SWITCH = 2


def testbed_topology() -> Graph:
    """The 6-switch prototype topology (2x3 mesh wiring).

    Node ids are ``0..5`` laid out as::

        0 - 1 - 2
        |   |   |
        3 - 4 - 5
    """
    g = Graph()
    rows, cols = 2, 3
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            g.add_node(node)
            if c > 0:
                g.add_edge(node, node - 1)
            if r > 0:
                g.add_edge(node, node - cols)
    return g


def testbed_ring_topology() -> Graph:
    """Alternative 6-switch wiring: a ring with one cross link.

    Used to check that testbed conclusions do not depend on the exact
    wiring guessed from Fig. 6.
    """
    g = Graph()
    for i in range(TESTBED_NUM_SWITCHES):
        g.add_edge(i, (i + 1) % TESTBED_NUM_SWITCHES)
    g.add_edge(0, 3)
    return g
