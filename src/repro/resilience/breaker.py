"""Circuit breakers over switches and edge servers.

A :class:`CircuitBreaker` is the classic three-state machine:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker **open**;
* **open** — traffic is refused (callers fail fast or route around)
  until ``recovery_time`` virtual seconds pass;
* **half-open** — probe traffic is admitted; ``half_open_probes``
  consecutive successes close the breaker, any failure re-opens it.

The :class:`BreakerBoard` keys one breaker per resource —
``("switch", switch_id)`` and ``("server", (switch_id, serial))`` —
creates them lazily, emits a ``resilience.breaker_*`` counter and a
structured event on every state transition, and can *absorb* the
fault-injection ground truth (:class:`repro.faults.FaultState`):
crashed nodes get their breakers forced open immediately, so traffic
routes around them before the heartbeat detector has even noticed.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, List, Optional, Tuple

from ..obs import default_registry


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One resource's breaker.  All times are the caller's virtual
    clock; the breaker never reads a wall clock."""

    def __init__(self, failure_threshold: int = 5,
                 recovery_time: float = 1.0,
                 half_open_probes: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time < 0:
            raise ValueError("recovery_time must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at: Optional[float] = None

    def allow(self, now: float) -> bool:
        """Whether a request may be sent to this resource at ``now``.
        An open breaker past its recovery time transitions to
        half-open (and admits the probe)."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (self._opened_at is not None
                    and now - self._opened_at >= self.recovery_time):
                self.state = BreakerState.HALF_OPEN
                self._probe_successes = 0
                return True
            return False
        return True  # half-open: probes flow

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self.state = BreakerState.CLOSED
                self._consecutive_failures = 0
                self._opened_at = None
        elif self.state is BreakerState.CLOSED:
            self._consecutive_failures = 0
        # Success against an open breaker (e.g. an override probe that
        # went through anyway) does not close it early.

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
        elif self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip(now)

    def force_open(self, now: float) -> None:
        """Trip immediately (external failure signal)."""
        self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = now
        self._consecutive_failures = 0
        self._probe_successes = 0


#: A breaker key: ("switch", id) or ("server", (switch, serial)).
BreakerKey = Tuple[str, Hashable]


class BreakerBoard:
    """All breakers of one deployment, with transition telemetry."""

    def __init__(self, failure_threshold: int = 5,
                 recovery_time: float = 1.0,
                 half_open_probes: int = 2) -> None:
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self._breakers: Dict[BreakerKey, CircuitBreaker] = {}

    def get(self, key: BreakerKey) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                recovery_time=self.recovery_time,
                half_open_probes=self.half_open_probes,
            )
            self._breakers[key] = breaker
        return breaker

    # ------------------------------------------------------------------
    # instrumented state access
    # ------------------------------------------------------------------
    def allow(self, key: BreakerKey, now: float) -> bool:
        breaker = self._breakers.get(key)
        if breaker is None:
            return True  # never seen -> closed
        before = breaker.state
        verdict = breaker.allow(now)
        self._note_transition(key, before, breaker.state, now)
        return verdict

    def success(self, key: BreakerKey, now: float) -> None:
        breaker = self._breakers.get(key)
        if breaker is None:
            return  # nothing to repair
        before = breaker.state
        breaker.record_success(now)
        self._note_transition(key, before, breaker.state, now)

    def failure(self, key: BreakerKey, now: float) -> None:
        breaker = self.get(key)
        before = breaker.state
        breaker.record_failure(now)
        self._note_transition(key, before, breaker.state, now)

    def force_open(self, key: BreakerKey, now: float) -> None:
        breaker = self.get(key)
        before = breaker.state
        breaker.force_open(now)
        self._note_transition(key, before, breaker.state, now)

    def absorb(self, fault_state, now: float) -> int:
        """Force-open breakers for every crashed switch/server in the
        fault-injection ground truth; returns how many were tripped."""
        tripped = 0
        if fault_state is None:
            return tripped
        for switch in sorted(fault_state.crashed_switches):
            key: BreakerKey = ("switch", switch)
            if self.get(key).state is not BreakerState.OPEN:
                self.force_open(key, now)
                tripped += 1
        for server in sorted(fault_state.crashed_servers):
            key = ("server", server)
            if self.get(key).state is not BreakerState.OPEN:
                self.force_open(key, now)
                tripped += 1
        return tripped

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def any_tripped(self) -> bool:
        """True when any breaker is not closed."""
        return any(b.state is not BreakerState.CLOSED
                   for b in self._breakers.values())

    def tripped(self) -> List[BreakerKey]:
        """Keys of every non-closed breaker (deterministic order)."""
        return sorted(
            (key for key, b in self._breakers.items()
             if b.state is not BreakerState.CLOSED),
            key=repr,
        )

    def states(self) -> Dict[str, str]:
        """``"kind:id" -> state`` map for stats/JSON reporting."""
        out: Dict[str, str] = {}
        for key in sorted(self._breakers, key=repr):
            kind, ident = key
            out[f"{kind}:{ident}"] = self._breakers[key].state.value
        return out

    def reset(self) -> None:
        self._breakers.clear()

    # ------------------------------------------------------------------
    def _note_transition(self, key: BreakerKey, before: BreakerState,
                         after: BreakerState, now: float) -> None:
        if before is after:
            return
        registry = default_registry()
        if not registry.enabled:
            return
        if after is BreakerState.OPEN:
            registry.counter("resilience.breaker_opens").inc()
        elif after is BreakerState.HALF_OPEN:
            registry.counter("resilience.breaker_half_opens").inc()
        elif after is BreakerState.CLOSED:
            registry.counter("resilience.breaker_closes").inc()
        kind, ident = key
        registry.event("breaker_transition", kind=kind,
                       resource=str(ident), before=before.value,
                       after=after.value, time=now)
