"""Deadline budgets and budget-respecting retry backoff.

A :class:`DeadlineBudget` is created once when a request arrives and
propagated through every stage of the pipeline — admission queueing,
replica probes, retry backoffs — so each stage can ask "how much time
is left?" instead of keeping its own timeout.  :class:`RetryPolicy`
computes jittered exponential backoff delays that are *guaranteed* to
fit the remaining budget: when the next backoff would not leave room to
finish before the deadline, it returns ``None`` and the pipeline gives
up instead of burning time on a doomed retry.

All times are virtual seconds on the caller's clock (the pipeline never
reads a wall clock), so runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class DeadlineBudget:
    """A request's time budget: ``timeout`` seconds from ``start``."""

    start: float
    timeout: float

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {self.timeout}")

    @property
    def deadline(self) -> float:
        """Absolute time after which the request has failed its SLO."""
        return self.start + self.timeout

    def remaining(self, now: float) -> float:
        """Budget left at ``now`` (clamped at zero)."""
        return max(0.0, self.deadline - now)

    def expired(self, now: float) -> bool:
        return now >= self.deadline

    def elapsed(self, now: float) -> float:
        return max(0.0, now - self.start)


class RetryPolicy:
    """Jittered exponential backoff bounded by the deadline budget.

    ``next_delay(attempts, remaining, rng)`` returns the backoff to
    sleep before retry number ``attempts + 1`` (``attempts`` counts
    tries already made, so the first call passes 1), or ``None`` when
    the attempt limit is reached or the delay would not fit the
    remaining budget.  The jitter draw always consumes exactly one
    uniform variate from ``rng`` per computed delay, keeping request
    streams deterministic under a seeded generator.
    """

    def __init__(self, base: float = 0.005, multiplier: float = 2.0,
                 jitter: float = 0.5, max_attempts: int = 3) -> None:
        if base < 0 or multiplier < 1:
            raise ValueError(
                "base must be >= 0 and multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.base = base
        self.multiplier = multiplier
        self.jitter = jitter
        self.max_attempts = max_attempts

    def next_delay(self, attempts: int, remaining: float,
                   rng: np.random.Generator) -> Optional[float]:
        """Backoff before the next try, or ``None`` to give up.

        Parameters
        ----------
        attempts:
            Tries already made (>= 1).
        remaining:
            Seconds left in the caller's deadline budget.
        rng:
            Seeded generator supplying the jitter draw.
        """
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if attempts >= self.max_attempts:
            return None
        delay = self.base * self.multiplier ** (attempts - 1)
        if self.jitter:
            span = self.jitter
            delay *= 1.0 - span + 2.0 * span * float(rng.random())
        if delay >= remaining:
            return None
        return delay
