"""Request-level resilience: admission control, deadlines & retries,
circuit breakers and hedged replica reads.

The package wraps a :class:`~repro.core.GredNetwork` in a
:class:`ResilientNetwork` (see :mod:`repro.resilience.pipeline` for the
full pipeline description) and is **off by default** — a wrapper built
from a default :class:`ResilienceConfig` is a transparent passthrough.
The companion SLO load-test harness lives in :mod:`repro.slo` and is
driven by ``gred loadtest``.
"""

from .admission import (
    SHED_PRIORITY,
    SHED_QUEUE_FULL,
    AdmissionController,
    AdmissionVerdict,
)
from .breaker import BreakerBoard, BreakerState, CircuitBreaker
from .config import ResilienceConfig
from .deadline import DeadlineBudget, RetryPolicy
from .pipeline import SHED_ENTRY_DOWN, ResilientNetwork, ResilientOutcome

__all__ = [
    "AdmissionController",
    "AdmissionVerdict",
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineBudget",
    "ResilienceConfig",
    "ResilientNetwork",
    "ResilientOutcome",
    "RetryPolicy",
    "SHED_ENTRY_DOWN",
    "SHED_PRIORITY",
    "SHED_QUEUE_FULL",
]
