"""Per-entry-switch admission control: token bucket + bounded queue.

Each entry switch gets a token bucket refilled at ``rate`` requests per
second with capacity ``burst``, implemented as the Generic Cell Rate
Algorithm (GCRA): one float of state per entry — the *theoretical
arrival time* (TAT) of the next conforming request — gives O(1)
admission decisions with no background refill task.

A request arriving while the bucket holds a token is admitted with zero
wait.  A request arriving early (bucket empty) is *queued*: GCRA's
``TAT - now - burst/rate`` is exactly the time until a token frees up,
and dividing by the token interval gives the current virtual queue
depth.  The queue is bounded by ``queue_limit`` slots, shared
priority-aware: priority ``p`` (0 = best-effort … ``max_priority`` =
critical) may only occupy the first ``queue_limit * (1 + p) /
(1 + max_priority)`` slots, so as the queue fills, low-priority traffic
is shed first and critical traffic keeps the full queue — graceful
degradation instead of indiscriminate tail drops.

Every decision lands in ``resilience.*`` telemetry: ``admitted``,
``shed`` (labelled by reason), and the ``queue_wait_seconds``
histogram.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..obs import TIME_BUCKETS, default_registry

#: Shed because the request would overflow the whole pending queue.
SHED_QUEUE_FULL = "queue_full"
#: Shed because the queue depth exceeds this priority's share.
SHED_PRIORITY = "priority"


@dataclass(frozen=True)
class AdmissionVerdict:
    """Outcome of offering one request to the controller.

    ``queued_delay`` is the virtual time the request waits for a token
    (zero when the bucket had one); ``occupancy`` is the queue depth
    seen on arrival; ``shed_reason`` is ``None`` when admitted.
    """

    admitted: bool
    queued_delay: float = 0.0
    shed_reason: Optional[str] = None
    occupancy: int = 0


class AdmissionController:
    """GCRA token buckets with priority-aware bounded queues.

    Parameters
    ----------
    rate:
        Token refill rate per entry switch (requests/second).
    burst:
        Bucket capacity (requests absorbed back-to-back).
    queue_limit:
        Pending-queue bound per entry switch (0 disables queueing:
        any request that misses a token is shed).
    max_priority:
        Highest priority level; see the module docstring for the
        per-priority queue share.
    """

    def __init__(self, rate: float, burst: float = 1.0,
                 queue_limit: int = 0, max_priority: int = 2) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {queue_limit}")
        if max_priority < 0:
            raise ValueError(
                f"max_priority must be >= 0, got {max_priority}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.queue_limit = int(queue_limit)
        self.max_priority = int(max_priority)
        #: GCRA theoretical arrival time per entry switch.
        self._tat: Dict[Hashable, float] = {}

    def allowed_occupancy(self, priority: int) -> int:
        """Deepest queue position priority ``priority`` may take."""
        p = min(max(int(priority), 0), self.max_priority)
        return int(self.queue_limit * (1 + p) / (1 + self.max_priority))

    def occupancy(self, entry: Hashable, now: float) -> int:
        """Virtual queue depth at ``entry`` as seen at ``now``."""
        tat = self._tat.get(entry)
        if tat is None:
            return 0
        delay = max(tat, now) - now - self.burst / self.rate
        if delay <= 0:
            return 0
        return int(math.ceil(delay * self.rate))

    def offer(self, entry: Hashable, now: float,
              priority: int = 1) -> AdmissionVerdict:
        """Decide one request arriving at ``entry`` at time ``now``."""
        registry = default_registry()
        interval = 1.0 / self.rate
        tat = max(self._tat.get(entry, float("-inf")), now)
        delay = tat - now - self.burst / self.rate
        if delay <= 0:
            # A token is available: admit immediately.
            self._tat[entry] = tat + interval
            if registry.enabled:
                registry.counter("resilience.admitted").inc()
                registry.histogram("resilience.queue_wait_seconds",
                                   buckets=TIME_BUCKETS).observe(0.0)
            return AdmissionVerdict(admitted=True)
        occupancy = int(math.ceil(delay * self.rate))
        allowed = self.allowed_occupancy(priority)
        if occupancy > allowed:
            reason = (SHED_QUEUE_FULL if occupancy > self.queue_limit
                      else SHED_PRIORITY)
            if registry.enabled:
                registry.counter("resilience.shed", reason=reason).inc()
            return AdmissionVerdict(admitted=False, shed_reason=reason,
                                    occupancy=occupancy)
        # Queue the request: it is served when its token accrues.
        self._tat[entry] = tat + interval
        if registry.enabled:
            registry.counter("resilience.admitted").inc()
            registry.histogram("resilience.queue_wait_seconds",
                               buckets=TIME_BUCKETS).observe(delay)
        return AdmissionVerdict(admitted=True, queued_delay=delay,
                                occupancy=occupancy)

    def reset(self) -> None:
        """Forget all bucket state (drains every virtual queue)."""
        self._tat.clear()
