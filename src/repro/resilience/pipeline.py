"""The resilient request pipeline: admission → deadline → breakers →
hedged probes → budget-bounded retries.

:class:`ResilientNetwork` wraps a :class:`~repro.core.GredNetwork` and
re-exposes ``place`` / ``retrieve`` / ``place_many`` / ``retrieve_many``
with request-level resilience:

1. **Admission** — each request passes the per-entry-switch
   :class:`~repro.resilience.admission.AdmissionController`; shed
   requests never touch the data plane.
2. **Deadline budget** — the admission queue wait, every probe's
   modeled service time and every retry backoff are charged against one
   :class:`~repro.resilience.deadline.DeadlineBudget` that starts at
   arrival.
3. **Circuit breakers** — destination switches and storage servers
   carry breakers on a :class:`~repro.resilience.breaker.BreakerBoard`
   fed by the PR 2 fault ground truth (``breakers.absorb``) and by
   consecutive request failures; replicas behind open breakers are
   skipped (routed around) while at least one candidate remains, and
   placement fails fast on them.
4. **Hedged retrieval** — with ``copies > 1``, when the deadline is at
   risk (or on any retry) the read is forked to the two nearest live
   replicas and the first success wins.

Latency is *virtual*: the pipeline charges
``per_hop_latency × hops + service_time`` per probe (plus
``failure_penalty`` for probes that die in routing) on the caller's
clock, so every run is deterministic and reports are bit-identical
under a fixed seed — there is no wall clock anywhere in the pipeline.

With ``config.enabled == False`` (the default) every call delegates
straight to the wrapped network and returns its result untouched inside
the :class:`ResilientOutcome` envelope: results are byte-identical to
calling the raw network, and no admission, breaker or metric state is
created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.network import GredError
from ..dataplane import ForwardingError
from ..hashing import replica_id, server_index
from ..obs import TIME_BUCKETS, default_registry
from ..obs.spans import Span, default_recorder as span_recorder
from .admission import AdmissionController, AdmissionVerdict
from .breaker import BreakerBoard, BreakerKey
from .config import ResilienceConfig
from .deadline import DeadlineBudget, RetryPolicy

#: Shed reason when the resolved entry switch has crashed.
SHED_ENTRY_DOWN = "entry_down"


@dataclass
class ResilientOutcome:
    """Envelope around one request's journey through the pipeline.

    ``result`` holds the wrapped network's ``PlacementResult`` /
    ``RetrievalResult`` when the request reached the data plane and
    succeeded (for placement: *all* copies acknowledged).  ``latency``
    is virtual seconds from arrival to completion — admission queue
    wait plus modeled probe service times plus retry backoffs.
    ``deadline_missed`` is True when that latency exceeds the
    request's budget (a late success still misses its SLO).
    """

    kind: str
    data_id: str
    admitted: bool = True
    shed_reason: Optional[str] = None
    ok: bool = False
    result: Any = None
    latency: float = 0.0
    queue_wait: float = 0.0
    attempts: int = 0
    retries: int = 0
    hedged: bool = False
    hedge_won: bool = False
    deadline_missed: bool = False
    records: List[Any] = field(default_factory=list)


class ResilientNetwork:
    """Resilience pipeline over a :class:`~repro.core.GredNetwork`.

    Parameters
    ----------
    net:
        The wrapped network.  The pipeline registers itself as
        ``net._resilience`` so the batch fast path can disengage while
        breakers are tripped.
    config:
        Pipeline policy; a default (disabled) config makes the wrapper
        a transparent passthrough.

    The pipeline keeps a monotonically advancing virtual clock.  Every
    request accepts an explicit arrival time ``now`` (open-loop
    harnesses pass their arrival process); when omitted, the internal
    clock is used and advanced by each request's latency (a closed-loop
    single client).
    """

    def __init__(self, net, config: Optional[ResilienceConfig] = None
                 ) -> None:
        self.net = net
        self.config = config or ResilienceConfig()
        cfg = self.config
        self.admission = AdmissionController(
            rate=cfg.rate_per_switch,
            burst=cfg.burst,
            queue_limit=cfg.queue_limit,
            max_priority=cfg.max_priority,
        )
        self.breakers = BreakerBoard(
            failure_threshold=cfg.breaker_failure_threshold,
            recovery_time=cfg.breaker_recovery_time,
            half_open_probes=cfg.breaker_half_open_probes,
        )
        self.retry_policy = RetryPolicy(
            base=cfg.backoff_base,
            multiplier=cfg.backoff_multiplier,
            jitter=cfg.backoff_jitter,
            max_attempts=cfg.max_attempts,
        )
        self._rng = np.random.default_rng(cfg.seed)
        self._clock = 0.0
        net._resilience = self

    # ------------------------------------------------------------------
    # fast-path interop
    # ------------------------------------------------------------------
    def blocks_fastpath(self) -> bool:
        """Whether the wrapped network's batch fast path must stand
        down: only while the pipeline is enabled *and* a breaker is
        tripped (traffic must be re-evaluated per request)."""
        return self.config.enabled and self.breakers.any_tripped()

    def absorb_faults(self, now: Optional[float] = None) -> int:
        """Force-open breakers for the wrapped network's current fault
        ground truth (``net.fault_state``); returns breakers tripped."""
        return self.breakers.absorb(self.net.fault_state,
                                    self._time(now))

    # ------------------------------------------------------------------
    # scalar requests
    # ------------------------------------------------------------------
    def retrieve(self, data_id: str, entry_switch: Optional[int] = None,
                 copies: int = 1, priority: int = 1,
                 deadline: Optional[float] = None,
                 now: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None,
                 max_hops: Optional[int] = None) -> ResilientOutcome:
        if not self.config.enabled:
            result = self.net.retrieve(
                data_id, entry_switch=entry_switch, copies=copies,
                rng=rng, max_hops=max_hops,
                read_repair=self.config.read_repair)
            return ResilientOutcome(kind="retrieve", data_id=data_id,
                                    ok=result.found, result=result,
                                    attempts=result.attempts)
        arrival = self._time(now)
        recorder, root = self._open_root("retrieve", data_id, arrival)
        entry, verdict = self._admit(data_id, "retrieve", entry_switch,
                                     arrival, priority, rng)
        if verdict is not None and not verdict.admitted:
            outcome = self._shed_outcome("retrieve", data_id,
                                         verdict.shed_reason, arrival)
            self._close_root(root, arrival, outcome)
            return outcome
        if entry is None:  # entry switch down
            outcome = self._shed_outcome("retrieve", data_id,
                                         SHED_ENTRY_DOWN, arrival)
            self._close_root(root, arrival, outcome)
            return outcome
        if root is not None:
            recorder.add_span(
                "admission.queue", start=arrival,
                end=arrival + verdict.queued_delay, parent=root,
                entry=entry, wait=verdict.queued_delay)
        outcome = self._retrieve_admitted(
            data_id, entry, copies, arrival, verdict.queued_delay,
            deadline, max_hops, recorder=recorder, root=root)
        self._finish(outcome, arrival)
        self._close_root(root, arrival, outcome)
        return outcome

    def place(self, data_id: str, payload: Any = None,
              entry_switch: Optional[int] = None, copies: int = 1,
              priority: int = 1, deadline: Optional[float] = None,
              now: Optional[float] = None,
              rng: Optional[np.random.Generator] = None
              ) -> ResilientOutcome:
        if not self.config.enabled:
            result = self.net.place(data_id, payload=payload,
                                    entry_switch=entry_switch,
                                    copies=copies, rng=rng)
            return ResilientOutcome(kind="place", data_id=data_id,
                                    ok=True, result=result,
                                    attempts=1)
        arrival = self._time(now)
        recorder, root = self._open_root("place", data_id, arrival)
        entry, verdict = self._admit(data_id, "place", entry_switch,
                                     arrival, priority, rng)
        if verdict is not None and not verdict.admitted:
            outcome = self._shed_outcome("place", data_id,
                                         verdict.shed_reason, arrival)
            self._close_root(root, arrival, outcome)
            return outcome
        if entry is None:
            outcome = self._shed_outcome("place", data_id,
                                         SHED_ENTRY_DOWN, arrival)
            self._close_root(root, arrival, outcome)
            return outcome
        if root is not None:
            recorder.add_span(
                "admission.queue", start=arrival,
                end=arrival + verdict.queued_delay, parent=root,
                entry=entry, wait=verdict.queued_delay)
        outcome = self._place_admitted(
            data_id, payload, entry, copies, arrival,
            verdict.queued_delay, deadline, recorder=recorder,
            root=root)
        self._finish(outcome, arrival)
        self._close_root(root, arrival, outcome)
        return outcome

    # ------------------------------------------------------------------
    # batch requests
    # ------------------------------------------------------------------
    def retrieve_many(self, data_ids: Sequence[str],
                      entry_switches: Optional[Sequence[int]] = None,
                      copies: int = 1,
                      priorities: Optional[Sequence[int]] = None,
                      deadline: Optional[float] = None,
                      now: Optional[float] = None,
                      rng: Optional[np.random.Generator] = None,
                      max_hops: Optional[int] = None
                      ) -> List[ResilientOutcome]:
        """Batch retrieval.  Disabled: one delegated ``retrieve_many``
        call, results untouched.  Enabled and healthy (no tripped
        breaker): admission per item, then one delegated batch call
        for the admitted subset — single attempt, no hedging (the
        throughput path).  Enabled with tripped breakers: every item
        takes the full scalar resilient path."""
        data_ids = list(data_ids)
        if not self.config.enabled:
            results = self.net.retrieve_many(
                data_ids, entry_switches=entry_switches, copies=copies,
                rng=rng, max_hops=max_hops)
            return [ResilientOutcome(kind="retrieve", data_id=d,
                                     ok=r.found, result=r,
                                     attempts=r.attempts)
                    for d, r in zip(data_ids, results)]
        if self.breakers.any_tripped():
            return [
                self.retrieve(
                    d,
                    entry_switch=(entry_switches[i]
                                  if entry_switches is not None
                                  else None),
                    copies=copies,
                    priority=(priorities[i] if priorities is not None
                              else 1),
                    deadline=deadline, now=now, rng=rng,
                    max_hops=max_hops)
                for i, d in enumerate(data_ids)
            ]
        arrival = self._time(now)
        plan = self._admit_batch(data_ids, "retrieve", entry_switches,
                                 arrival, priorities, rng)
        outcomes, admitted_idx, entries, waits = plan
        if admitted_idx:
            results = self.net.retrieve_many(
                [data_ids[i] for i in admitted_idx],
                entry_switches=[entries[i] for i in admitted_idx],
                copies=copies, max_hops=max_hops)
            timeout = deadline or self.config.default_deadline
            for j, i in enumerate(admitted_idx):
                r = results[j]
                wait = waits[i]
                service = self._retrieval_service_time(r)
                self._feed_breakers_retrieval(data_ids[i], r, copies,
                                              arrival + wait + service)
                outcomes[i] = ResilientOutcome(
                    kind="retrieve", data_id=data_ids[i],
                    ok=r.found, result=r, latency=wait + service,
                    queue_wait=wait, attempts=r.attempts,
                    deadline_missed=wait + service > timeout,
                )
                self._finish(outcomes[i], arrival)
        return outcomes

    def place_many(self, data_ids: Sequence[str],
                   payloads: Optional[Sequence[Any]] = None,
                   entry_switches: Optional[Sequence[int]] = None,
                   copies: int = 1,
                   priorities: Optional[Sequence[int]] = None,
                   deadline: Optional[float] = None,
                   now: Optional[float] = None,
                   rng: Optional[np.random.Generator] = None
                   ) -> List[ResilientOutcome]:
        """Batch placement; same structure as :meth:`retrieve_many`."""
        data_ids = list(data_ids)
        if not self.config.enabled:
            results = self.net.place_many(
                data_ids, payloads=payloads,
                entry_switches=entry_switches, copies=copies, rng=rng)
            return [ResilientOutcome(kind="place", data_id=d, ok=True,
                                     result=r, attempts=1)
                    for d, r in zip(data_ids, results)]
        if self.breakers.any_tripped():
            return [
                self.place(
                    d,
                    payload=(payloads[i] if payloads is not None
                             else None),
                    entry_switch=(entry_switches[i]
                                  if entry_switches is not None
                                  else None),
                    copies=copies,
                    priority=(priorities[i] if priorities is not None
                              else 1),
                    deadline=deadline, now=now, rng=rng)
                for i, d in enumerate(data_ids)
            ]
        arrival = self._time(now)
        plan = self._admit_batch(data_ids, "place", entry_switches,
                                 arrival, priorities, rng)
        outcomes, admitted_idx, entries, waits = plan
        if admitted_idx:
            timeout = deadline or self.config.default_deadline
            try:
                results = self.net.place_many(
                    [data_ids[i] for i in admitted_idx],
                    payloads=([payloads[i] for i in admitted_idx]
                              if payloads is not None else None),
                    entry_switches=[entries[i] for i in admitted_idx],
                    copies=copies)
            except (GredError, ForwardingError):
                # A mid-batch failure means some node is sick: fall
                # back to the scalar resilient path per item so
                # breakers and retries engage.
                for i in admitted_idx:
                    outcomes[i] = self._place_admitted(
                        data_ids[i],
                        payloads[i] if payloads is not None else None,
                        entries[i], copies, arrival, waits[i],
                        deadline)
                    self._finish(outcomes[i], arrival)
                return outcomes
            for j, i in enumerate(admitted_idx):
                r = results[j]
                wait = waits[i]
                service = sum(
                    self.config.per_hop_latency * 2 * rec.physical_hops
                    + self.config.service_time for rec in r.records)
                for rec in r.records:
                    when = arrival + wait + service
                    self.breakers.success(
                        ("switch", rec.destination_switch), when)
                    self.breakers.success(
                        ("server", rec.server_id), when)
                outcomes[i] = ResilientOutcome(
                    kind="place", data_id=data_ids[i], ok=True,
                    result=r, latency=wait + service, queue_wait=wait,
                    attempts=1,
                    deadline_missed=wait + service > timeout,
                )
                self._finish(outcomes[i], arrival)
        return outcomes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-friendly pipeline state for ``gred stats``."""
        return {
            "enabled": self.config.enabled,
            "clock": self._clock,
            "breakers": self.breakers.states(),
            "tripped": [f"{kind}:{ident}" for kind, ident
                        in self.breakers.tripped()],
            "blocks_fastpath": self.blocks_fastpath(),
        }

    # ------------------------------------------------------------------
    # internals — tracing
    # ------------------------------------------------------------------
    @staticmethod
    def _open_root(kind: str, data_id: str, arrival: float):
        """Open the request's root span (virtual-time).  The pipeline
        narrates the whole journey itself, so nested network-level span
        sites are suppressed around every data-plane call (see
        :meth:`_quiet`) — otherwise each probe would start its own
        wall-clock trace and the timelines would not compose."""
        recorder = span_recorder()
        if recorder is None:
            return None, None
        root = recorder.record_trace(f"request.{kind}", key=data_id,
                                     start=arrival, kind=kind,
                                     pipeline="resilient")
        return recorder, root

    @staticmethod
    def _close_root(root: Optional[Span], arrival: float,
                    outcome: ResilientOutcome) -> None:
        if root is None:
            return
        root.end = arrival + outcome.latency
        root.attrs.update(
            admitted=outcome.admitted, ok=outcome.ok,
            attempts=outcome.attempts, retries=outcome.retries,
            hedged=outcome.hedged, hedge_won=outcome.hedge_won,
            queue_wait=outcome.queue_wait,
            deadline_missed=outcome.deadline_missed)
        if not outcome.admitted:
            root.status = "shed"
            root.attrs["shed_reason"] = outcome.shed_reason
        elif not outcome.ok:
            root.status = "error"

    def _quiet(self, recorder):
        """Context manager silencing network-level span sites for one
        wrapped data-plane call."""
        if recorder is not None:
            return recorder.suppress()
        from contextlib import nullcontext

        return nullcontext()

    # ------------------------------------------------------------------
    # internals — admission
    # ------------------------------------------------------------------
    def _time(self, now: Optional[float]) -> float:
        if now is None:
            return self._clock
        self._clock = max(self._clock, now)
        return now

    def _admit(self, data_id: str, kind: str,
               entry_switch: Optional[int], arrival: float,
               priority: int, rng: Optional[np.random.Generator]
               ) -> Tuple[Optional[int], Optional[AdmissionVerdict]]:
        """Resolve the entry switch and offer the request to admission
        control.  ``(None, None)`` means the entry is down."""
        registry = default_registry()
        try:
            entry = self.net._resolve_entry(entry_switch, rng)
        except GredError:
            if registry.enabled:
                registry.counter("resilience.shed",
                                 reason=SHED_ENTRY_DOWN).inc()
            return None, None
        return entry, self.admission.offer(entry, arrival, priority)

    def _admit_batch(self, data_ids: Sequence[str], kind: str,
                     entry_switches: Optional[Sequence[int]],
                     arrival: float,
                     priorities: Optional[Sequence[int]],
                     rng: Optional[np.random.Generator]):
        """Per-item admission for a batch call; returns the outcome
        list (shed slots filled in), admitted indices, resolved
        entries and queue waits."""
        outcomes: List[Optional[ResilientOutcome]] = [None] * len(
            data_ids)
        admitted_idx: List[int] = []
        entries: Dict[int, int] = {}
        waits: Dict[int, float] = {}
        for i, data_id in enumerate(data_ids):
            entry_arg = (entry_switches[i]
                         if entry_switches is not None else None)
            priority = priorities[i] if priorities is not None else 1
            entry, verdict = self._admit(data_id, kind, entry_arg,
                                         arrival, priority, rng)
            if entry is None:
                outcomes[i] = self._shed_outcome(kind, data_id,
                                                 SHED_ENTRY_DOWN,
                                                 arrival)
            elif not verdict.admitted:
                outcomes[i] = self._shed_outcome(kind, data_id,
                                                 verdict.shed_reason,
                                                 arrival)
            else:
                admitted_idx.append(i)
                entries[i] = entry
                waits[i] = verdict.queued_delay
        return outcomes, admitted_idx, entries, waits

    def _shed_outcome(self, kind: str, data_id: str, reason: str,
                      arrival: float) -> ResilientOutcome:
        registry = default_registry()
        if registry.enabled:
            registry.counter("resilience.requests", kind=kind).inc()
        return ResilientOutcome(kind=kind, data_id=data_id,
                                admitted=False, shed_reason=reason,
                                ok=False)

    # ------------------------------------------------------------------
    # internals — retrieval
    # ------------------------------------------------------------------
    def _retrieve_admitted(self, data_id: str, entry: int, copies: int,
                           arrival: float, queue_wait: float,
                           deadline: Optional[float],
                           max_hops: Optional[int],
                           recorder=None,
                           root: Optional[Span] = None
                           ) -> ResilientOutcome:
        cfg = self.config
        budget = DeadlineBudget(arrival,
                                deadline or cfg.default_deadline)
        registry = default_registry()
        clock = arrival + queue_wait
        outcome = ResilientOutcome(kind="retrieve", data_id=data_id,
                                   queue_wait=queue_wait)
        tries = 0
        last_result = None
        while True:
            tries += 1
            clock, result = self._attempt_retrieve(
                data_id, entry, copies, clock, budget, max_hops,
                retrying=tries > 1, outcome=outcome,
                recorder=recorder, root=root)
            if result is not None:
                last_result = result
            if result is not None and result.found:
                outcome.ok = True
                outcome.result = result
                break
            delay = self.retry_policy.next_delay(
                tries, budget.remaining(clock), self._rng)
            if delay is None or budget.expired(clock):
                break
            if root is not None:
                recorder.add_span("retry.backoff", start=clock,
                                  end=clock + delay, parent=root,
                                  attempt=tries, delay=delay)
            clock += delay
            outcome.retries += 1
            if registry.enabled:
                registry.counter("resilience.retries").inc()
        if not outcome.ok:
            outcome.result = last_result
        outcome.latency = clock - arrival
        outcome.deadline_missed = outcome.latency > budget.timeout
        return outcome

    def _attempt_retrieve(self, data_id: str, entry: int, copies: int,
                          clock: float, budget: DeadlineBudget,
                          max_hops: Optional[int], retrying: bool,
                          outcome: ResilientOutcome, recorder=None,
                          root: Optional[Span] = None):
        """One failover walk over the (breaker-filtered) replica order.
        Returns ``(clock, best_result_or_None)``; ``outcome`` collects
        attempt/hedge accounting."""
        cfg = self.config
        registry = default_registry()
        order = self.net.replica_order(data_id, copies, entry)
        open_order = [i for i in order
                      if self._replica_allowed(data_id, i, clock)]
        if open_order and len(open_order) < len(order) \
                and root is not None:
            recorder.add_span(
                "breaker.route_around", start=clock, end=clock,
                parent=root,
                skipped=[i for i in order if i not in open_order])
        if not open_order:
            # Every replica sits behind an open breaker.  Correctness
            # beats fail-fast: probe the original order anyway (the
            # breakers may be wrong, e.g. opened by misses on a
            # never-placed item).
            open_order = order
            if registry.enabled:
                registry.counter("resilience.breaker_overrides").inc()
            if root is not None:
                recorder.add_span("breaker.override", start=clock,
                                  end=clock, parent=root)
        walk = list(open_order)
        miss_result = None
        # Hedge: fork the read to the two nearest live replicas when
        # the deadline is at risk or this is already a retry.
        hedge = (cfg.hedge_enabled and len(walk) > 1
                 and (retrying or budget.remaining(clock)
                      <= cfg.hedge_fraction * budget.timeout))
        if hedge:
            outcome.hedged = True
            if registry.enabled:
                registry.counter("resilience.hedges").inc()
            first, second = walk[0], walk[1]
            outcome.attempts += 2
            r1, l1 = self._probe_retrieve(data_id, first, entry,
                                          outcome.attempts - 1,
                                          max_hops, clock,
                                          recorder=recorder, root=root,
                                          hedged=True)
            r2, l2 = self._probe_retrieve(data_id, second, entry,
                                          outcome.attempts, max_hops,
                                          clock, recorder=recorder,
                                          root=root, hedged=True)
            hits = [(l, r) for l, r in ((l1, r1), (l2, r2))
                    if r is not None and r.found]
            if hits:
                lat, best = min(hits, key=lambda pair: pair[0])
                if best is r2:
                    outcome.hedge_won = True
                    if registry.enabled:
                        registry.counter("resilience.hedge_wins").inc()
                if root is not None:
                    recorder.add_span(
                        "retrieve.hedge", start=clock, end=clock + lat,
                        parent=root, won=best is r2, forks=2)
                self._maybe_read_repair(data_id, copies, recorder)
                return clock + lat, best
            # Both forks failed; the client waited for the slower one.
            if root is not None:
                recorder.add_span(
                    "retrieve.hedge", start=clock,
                    end=clock + max(l1, l2), parent=root,
                    status="error", won=False, forks=2)
            clock += max(l1, l2)
            for r in (r1, r2):
                if r is not None:
                    miss_result = r
            walk = walk[2:]
        for copy_index in walk:
            if budget.expired(clock):
                break
            outcome.attempts += 1
            result, latency = self._probe_retrieve(
                data_id, copy_index, entry, outcome.attempts, max_hops,
                clock, recorder=recorder, root=root)
            clock += latency
            if result is not None and result.found:
                self._maybe_read_repair(data_id, copies, recorder)
                return clock, result
            if result is not None:
                miss_result = result
        return clock, miss_result

    def _maybe_read_repair(self, data_id: str, copies: int,
                           recorder) -> None:
        """Opt-in read-path anti-entropy: after a successful read,
        synchronize the item's replicas to the newest stamp observed
        among them.  A background write-back — it charges no latency
        and records no request spans."""
        cfg = self.config
        if not cfg.read_repair or copies < 2:
            return
        repair = getattr(self.net, "read_repair", None)
        if repair is None:
            return
        with self._quiet(recorder):
            repair(data_id, copies)

    def _probe_retrieve(self, data_id: str, copy_index: int,
                        entry: int, attempt_no: int,
                        max_hops: Optional[int], now: float,
                        recorder=None, root: Optional[Span] = None,
                        hedged: bool = False):
        """Probe one replica; returns ``(result_or_None, latency)``
        and feeds the breakers."""
        cfg = self.config
        copy_id = replica_id(data_id, copy_index)
        dest = self.net.destination_switch(copy_id)
        switch_key: BreakerKey = ("switch", dest)
        server_key = ("server", self._server_key(copy_id, dest))
        with self._quiet(recorder):
            result = self.net.probe_replica(data_id, copy_index, entry,
                                            max_hops=max_hops,
                                            attempts=attempt_no)
        if result is None:
            # The route itself failed: the destination's neighborhood
            # is sick.
            self.breakers.failure(switch_key, now)
            self._probe_span(recorder, root, now, cfg.failure_penalty,
                             copy_index, attempt_no, dest, hedged,
                             "route_error", None)
            return None, cfg.failure_penalty
        if result.found:
            latency = (cfg.per_hop_latency * result.round_trip_hops
                       + cfg.service_time)
            self.breakers.success(switch_key, now + latency)
            self.breakers.success(server_key, now + latency)
            self._probe_span(recorder, root, now, latency, copy_index,
                             attempt_no, dest, hedged, "ok", result)
            return result, latency
        # Routed but the copy is gone (crashed/lost server data).
        latency = (cfg.per_hop_latency * 2 * result.request_hops
                   + cfg.service_time)
        self.breakers.failure(server_key, now + latency)
        self._probe_span(recorder, root, now, latency, copy_index,
                         attempt_no, dest, hedged, "miss", result)
        return result, latency

    @staticmethod
    def _probe_span(recorder, root: Optional[Span], start: float,
                    latency: float, copy_index: int, attempt_no: int,
                    dest: int, hedged: bool, status: str,
                    result) -> None:
        """One ``retrieve.probe`` span under the request root, with a
        ``hop.transit`` child per switch the probe's route visited
        (laid out proportionally inside the probe's virtual window)."""
        if root is None:
            return
        attrs = {"copy": copy_index, "attempt": attempt_no,
                 "destination": dest}
        if hedged:
            attrs["hedged"] = True
        probe = recorder.add_span(
            "retrieve.probe", start=start, end=start + latency,
            parent=root, status=status, **attrs)
        if probe is None or result is None or not result.trace:
            return
        step = latency / max(1, len(result.trace))
        for k, sid in enumerate(result.trace):
            recorder.add_span(
                "hop.transit", start=start + k * step,
                end=start + (k + 1) * step, parent=probe, switch=sid)

    def _replica_allowed(self, data_id: str, copy_index: int,
                         now: float) -> bool:
        copy_id = replica_id(data_id, copy_index)
        dest = self.net.destination_switch(copy_id)
        if not self.breakers.allow(("switch", dest), now):
            return False
        return self.breakers.allow(
            ("server", self._server_key(copy_id, dest)), now)

    def _server_key(self, copy_id: str, dest: int) -> Tuple[int, int]:
        servers = self.net.server_map.get(dest, ())
        count = len(servers)
        if count == 0:
            return (dest, 0)
        return (dest, server_index(copy_id, count))

    def _retrieval_service_time(self, result) -> float:
        cfg = self.config
        if result.found:
            return (cfg.per_hop_latency * result.round_trip_hops
                    + cfg.service_time)
        return (cfg.per_hop_latency * 2 * result.request_hops
                + cfg.service_time)

    def _feed_breakers_retrieval(self, data_id: str, result,
                                 copies: int, now: float) -> None:
        copy_id = replica_id(data_id, result.copy_used)
        dest = (result.destination_switch
                if result.destination_switch is not None
                else self.net.destination_switch(copy_id))
        switch_key: BreakerKey = ("switch", dest)
        if result.found:
            self.breakers.success(switch_key, now)
            if result.server_id is not None:
                self.breakers.success(("server", result.server_id),
                                      now)
        else:
            self.breakers.failure(
                ("server", self._server_key(copy_id, dest)), now)

    # ------------------------------------------------------------------
    # internals — placement
    # ------------------------------------------------------------------
    def _place_admitted(self, data_id: str, payload: Any, entry: int,
                        copies: int, arrival: float, queue_wait: float,
                        deadline: Optional[float], recorder=None,
                        root: Optional[Span] = None
                        ) -> ResilientOutcome:
        cfg = self.config
        budget = DeadlineBudget(arrival,
                                deadline or cfg.default_deadline)
        registry = default_registry()
        clock = arrival + queue_wait
        outcome = ResilientOutcome(kind="place", data_id=data_id,
                                   queue_wait=queue_wait)
        placed: Dict[int, Any] = {}
        tries = 0
        while True:
            tries += 1
            for copy_index in range(copies):
                if copy_index in placed:
                    continue
                if budget.expired(clock):
                    break
                copy_id = replica_id(data_id, copy_index)
                dest = self.net.destination_switch(copy_id)
                switch_key: BreakerKey = ("switch", dest)
                server_key = ("server",
                              self._server_key(copy_id, dest))
                if not (self.breakers.allow(switch_key, clock)
                        and self.breakers.allow(server_key, clock)):
                    # Fail fast on an open breaker: no data-plane
                    # traffic, no latency burned; the retry loop comes
                    # back after backoff (by when the breaker may
                    # admit a probe).
                    if registry.enabled:
                        registry.counter(
                            "resilience.breaker_fast_fails").inc()
                    if root is not None:
                        recorder.add_span(
                            "breaker.fast_fail", start=clock,
                            end=clock, parent=root, copy=copy_index,
                            destination=dest)
                    continue
                outcome.attempts += 1
                try:
                    with self._quiet(recorder):
                        record = self.net._place_one(copy_id, payload,
                                                     entry)
                except (GredError, ForwardingError):
                    if root is not None:
                        recorder.add_span(
                            "place.copy", start=clock,
                            end=clock + cfg.failure_penalty,
                            parent=root, status="route_error",
                            copy=copy_index, destination=dest,
                            attempt=outcome.attempts)
                    clock += cfg.failure_penalty
                    self.breakers.failure(server_key, clock)
                    continue
                latency = (cfg.per_hop_latency * 2
                           * record.physical_hops + cfg.service_time)
                if root is not None:
                    recorder.add_span(
                        "place.copy", start=clock,
                        end=clock + latency, parent=root,
                        copy=copy_index, destination=dest,
                        server=record.server_id,
                        physical_hops=record.physical_hops,
                        attempt=outcome.attempts)
                clock += latency
                self.breakers.success(switch_key, clock)
                self.breakers.success(("server", record.server_id),
                                      clock)
                placed[copy_index] = record
            if len(placed) == copies:
                outcome.ok = True
                break
            delay = self.retry_policy.next_delay(
                tries, budget.remaining(clock), self._rng)
            if delay is None or budget.expired(clock):
                break
            if root is not None:
                recorder.add_span("retry.backoff", start=clock,
                                  end=clock + delay, parent=root,
                                  attempt=tries, delay=delay)
            clock += delay
            outcome.retries += 1
            if registry.enabled:
                registry.counter("resilience.retries").inc()
        outcome.records = [placed[i] for i in sorted(placed)]
        if outcome.ok:
            from ..core.results import PlacementResult

            outcome.result = PlacementResult(
                data_id=data_id,
                records=[placed[i] for i in range(copies)])
        outcome.latency = clock - arrival
        outcome.deadline_missed = outcome.latency > budget.timeout
        return outcome

    # ------------------------------------------------------------------
    # internals — completion accounting
    # ------------------------------------------------------------------
    def _finish(self, outcome: ResilientOutcome,
                arrival: float) -> None:
        registry = default_registry()
        if registry.enabled:
            registry.counter("resilience.requests",
                             kind=outcome.kind).inc()
            if not outcome.ok:
                registry.counter("resilience.failures",
                                 kind=outcome.kind).inc()
            if outcome.deadline_missed:
                registry.counter("resilience.deadline_misses").inc()
            registry.histogram("resilience.latency_seconds",
                               buckets=TIME_BUCKETS).observe(
                outcome.latency)
        self._clock = max(self._clock, arrival + outcome.latency)
