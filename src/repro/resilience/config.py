"""Configuration of the resilient request pipeline.

One :class:`ResilienceConfig` carries every knob of the pipeline —
admission control, deadlines/retries, circuit breakers, hedging and the
virtual service-time model — so a deployment's overload policy is a
single serializable value.  The config is **disabled by default**: a
:class:`~repro.resilience.pipeline.ResilientNetwork` built from a
default config is a transparent passthrough whose results are
byte-identical to calling the wrapped :class:`~repro.core.GredNetwork`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class ResilienceConfig:
    """Policy knobs of the resilient request pipeline.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` (the default) makes the pipeline a
        transparent passthrough: no admission, no retries, no breakers,
        no metrics — results identical to the raw network.
    rate_per_switch:
        Token-bucket refill rate (requests/second) of each entry
        switch.  The deployment's nominal capacity is
        ``rate_per_switch * number of entry switches``.
    burst:
        Token-bucket capacity: how many back-to-back requests one entry
        switch absorbs without queueing.
    queue_limit:
        Bound of the per-entry pending queue (in requests).  A request
        that would queue deeper than its priority allows is shed.
    max_priority:
        Highest request priority.  Priority ``p`` may occupy up to
        ``queue_limit * (1 + p) / (1 + max_priority)`` queue slots, so
        low-priority traffic is shed first as the queue fills.
    default_deadline:
        Per-request time budget (seconds) when the caller passes none.
    max_attempts:
        Total tries per request, including the first (1 = no retry).
    backoff_base, backoff_multiplier, backoff_jitter:
        Retry delay: attempt ``n`` backs off
        ``backoff_base * backoff_multiplier**(n-1)`` seconds, scaled by
        a uniform jitter in ``[1 - backoff_jitter, 1 + backoff_jitter]``
        drawn from the pipeline's seeded generator.  A retry is taken
        only when the backoff still fits the remaining deadline budget.
    breaker_failure_threshold:
        Consecutive failures that trip a circuit breaker open.
    breaker_recovery_time:
        Seconds an open breaker waits before admitting half-open probes.
    breaker_half_open_probes:
        Consecutive half-open successes required to close a breaker.
    hedge_enabled:
        Allow hedged retrieval (``copies > 1`` only).
    hedge_fraction:
        Hedge when the remaining deadline budget drops to this fraction
        of the total budget (or on any retry attempt).
    read_repair:
        After a successful multi-copy retrieval, synchronize the
        item's replicas to the newest stamp observed among them
        (:meth:`repro.core.GredNetwork.read_repair`) — opt-in
        anti-entropy piggybacked on the read path.  Repairs happen
        outside the latency model (a background write-back).
    per_hop_latency:
        Virtual seconds charged per physical hop of a request/response
        path (the pipeline's latency model — no wall clock anywhere).
    service_time:
        Virtual seconds charged by the storage server per probe.
    failure_penalty:
        Virtual seconds charged by a probe that fails to route or
        place (the cost of discovering the failure).
    seed:
        Seeds the pipeline's jitter generator.
    """

    enabled: bool = False
    # admission
    rate_per_switch: float = 200.0
    burst: float = 40.0
    queue_limit: int = 32
    max_priority: int = 2
    # deadlines / retries
    default_deadline: float = 0.25
    max_attempts: int = 3
    backoff_base: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.5
    # circuit breakers
    breaker_failure_threshold: int = 5
    breaker_recovery_time: float = 1.0
    breaker_half_open_probes: int = 2
    # hedged retrieval
    hedge_enabled: bool = True
    hedge_fraction: float = 0.5
    # read-path anti-entropy
    read_repair: bool = False
    # virtual service-time model
    per_hop_latency: float = 0.0005
    service_time: float = 0.001
    failure_penalty: float = 0.005
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_switch <= 0:
            raise ValueError(
                f"rate_per_switch must be positive, got "
                f"{self.rate_per_switch}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.max_priority < 0:
            raise ValueError(
                f"max_priority must be >= 0, got {self.max_priority}")
        if self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got "
                f"{self.default_deadline}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_multiplier < 1:
            raise ValueError(
                "backoff_base must be >= 0 and backoff_multiplier >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1), got "
                f"{self.backoff_jitter}")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_recovery_time < 0:
            raise ValueError("breaker_recovery_time must be >= 0")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be >= 1")
        if not 0.0 < self.hedge_fraction <= 1.0:
            raise ValueError(
                f"hedge_fraction must be in (0, 1], got "
                f"{self.hedge_fraction}")
        if min(self.per_hop_latency, self.service_time,
               self.failure_penalty) < 0:
            raise ValueError("latency-model times must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (stable key order)."""
        return {
            "enabled": self.enabled,
            "rate_per_switch": self.rate_per_switch,
            "burst": self.burst,
            "queue_limit": self.queue_limit,
            "max_priority": self.max_priority,
            "default_deadline": self.default_deadline,
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_multiplier": self.backoff_multiplier,
            "backoff_jitter": self.backoff_jitter,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_recovery_time": self.breaker_recovery_time,
            "breaker_half_open_probes": self.breaker_half_open_probes,
            "hedge_enabled": self.hedge_enabled,
            "hedge_fraction": self.hedge_fraction,
            "read_repair": self.read_repair,
            "per_hop_latency": self.per_hop_latency,
            "service_time": self.service_time,
            "failure_penalty": self.failure_penalty,
            "seed": self.seed,
        }
