"""Result records returned by the GRED placement/retrieval API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..edge import ServerId


@dataclass(slots=True)
class PlacementRecord:
    """Outcome of placing one copy of a data item.

    The record classes carry ``__slots__``: one instance is built per
    request (per copy, per probe), so the per-instance ``__dict__``
    was the single largest allocation on the hot path (see ROADMAP
    profiling note).  Slots cut both the memory and the construction
    time without changing the dataclass API.

    Attributes
    ----------
    data_id:
        Identifier of this copy (the replica id for copies > 0).
    entry_switch:
        Switch where the request entered the network.
    destination_switch:
        DT switch closest to the copy's hash position.
    server_id:
        Edge server that stored the copy (may live on a neighbor switch
        when a range extension is active).
    physical_hops:
        Physical hops of the placement route, including the extra hop to
        an extension takeover server when applicable.
    overlay_hops:
        Greedy decisions taken (the paper's one-overlay-hop claim is
        about the DHT structure; greedy may traverse several DT edges).
    trace:
        Switch ids visited by the request.
    extended:
        True when the copy was redirected by a range extension.
    hinted:
        True when the copy could not reach its home server (crashed or
        partitioned away) and was parked as a hinted-handoff write on
        the nearest live server instead; ``server_id`` then names the
        hint holder, not the home.
    """

    data_id: str
    entry_switch: int
    destination_switch: int
    server_id: ServerId
    physical_hops: int
    overlay_hops: int
    trace: List[int] = field(default_factory=list)
    extended: bool = False
    hinted: bool = False


@dataclass(slots=True)
class PlacementResult:
    """Outcome of placing a data item and all of its copies."""

    data_id: str
    records: List[PlacementRecord]

    @property
    def primary(self) -> PlacementRecord:
        return self.records[0]

    @property
    def num_copies(self) -> int:
        return len(self.records)


@dataclass(slots=True)
class RetrievalResult:
    """Outcome of retrieving a data item.

    ``request_hops`` counts the forward path (access point to the
    storage server, including the extension fork hop when taken);
    ``response_hops`` counts the reply path back to the access point
    (network shortest path); ``round_trip_hops`` is their sum.
    ``attempts`` counts the replicas probed nearest-first before this
    outcome (1 = the nearest copy answered; > 1 = replica failover).
    """

    data_id: str
    found: bool
    payload: Any
    entry_switch: int
    destination_switch: Optional[int]
    server_id: Optional[ServerId]
    request_hops: int
    response_hops: int
    trace: List[int] = field(default_factory=list)
    copy_used: int = 0
    forked: bool = False
    attempts: int = 1

    @property
    def round_trip_hops(self) -> int:
        return self.request_hops + self.response_hops


#: Convenience alias: (switch id, serial) pairs index servers everywhere.
ServerRef = Tuple[int, int]
