"""``GredNetwork``: the public facade of the GRED system.

Wires the control plane, the data plane and the edge plane together and
exposes the two services the paper defines — *data placement* (deliver a
data item to an edge server for storage) and *data retrieval* (find the
storage server of an item and bring the data back to the user) — plus
range extension, replication and network dynamics.

Typical use::

    from repro import GredNetwork, attach_uniform, brite_waxman_graph
    import numpy as np

    rng = np.random.default_rng(7)
    topology, _ = brite_waxman_graph(50, min_degree=3, rng=rng)
    servers = attach_uniform(topology.nodes(), servers_per_switch=10)
    net = GredNetwork(topology, servers, cvt_iterations=50)

    placement = net.place("videos/cam3/frame-001", payload=b"...")
    result = net.retrieve("videos/cam3/frame-001", entry_switch=4)
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .. import utils
from ..controlplane import Controller, ControllerConfig
from ..dataplane import (
    CompiledRouter,
    ForwardingError,
    Packet,
    PacketKind,
    RouteResult,
    route_packet,
)
from ..edge import (
    EdgeServer,
    ServerMap,
    StorageFull,
    attach_uniform,
    load_vector,
)
from ..geometry import euclidean
from ..graph import Graph, bfs_distances, hop_count
from ..hashing import (
    data_position,
    positions_from_digests,
    replica_id,
    replica_ids_flat,
    serials_from_digests,
    server_index,
    sha256_digests,
)
from ..obs import BYTE_BUCKETS, HOP_BUCKETS, default_registry, demand_region
from ..obs.bridge import spans_from_tracer
from ..obs.spans import default_recorder as default_span_recorder
from .results import PlacementRecord, PlacementResult, RetrievalResult

#: Bound on the per-epoch ``(entry, copy_id)`` route cache.
_ROUTE_CACHE_CAP = 65536


class _FastPathState:
    """Epoch-scoped request fast path: the compiled router plus the
    route and hop-distance caches that share its lifetime.

    ``epoch`` tracks the controller's global epoch (a mismatch means
    every position moved — rebuild everything); ``version`` tracks its
    change counter so scoped events (joins, leaves, link changes) can
    patch the router and evict only the affected cache entries."""

    __slots__ = ("epoch", "version", "router", "routes", "stats",
                 "hops")

    def __init__(self, epoch: int, version: int,
                 router: CompiledRouter) -> None:
        self.epoch = epoch
        self.version = version
        self.router = router
        #: LRU of (entry, copy_id) -> (trace, overlay, dest, serial).
        #: Traces are shared lists — consumers copy, never mutate.
        #: Extensions are intentionally NOT cached — they are
        #: resolved live so extend/retract need no epoch bump.
        self.routes: OrderedDict = OrderedDict()
        #: Per-route (greedy, vl_starts, vl_relays) decision mix,
        #: cached alongside ``routes`` so telemetry replayed from a
        #: cache hit matches what the engine would have counted.
        self.stats: Dict[Any, Tuple[int, int, int]] = {}
        #: BFS hop distances keyed by source switch.
        self.hops: Dict[int, Dict[int, int]] = {}


class GredError(Exception):
    """Raised for invalid requests against a :class:`GredNetwork`."""


def _payload_size(payload: Any) -> Optional[int]:
    """Byte/element size of a payload for the size histogram, or
    ``None`` for unsized payloads."""
    if payload is None:
        return None
    try:
        return len(payload)
    except TypeError:
        return None


class GredNetwork:
    """A complete software-defined edge network running GRED.

    Parameters
    ----------
    topology:
        Physical switch graph (connected).
    server_map:
        Servers per switch; when omitted, ``servers_per_switch``
        identical unbounded servers are attached to every switch.
    servers_per_switch:
        Used only when ``server_map`` is omitted.
    cvt_iterations:
        The paper's ``T``.  ``0`` gives the GRED-NoCVT variant.
    samples_per_iteration, seed:
        Forwarded to the control plane.
    position_fn:
        Mapping from a data identifier to its virtual-space position.
        Defaults to the paper's SHA-256 scheme
        (:func:`repro.hashing.data_position`, uniform over the unit
        square).  Deployments with locality-preserving naming pass
        their own deterministic mapping here — and a matching
        ``density_sampler`` so C-regulation equalizes load under that
        density (paper Equation 2).
    density_sampler:
        Optional ``(k, rng) -> (k, 2)`` sampler of the data-position
        density, forwarded to C-regulation.
    """

    def __init__(
        self,
        topology: Graph,
        server_map: Optional[ServerMap] = None,
        servers_per_switch: int = 10,
        cvt_iterations: int = 50,
        samples_per_iteration: int = 1000,
        seed: int = 0,
        position_fn=None,
        density_sampler=None,
    ) -> None:
        if server_map is None:
            server_map = attach_uniform(
                topology.nodes(), servers_per_switch=servers_per_switch
            )
        config = ControllerConfig(
            cvt_iterations=cvt_iterations,
            samples_per_iteration=samples_per_iteration,
            seed=seed,
            density_sampler=density_sampler,
        )
        self._position_fn = position_fn or data_position
        self.controller = Controller(topology, server_map, config=config)
        self._fault_state = None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def fault_state(self):
        """Ground-truth failure state, or ``None`` when no
        :class:`~repro.faults.FaultInjector` is attached.  When set,
        routing degrades around crashed switches/links and retrieval
        skips crashed servers."""
        # getattr: snapshots restore via __new__ and predate the field.
        return getattr(self, "_fault_state", None)

    @fault_state.setter
    def fault_state(self, state) -> None:
        self._fault_state = state

    @property
    def hinted_handoff(self) -> bool:
        """Whether writes/deletes aimed at an unreachable home server
        are parked as hints on the nearest live server (drained by
        :meth:`drain_hints` / :meth:`scrub`) instead of raising.
        Off by default: without it a placement toward a crashed,
        unrepaired server fails loudly, which is the right default for
        chaos experiments that count errors."""
        # getattr: snapshots restore via __new__ and predate the field.
        return getattr(self, "_hinted_handoff", False)

    @hinted_handoff.setter
    def hinted_handoff(self, enabled: bool) -> None:
        self._hinted_handoff = bool(enabled)

    @property
    def write_version(self) -> int:
        """The network-global write clock: how many stamped write /
        delete operations have been issued.  Only advances while a
        fault state is attached (stamps exist for repair; the
        fault-free paths stay byte-identical without them)."""
        return getattr(self, "_write_version", 0)

    def _next_stamp(self, origin: int):
        """Allocate the next ``(version, origin)`` write stamp.  One
        stamp is shared by every copy of one logical operation so
        cross-copy staleness is comparable."""
        version = getattr(self, "_write_version", 0) + 1
        self._write_version = version
        return (version, origin)

    @property
    def topology(self) -> Graph:
        return self.controller.topology

    @property
    def server_map(self) -> ServerMap:
        return self.controller.server_map

    def switch_ids(self) -> List[int]:
        return self.topology.nodes()

    def servers(self) -> List[EdgeServer]:
        from ..edge import all_servers

        return all_servers(self.server_map)

    def server(self, switch: int, serial: int) -> EdgeServer:
        servers = self.server_map.get(switch)
        if servers is None or serial >= len(servers) or serial < 0:
            raise GredError(f"unknown server ({switch}, {serial})")
        return servers[serial]

    def load_vector(self) -> List[int]:
        """Per-server stored-item counts (deterministic order)."""
        return load_vector(self.server_map)

    def record_load_gauges(self) -> None:
        """Refresh the telemetry gauges from the current edge-plane
        state: one ``edge.server_load`` gauge per server plus the
        ``edge.servers`` / ``edge.stored_items`` aggregates.  No-op
        when the default registry is disabled."""
        registry = default_registry()
        if not registry.enabled:
            return
        total = 0
        count = 0
        for switch in sorted(self.server_map):
            for server in self.server_map[switch]:
                registry.gauge("edge.server_load", switch=switch,
                               serial=server.serial).set(server.load)
                total += server.load
                count += 1
        registry.gauge("edge.servers").set(count)
        registry.gauge("edge.stored_items").set(total)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(
        self,
        data_id: str,
        payload: Any = None,
        entry_switch: Optional[int] = None,
        copies: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> PlacementResult:
        """Place ``data_id`` (and ``copies - 1`` extra replicas).

        Each copy ``i`` is routed independently toward ``H(d || i)``
        (paper Section VI) from ``entry_switch`` (random when omitted).
        """
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        entry = self._resolve_entry(entry_switch, rng)
        # One stamp per logical operation, shared by all copies, so a
        # scrub can compare copies of the same write.  Stamps exist
        # only under an attached fault state: the fault-free paths
        # (including the grouped batch store) stay byte-identical.
        stamp = (self._next_stamp(entry)
                 if self.fault_state is not None else None)
        records = []
        for i in range(copies):
            records.append(self._place_one(replica_id(data_id, i),
                                           payload, entry, stamp=stamp))
        return PlacementResult(data_id=data_id, records=records)

    def _place_one(self, copy_id: str, payload: Any,
                   entry: int, stamp=None) -> PlacementRecord:
        recorder = default_span_recorder()
        if recorder is None:
            return self._place_one_traced(copy_id, payload, entry,
                                          None, None, stamp=stamp)
        with recorder.trace("request.place", key=copy_id,
                            entry=entry) as handle:
            return self._place_one_traced(copy_id, payload, entry,
                                          recorder, handle, stamp=stamp)

    def _place_one_traced(self, copy_id: str, payload: Any, entry: int,
                          recorder, handle, stamp=None
                          ) -> PlacementRecord:
        tracer = None
        if handle is not None and handle.recording:
            from ..dataplane import Tracer

            tracer = Tracer()
        packet = Packet(
            kind=PacketKind.PLACEMENT,
            data_id=copy_id,
            position=self._position_fn(copy_id),
            payload=payload,
        )
        try:
            route = route_packet(self.controller.switches, entry, packet,
                                 tracer=tracer,
                                 fault_state=self.fault_state)
        except ForwardingError:
            if not self.hinted_handoff or self.fault_state is None:
                raise
            # The home is unroutable (partition / outage): park the
            # write as a hint near the entry instead of failing.
            return self._hinted_record(copy_id, payload, entry, stamp,
                                       handle)
        delivery = route.delivery
        extended = delivery.extension is not None
        if extended:
            target = self.server(delivery.extension.target_switch,
                                 delivery.extension.target_serial)
            physical_hops = route.physical_hops + hop_count(
                self.topology, delivery.switch,
                delivery.extension.target_switch,
            )
        else:
            target = self.server(delivery.switch, delivery.primary_serial)
            physical_hops = route.physical_hops
        if self.fault_state is not None and \
                not self.fault_state.server_alive(target.server_id):
            if self.hinted_handoff:
                return self._hinted_record(copy_id, payload, entry,
                                           stamp, handle,
                                           target=target.server_id)
            raise GredError(
                f"cannot place {copy_id!r}: target server "
                f"{target.server_id} has crashed and has not been "
                f"repaired yet"
            )
        target.store(copy_id, payload, stamp=stamp)
        registry = default_registry()
        if registry.enabled:
            registry.counter("core.places").inc()
            if extended:
                registry.counter("core.places_extended").inc()
            registry.histogram("core.place_hops",
                               buckets=HOP_BUCKETS).observe(
                physical_hops)
            size = _payload_size(payload)
            if size is not None:
                registry.histogram("core.payload_bytes",
                                   buckets=BYTE_BUCKETS).observe(size)
            registry.gauge("edge.server_load", switch=target.switch,
                           serial=target.serial).set(target.load)
            for sid in route.trace:
                registry.counter("dataplane.switch_transits",
                                 switch=sid).inc()
            registry.demand.record(copy_id)
            registry.counter(
                "demand.region_accesses",
                region=demand_region(*packet.position),
            ).inc()
        if tracer is not None:
            spans_from_tracer(recorder, tracer, parent=handle.span)
            handle.set(destination=delivery.switch,
                       server=target.server_id,
                       physical_hops=physical_hops,
                       extended=extended)
        return PlacementRecord(
            data_id=copy_id,
            entry_switch=entry,
            destination_switch=delivery.switch,
            server_id=target.server_id,
            physical_hops=physical_hops,
            overlay_hops=route.overlay_hops,
            trace=route.trace,
            extended=extended,
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def retrieve(
        self,
        data_id: str,
        entry_switch: Optional[int] = None,
        copies: int = 1,
        rng: Optional[np.random.Generator] = None,
        max_hops: Optional[int] = None,
        read_repair: bool = False,
    ) -> RetrievalResult:
        """Retrieve ``data_id``, walking its replicas nearest-first.

        With ``copies > 1`` the access point computes the position of
        every replica and sends the request toward the one closest (in
        the virtual space) to its own switch — the paper's nearest-copy
        selection (Section VI).  When that copy is missing (crashed
        switch, lost data) or its route fails, the request falls back
        through the remaining replicas in nearest-first order instead
        of giving up; ``result.attempts`` counts the replicas probed.

        ``max_hops`` optionally bounds each probe's forwarding path
        (the per-request hop budget of degraded mode).

        With ``read_repair=True`` a successful walk also synchronizes
        the item's replicas to the newest stamp observed among them
        (:meth:`read_repair`) — opt-in anti-entropy piggybacked on the
        read path.
        """
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        entry = self._resolve_entry(entry_switch, rng)
        recorder = default_span_recorder()
        if recorder is None:
            result = self._retrieve_ordered(data_id, entry, copies,
                                            max_hops)
        else:
            with recorder.trace("request.retrieve", key=data_id,
                                entry=entry) as handle:
                result = self._retrieve_ordered(data_id, entry, copies,
                                                max_hops)
                if handle.recording:
                    handle.set(found=result.found,
                               attempts=result.attempts,
                               copy_used=result.copy_used,
                               request_hops=result.request_hops,
                               response_hops=result.response_hops)
                    if not result.found:
                        handle.fail("miss")
        if read_repair and copies > 1:
            self.read_repair(data_id, copies)
        return result

    def _retrieve_ordered(self, data_id: str, entry: int, copies: int,
                          max_hops: Optional[int]) -> RetrievalResult:
        """The nearest-first failover walk of :meth:`retrieve`."""
        registry = default_registry()
        order = self._replica_order(data_id, copies, entry)
        attempts = 0
        last_miss: Optional[RetrievalResult] = None
        for copy_index in order:
            attempts += 1
            result = self._retrieve_copy(data_id, copy_index, entry,
                                         attempts, max_hops)
            if result is None:
                continue  # route failed loudly; try the next replica
            if result.found:
                if attempts > 1 and registry.enabled:
                    registry.counter("faults.failovers").inc()
                return result
            last_miss = result
        if registry.enabled:
            registry.counter("core.retrieve_misses").inc()
        if last_miss is not None:
            return last_miss
        # Every probe died in routing (heavy degradation).
        return RetrievalResult(
            data_id=data_id,
            found=False,
            payload=None,
            entry_switch=entry,
            destination_switch=None,
            server_id=None,
            request_hops=0,
            response_hops=0,
            trace=[],
            copy_used=order[-1],
            forked=False,
            attempts=attempts,
        )

    def _retrieve_copy(self, data_id: str, copy_index: int, entry: int,
                       attempts: int, max_hops: Optional[int]
                       ) -> Optional[RetrievalResult]:
        """Probe one replica; ``None`` means the route itself failed."""
        recorder = default_span_recorder()
        if recorder is None or not recorder.active:
            return self._retrieve_copy_traced(
                data_id, copy_index, entry, attempts, max_hops,
                None, None)
        with recorder.span("retrieve.probe", copy=copy_index,
                           attempt=attempts) as handle:
            result = self._retrieve_copy_traced(
                data_id, copy_index, entry, attempts, max_hops,
                recorder, handle)
            if handle.recording:
                if result is None:
                    handle.fail("route_error")
                else:
                    handle.set(found=result.found,
                               destination=result.destination_switch)
            return result

    def _retrieve_copy_traced(self, data_id: str, copy_index: int,
                              entry: int, attempts: int,
                              max_hops: Optional[int], recorder, handle
                              ) -> Optional[RetrievalResult]:
        tracer = None
        if handle is not None and handle.recording:
            from ..dataplane import Tracer

            tracer = Tracer()
        copy_id = replica_id(data_id, copy_index)
        packet = Packet(
            kind=PacketKind.RETRIEVAL,
            data_id=copy_id,
            position=self._position_fn(copy_id),
        )
        registry = default_registry()
        try:
            route = route_packet(self.controller.switches, entry, packet,
                                 max_hops=max_hops, tracer=tracer,
                                 fault_state=self.fault_state)
        except ForwardingError:
            if registry.enabled:
                registry.counter("faults.route_failures").inc()
            return None
        if tracer is not None:
            spans_from_tracer(recorder, tracer, parent=handle.span)
        if registry.enabled:
            for sid in route.trace:
                registry.counter("dataplane.switch_transits",
                                 switch=sid).inc()
            registry.demand.record(copy_id)
            registry.counter(
                "demand.region_accesses",
                region=demand_region(*packet.position),
            ).inc()
        delivery = route.delivery
        candidates = [
            (self.server(delivery.switch, delivery.primary_serial), 0)
        ]
        forked = False
        if delivery.extension is not None and self._extension_usable(
                delivery.switch, delivery.extension):
            # Fork: the request goes to both possible locations (paper
            # Section V-C); the remote one costs the extra hops to the
            # neighbor switch.
            forked = True
            remote = self.server(delivery.extension.target_switch,
                                 delivery.extension.target_serial)
            extra = hop_count(self.topology, delivery.switch,
                              delivery.extension.target_switch)
            candidates.append((remote, extra))
        fault = self.fault_state
        for server, extra_hops in candidates:
            if fault is not None and \
                    not fault.server_alive(server.server_id):
                continue
            if server.has(copy_id):
                response_hops = hop_count(self.topology, server.switch,
                                          entry)
                if registry.enabled:
                    registry.counter("core.retrieves").inc()
                    registry.histogram(
                        "core.retrieve_hops", buckets=HOP_BUCKETS,
                    ).observe(route.physical_hops + extra_hops +
                              response_hops)
                return RetrievalResult(
                    data_id=data_id,
                    found=True,
                    payload=server.retrieve(copy_id),
                    entry_switch=entry,
                    destination_switch=delivery.switch,
                    server_id=server.server_id,
                    request_hops=route.physical_hops + extra_hops,
                    response_hops=response_hops,
                    trace=route.trace,
                    copy_used=copy_index,
                    forked=forked,
                    attempts=attempts,
                )
        return RetrievalResult(
            data_id=data_id,
            found=False,
            payload=None,
            entry_switch=entry,
            destination_switch=delivery.switch,
            server_id=None,
            request_hops=route.physical_hops,
            response_hops=0,
            trace=route.trace,
            copy_used=copy_index,
            forked=forked,
            attempts=attempts,
        )

    def _extension_usable(self, switch: int, extension) -> bool:
        """Whether an extension's takeover server can be forked to
        (its switch must still exist and not have crashed)."""
        if not self.topology.has_node(extension.target_switch):
            return False
        if self.fault_state is not None and \
                not self.fault_state.switch_alive(extension.target_switch):
            return False
        return True

    def _replica_order(self, data_id: str, copies: int,
                       entry: int) -> List[int]:
        """Copy indices sorted by virtual distance from the entry
        switch (nearest first; ties by index)."""
        if copies == 1:
            return [0]
        entry_pos = self.controller.switch_position(entry)
        keyed = []
        for i in range(copies):
            pos = self._position_fn(replica_id(data_id, i))
            keyed.append((euclidean(pos, entry_pos), i))
        keyed.sort()
        return [i for _, i in keyed]

    def _nearest_copy(self, data_id: str, copies: int, entry: int) -> int:
        return self._replica_order(data_id, copies, entry)[0]

    def replica_order(self, data_id: str, copies: int,
                      entry: int) -> List[int]:
        """Public form of the nearest-first replica order used by
        retrieval failover (and by the resilience pipeline's
        breaker-aware candidate selection)."""
        return self._replica_order(data_id, copies, entry)

    def probe_replica(self, data_id: str, copy_index: int, entry: int,
                      max_hops: Optional[int] = None,
                      attempts: int = 1) -> Optional[RetrievalResult]:
        """Probe a single replica without failover: route toward copy
        ``copy_index`` from ``entry`` and return the outcome, or
        ``None`` when the route itself failed.  This is the unit step
        of :meth:`retrieve`'s failover walk, exposed so external
        request pipelines (hedging, breaker-aware candidate ordering)
        can drive the walk themselves."""
        return self._retrieve_copy(data_id, copy_index, entry,
                                   attempts, max_hops)

    # ------------------------------------------------------------------
    # resilience interop
    # ------------------------------------------------------------------
    def resilient(self, config=None):
        """Wrap this network in a
        :class:`~repro.resilience.ResilientNetwork` (admission
        control, deadline-bounded retries, circuit breakers, hedged
        reads).  The wrapper registers itself so the batch fast path
        stands down while any breaker is tripped."""
        from ..resilience import ResilientNetwork

        return ResilientNetwork(self, config)

    def _resilience_blocks_fastpath(self) -> bool:
        # getattr: snapshots restore via __new__ and predate the field.
        pipeline = getattr(self, "_resilience", None)
        return pipeline is not None and pipeline.blocks_fastpath()

    # ------------------------------------------------------------------
    # batch fast path
    # ------------------------------------------------------------------
    def _fast_state(self) -> _FastPathState:
        """The fast-path state, kept in sync with the control plane.

        A global-epoch advance (``recompute``: every position moved)
        rebuilds the compiled router and both caches from scratch.
        A version advance from scoped events (joins, leaves, link
        changes, failure absorption) instead asks the controller which
        switches were touched, patches only their compiled rows, and
        evicts only the cached routes whose traces traverse a touched
        switch — a route's every per-hop decision depends solely on
        the visited switches' installed state, so untouched traces
        stay byte-identical.  Hop distances are cheap to recompute and
        topology edits shift them non-locally, so that cache clears
        wholesale on any change."""
        controller = self.controller
        state = getattr(self, "_fastpath", None)
        if (state is not None and state.epoch == controller.epoch
                and state.version == controller.version):
            return state
        touched = None
        if state is not None and state.epoch == controller.epoch:
            touched = controller.changes_since(state.version)
        if touched is None:
            state = _FastPathState(
                controller.epoch, controller.version,
                CompiledRouter(controller.switches))
            self._fastpath = state
            return state
        if touched:
            switches = controller.switches
            present = frozenset(s for s in touched if s in switches)
            removed = frozenset(touched) - present
            state.router.patch(switches, present, removed)
            hop_bound = state.router._default_max_hops
            stale = [
                key for key, outcome in state.routes.items()
                if touched.intersection(outcome[0])
                or len(outcome[0]) - 1 > hop_bound
            ]
            for key in stale:
                del state.routes[key]
                state.stats.pop(key, None)
            state.hops.clear()
        state.version = controller.version
        return state

    def _fastpath_usable(self) -> bool:
        """Whether batch requests may skip the reference pipeline.

        The compiled router assumes fault-free forwarding, and the
        vectorized hashing assumes the paper's SHA-256 position
        mapping — with faults injected, a custom ``position_fn``, or a
        tripped circuit breaker on an attached resilience pipeline,
        batches fall back to the scalar path item by item (identical
        results, just not vectorized).  Telemetry does *not* force the
        fallback: the batch paths emit the same aggregates with numpy
        reductions (see ``_emit_place_telemetry`` /
        ``_emit_retrieve_telemetry``), byte-equal to a scalar run.

        Evaluates the same ``FASTPATH_GATES`` list as
        :func:`~repro.dataplane.fastpath.batch_fastpath_blockers`, so
        the boolean gate and the operator-facing reason list cannot
        drift apart.
        """
        from ..dataplane.fastpath import fastpath_usable

        return fastpath_usable(self)

    def _count_standdown(self) -> None:
        """Structured why-not-fast-path telemetry: one counter per
        stand-down reason whenever a batch falls back to scalar."""
        registry = default_registry()
        if not registry.enabled:
            return
        from ..dataplane.fastpath import batch_fastpath_blockers

        for reason in batch_fastpath_blockers(self):
            registry.counter(
                "dataplane.fastpath_standdowns",
                help="Batch requests degraded to the scalar path",
                reason=reason.replace(" ", "_"),
            ).inc()

    def _shard_pool(self, workers: int):
        """The sticky worker pool for ``workers`` shards (created on
        first use, reused across batches and epochs)."""
        pools = getattr(self, "_shard_pools", None)
        if pools is None:
            pools = self._shard_pools = {}
        pool = pools.get(workers)
        if pool is None:
            from ..dataplane.shard import ShardPool

            pool = pools[workers] = ShardPool(workers)
        return pool

    def close_worker_pools(self) -> None:
        """Stop any routing worker pools started by ``workers=`` batch
        calls and release their shared-memory plane snapshots."""
        pools = getattr(self, "_shard_pools", None)
        if not pools:
            return
        for pool in pools.values():
            pool.close()
        pools.clear()

    def _fast_routes(self, state: _FastPathState,
                     flat_entries: Sequence[int],
                     flat_ids: Sequence[str],
                     positions: np.ndarray, serial_u64s: np.ndarray,
                     flats: Sequence[int],
                     max_hops: Optional[int] = None,
                     stats_out: Optional[List[Any]] = None,
                     workers: Optional[int] = None) -> List[Any]:
        """Routes for the flat request indices ``flats``, combining the
        per-epoch LRU cache with one wave-routed batch for the misses.

        Returns one ``(trace, overlay, dest, serial)`` per flat index,
        aligned with ``flats``; a request the reference engine would
        fail maps to its :class:`ForwardingError` instead (callers
        raise or skip it).  Cached traces are shared — callers must
        copy, never mutate.  A custom hop budget changes failure
        behavior, so it bypasses the cache rather than keying on it.

        When ``stats_out`` is given it receives one per-route
        ``(greedy, vl_starts, vl_relays)`` decision-mix tuple aligned
        with the returned routes (cache hits replay the mix recorded
        when the route was first walked), so callers can emit the
        engine's forwarding counters without re-walking.
        """
        cache = state.routes
        stat_cache = state.stats
        if max_hops is not None:
            routes: List[Any] = [None] * len(flats)
            stats: List[Any] = [None] * len(flats)
            misses = list(flats)
            slots = range(len(flats))
            miss_keys: Optional[List[Any]] = None
        else:
            routes = []
            stats = []
            misses = []
            slots = []
            miss_keys = []
            append = routes.append
            for f in flats:
                key = (flat_entries[f], flat_ids[f])
                cached = cache.get(key)
                if cached is None:
                    slots.append(len(routes))
                    misses.append(f)
                    miss_keys.append(key)
                    append(None)
                    stats.append(None)
                else:
                    cache.move_to_end(key)
                    append(cached)
                    stats.append(stat_cache.get(key, (0, 0, 0)))
        if misses:
            idx = np.asarray(misses, dtype=np.intp)
            hop_bound = (max_hops if max_hops is not None
                         else state.router._default_max_hops)
            worker_waves: Optional[List[int]] = None
            if workers is not None and workers > 1:
                pool = self._shard_pool(workers)
                pool.sync(state.router, (state.epoch, state.version))
                packed = pool.route_batch_packed(
                    np.asarray([flat_entries[f] for f in misses],
                               dtype=np.int64),
                    positions[idx, 0], positions[idx, 1],
                    serial_u64s[idx], hop_bound)
                outcomes = packed.materialize(
                    [flat_ids[f] for f in misses], hop_bound)
                batch_stats = packed.stats_list()
                state.router.last_batch_waves = packed.waves
                state.router.last_batch_stats = batch_stats
                waves = packed.waves
                worker_waves = packed.worker_waves
            else:
                outcomes = state.router.route_batch(
                    [flat_entries[f] for f in misses],
                    [flat_ids[f] for f in misses],
                    positions[idx, 0], positions[idx, 1],
                    serial_u64s[idx], max_hops=max_hops,
                )
                batch_stats = state.router.last_batch_stats
                waves = state.router.last_batch_waves
            registry = default_registry()
            if registry.enabled:
                # Batch-only extras (the scalar loop has no waves):
                # proof the vectorized router ran, and its amortization
                # denominator.  Prefixed ``dataplane.batch.`` so parity
                # checks can separate them from the shared aggregates.
                registry.counter("dataplane.batch.requests").inc(
                    len(misses))
                registry.counter("dataplane.batch.waves").inc(waves)
                if worker_waves is not None:
                    # Per-shard wave counts aggregate into the same
                    # total above; the per-worker counters expose the
                    # shard balance.
                    for w, wv in enumerate(worker_waves):
                        registry.counter(
                            "dataplane.batch.worker_waves",
                            worker=w).inc(wv)
            if miss_keys is None:
                for slot, out, st in zip(slots, outcomes, batch_stats):
                    routes[slot] = out
                    stats[slot] = st
            else:
                for slot, key, out, st in zip(
                        slots, miss_keys, outcomes, batch_stats):
                    routes[slot] = out
                    stats[slot] = st
                    if type(out) is tuple:
                        cache[key] = out
                        stat_cache[key] = st
                while len(cache) > _ROUTE_CACHE_CAP:
                    evicted, _ = cache.popitem(last=False)
                    stat_cache.pop(evicted, None)
        if stats_out is not None:
            stats_out.extend(stats)
        return routes

    def _fast_hop(self, state: _FastPathState, source: int,
                  target: int) -> int:
        """Hop distance with a per-epoch BFS cache (one BFS per
        distinct source switch instead of one per request)."""
        dists = state.hops.get(source)
        if dists is None:
            dists = bfs_distances(self.topology, source)
            state.hops[source] = dists
        return dists[target]

    # ------------------------------------------------------------------
    # batch telemetry (numpy reductions, byte-equal to the scalar path)
    # ------------------------------------------------------------------
    @staticmethod
    def _region_counts(positions: np.ndarray, flats) -> np.ndarray:
        """Per-region access counts for the probed flat indices —
        the vectorized form of ``demand_region`` per probe."""
        from ..obs import DEMAND_GRID

        g = DEMAND_GRID
        idx = np.asarray(flats, dtype=np.intp)
        cols = np.clip((positions[idx, 0] * g).astype(np.int64),
                       0, g - 1)
        rows = np.clip((positions[idx, 1] * g).astype(np.int64),
                       0, g - 1)
        return np.bincount(rows * g + cols, minlength=g * g)

    def _emit_demand(self, registry, flat_ids, flats,
                     positions: np.ndarray) -> None:
        """Per-item and per-region access counters for the probed flat
        indices (the demand-adaptive embedding signal)."""
        if not flats:
            return
        registry.demand.record_many(flat_ids[f] for f in flats)
        counts = self._region_counts(positions, flats)
        for region in np.flatnonzero(counts).tolist():
            registry.counter("demand.region_accesses",
                             region=region).inc(int(counts[region]))

    @staticmethod
    def _emit_transits(registry, transit_switches) -> None:
        """Per-switch transit counters from the concatenated traces of
        a batch, reduced with one ``bincount``."""
        if not transit_switches:
            return
        counts = np.bincount(np.asarray(transit_switches,
                                        dtype=np.int64))
        for sid in np.flatnonzero(counts).tolist():
            registry.counter("dataplane.switch_transits",
                             switch=sid).inc(int(counts[sid]))

    @staticmethod
    def _emit_route_telemetry(registry, kind: str, stats,
                              route_hops, overlay_hops,
                              rewrites: int) -> None:
        """Forwarding-engine aggregates for routes the compiled router
        walked instead of :func:`route_packet`.

        ``stats`` holds one ``(greedy, vl_starts, vl_relays)`` tuple
        per probe the engine would have routed (``None`` marks probes
        it would have rejected before fetching any counter, e.g. an
        unknown entry switch); ``route_hops``/``overlay_hops`` list the
        per-delivery hop observations in the scalar loop's observation
        order so the histogram reservoirs match byte for byte.
        """
        routed = [s for s in stats if s is not None]
        if routed:
            # The engine fetches these once per routed packet, so they
            # exist (possibly at zero) as soon as one probe enters it.
            registry.counter("dataplane.greedy_forwards").inc(
                sum(s[0] for s in routed))
            registry.counter("dataplane.vl_starts").inc(
                sum(s[1] for s in routed))
            registry.counter("dataplane.vl_relays").inc(
                sum(s[2] for s in routed))
        if route_hops:
            registry.counter("dataplane.requests_routed",
                             kind=kind).inc(len(route_hops))
            registry.counter("dataplane.deliveries").inc(
                len(route_hops))
            if rewrites:
                registry.counter(
                    "dataplane.extension_rewrites").inc(rewrites)
            registry.histogram(
                "dataplane.hops_per_request", buckets=HOP_BUCKETS,
            ).observe_many(np.asarray(route_hops, dtype=np.float64))
            registry.histogram(
                "dataplane.overlay_hops_per_request",
                buckets=HOP_BUCKETS,
            ).observe_many(np.asarray(overlay_hops, dtype=np.float64))

    def _emit_place_telemetry(self, registry, hops, sizes, extended_n,
                              transit_switches, servers, flats,
                              flat_ids, positions: np.ndarray) -> None:
        """Aggregate telemetry for the records a ``place_many`` batch
        completed, matching the scalar loop instrument for instrument
        (instruments the scalar loop would not create are not created
        here either)."""
        if hops:
            registry.counter("core.places").inc(len(hops))
            registry.histogram(
                "core.place_hops", buckets=HOP_BUCKETS,
            ).observe_many(np.asarray(hops, dtype=np.float64))
        if extended_n:
            registry.counter("core.places_extended").inc(extended_n)
        if sizes:
            registry.histogram(
                "core.payload_bytes", buckets=BYTE_BUCKETS,
            ).observe_many(np.asarray(sizes, dtype=np.float64))
        for key in sorted(servers):
            server = servers[key]
            registry.gauge("edge.server_load", switch=server.switch,
                           serial=server.serial).set(server.load)
        self._emit_transits(registry, transit_switches)
        self._emit_demand(registry, flat_ids, flats, positions)

    @staticmethod
    def _record_exemplar(recorder, name: str, key: str,
                         trace_switches, status: Optional[str] = None,
                         **attrs) -> None:
        """Promote one batch row to a full trace: a root span plus one
        ``hop.transit`` child per visited switch.  Simulated batch
        hops have no individual wall time, so hops are laid out at
        1 µs apiece — the order/topology is the signal."""
        with recorder.trace(name, key=key, **attrs) as handle:
            if handle.recording:
                if status is not None:
                    handle.fail(status)
                base = handle.span.start
                for k, sid in enumerate(trace_switches):
                    recorder.add_span(
                        "hop.transit", start=base + k * 1e-6,
                        end=base + (k + 1) * 1e-6, parent=handle.span,
                        switch=sid)

    def prehash(self, data_ids: Sequence[str],
                copies: int = 1) -> np.ndarray:
        """Pre-hash a batch once for reuse across calls.

        Returns the ``(len(data_ids) * copies, 32) uint8`` SHA-256
        digest array of every replica id, in the flat order
        :meth:`place_many` and :meth:`retrieve_many` consume; pass it
        back via their ``digests`` parameter to skip re-hashing (the
        digest feeds both the position and the server serial, so this
        is the entire per-identifier hashing cost).
        """
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        return sha256_digests(replica_ids_flat(list(data_ids), copies))

    @staticmethod
    def _check_digests(digests: Optional[np.ndarray],
                       expected: int) -> Optional[np.ndarray]:
        """Validate a caller-supplied digest array (shape ``(k, 32)``
        uint8, one row per flat replica id)."""
        if digests is None:
            return None
        digests = np.asarray(digests)
        if digests.shape != (expected, 32) or \
                digests.dtype != np.uint8:
            raise GredError(
                f"digests must be a ({expected}, 32) uint8 array, got "
                f"{digests.dtype} {digests.shape}"
            )
        return digests

    def _resolve_entries(self, count: int,
                         entry_switches: Optional[Sequence[int]],
                         rng: Optional[np.random.Generator]
                         ) -> List[int]:
        """Per-item entry switches, drawing from ``rng`` in the same
        order as the equivalent scalar loop."""
        if entry_switches is not None and len(entry_switches) != count:
            raise GredError(
                f"entry_switches has {len(entry_switches)} entries for "
                f"{count} data ids"
            )
        if (entry_switches is None and self.fault_state is None
                and (rng is None
                     or isinstance(rng, np.random.Generator))):
            # One vectorized draw consumes the PCG64 stream exactly
            # like ``count`` sequential ``integers`` calls, so the
            # scalar loop and the batch pick identical entries.
            ids = self.switch_ids()
            stream = utils.rng(rng)
            draws = stream.integers(0, len(ids), size=count)
            return [ids[v] for v in draws.tolist()]
        return [
            self._resolve_entry(
                entry_switches[i] if entry_switches is not None
                else None, rng)
            for i in range(count)
        ]

    def place_many(
        self,
        data_ids: Sequence[str],
        payloads: Optional[Sequence[Any]] = None,
        entry_switches: Optional[Sequence[int]] = None,
        copies: int = 1,
        rng: Optional[np.random.Generator] = None,
        workers: Optional[int] = None,
        digests: Optional[np.ndarray] = None,
    ) -> List[PlacementResult]:
        """Place a batch of items; equivalent to calling :meth:`place`
        per item in order, but vectorized.

        Identifiers are hashed in one pass (one SHA-256 digest per
        replica, reused for position and server selection) and routed
        through the compiled router with an epoch-scoped route cache.
        Per-request results are byte-identical to the scalar loop
        under the same ``rng``; when telemetry is enabled, a fault
        state is attached, or a custom ``position_fn`` is in use, the
        batch transparently degrades to the scalar path so metrics
        and fault handling stay exact.

        Parameters
        ----------
        data_ids:
            Identifiers to place.
        payloads:
            Optional per-item payloads (same length as ``data_ids``).
        entry_switches:
            Optional per-item access switches; random when omitted.
        copies, rng:
            As in :meth:`place`.
        workers:
            Route uncached requests across this many processes
            sharing the compiled plane via ``multiprocessing.shared_
            memory`` (results stay byte-identical to the
            single-process path).  ``None``/``1`` routes in-process;
            the scalar fallback ignores it.
        digests:
            Optional pre-hashed replica digests from :meth:`prehash`
            (``(len(data_ids) * copies, 32) uint8``).  Hashing is the
            one per-request cost that cannot be cached, so a workload
            that places and then retrieves the same identifiers hashes
            once and passes the array to both calls.  Ignored by the
            scalar fallback (which re-hashes exactly).
        """
        data_ids = list(data_ids)
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        if payloads is not None and len(payloads) != len(data_ids):
            raise GredError(
                f"payloads has {len(payloads)} entries for "
                f"{len(data_ids)} data ids"
            )
        if not self._fastpath_usable():
            self._count_standdown()
            return [
                self.place(
                    data_id,
                    payload=(payloads[i] if payloads is not None
                             else None),
                    entry_switch=(entry_switches[i]
                                  if entry_switches is not None
                                  else None),
                    copies=copies,
                    rng=rng,
                )
                for i, data_id in enumerate(data_ids)
            ]
        entries = self._resolve_entries(len(data_ids), entry_switches,
                                        rng)
        flat_ids = replica_ids_flat(data_ids, copies)
        flat_entries = (entries if copies == 1 else
                        [e for e in entries for _ in range(copies)])
        digests = self._check_digests(digests, len(flat_ids))
        if digests is None:
            digests = sha256_digests(flat_ids)
        positions = positions_from_digests(digests)
        serial_u64s = serials_from_digests(digests)
        state = self._fast_state()
        route_stats: List[Any] = []
        routes = self._fast_routes(state, flat_entries, flat_ids,
                                   positions, serial_u64s,
                                   range(len(flat_ids)),
                                   stats_out=route_stats,
                                   workers=workers)
        switches = self.controller.switches
        server_map = self.server_map
        registry = default_registry()
        telemetry = registry.enabled
        recorder = default_span_recorder()
        # Grouped storage: when every route delivered, no extension is
        # installed anywhere and every target server is unbounded, the
        # per-item store/extension/target work collapses to one bulk
        # dict update per server (identical storage state — the stable
        # grouping preserves each server's insertion order).
        stored = self._grouped_store(routes, flat_ids, payloads,
                                     copies, switches, server_map)
        t_hops: List[int] = []
        t_sizes: List[int] = []
        t_extended = 0
        t_transits: List[int] = []
        t_flats: List[int] = []
        t_servers: Dict[Any, Any] = {}
        t_route_hops: List[int] = []
        t_overlay: List[int] = []
        results: List[PlacementResult] = []
        flat = 0
        for i, data_id in enumerate(data_ids):
            payload = payloads[i] if payloads is not None else None
            entry = entries[i]
            records: List[PlacementRecord] = []
            for _ in range(copies):
                copy_id = flat_ids[flat]
                outcome = routes[flat]
                flat += 1
                if isinstance(outcome, ForwardingError):
                    # The scalar loop raises mid-batch: items before
                    # this one stay stored (and, like the scalar loop,
                    # already counted), the rest are not placed.  The
                    # failing probe's partial decision mix counts too,
                    # exactly as the engine counts before it raises.
                    if telemetry:
                        self._emit_route_telemetry(
                            registry, PacketKind.PLACEMENT.value,
                            route_stats[:flat], t_route_hops,
                            t_overlay, t_extended)
                        self._emit_place_telemetry(
                            registry, t_hops, t_sizes, t_extended,
                            t_transits, t_servers, t_flats, flat_ids,
                            positions)
                    raise outcome
                trace, overlay, dest, serial = outcome
                if stored is not None:
                    # Already bulk-stored; no extension anywhere, so
                    # the target is the ``H(d) mod s`` server.
                    extended = False
                    physical = len(trace) - 1
                    server_id = (dest, serial)
                else:
                    extension = switches[dest].table.extension_for(
                        serial)
                    extended = extension is not None
                    if extended:
                        target = self.server(extension.target_switch,
                                             extension.target_serial)
                        physical = len(trace) - 1 + self._fast_hop(
                            state, dest, extension.target_switch)
                    else:
                        # Delivery guarantees the switch has servers
                        # and the serial is in range (H(d) mod s).
                        target = server_map[dest][serial]
                        physical = len(trace) - 1
                    target.store(copy_id, payload)
                    server_id = target.server_id
                if telemetry:
                    t_hops.append(physical)
                    if extended:
                        t_extended += 1
                    size = _payload_size(payload)
                    if size is not None:
                        t_sizes.append(size)
                    t_transits.extend(trace)
                    t_flats.append(flat - 1)
                    if stored is None:
                        t_servers[server_id] = target
                    t_route_hops.append(len(trace) - 1)
                    t_overlay.append(overlay)
                if recorder is not None:
                    self._record_exemplar(
                        recorder, "request.place", copy_id, trace,
                        entry=entry, destination=dest,
                        server=server_id,
                        physical_hops=physical,
                        extended=extended)
                records.append(PlacementRecord(
                    data_id=copy_id,
                    entry_switch=entry,
                    destination_switch=dest,
                    server_id=server_id,
                    physical_hops=physical,
                    overlay_hops=overlay,
                    trace=list(trace),
                    extended=extended,
                ))
            results.append(PlacementResult(data_id=data_id,
                                           records=records))
        if telemetry:
            self._emit_route_telemetry(
                registry, PacketKind.PLACEMENT.value, route_stats,
                t_route_hops, t_overlay, t_extended)
            self._emit_place_telemetry(
                registry, t_hops, t_sizes, t_extended, t_transits,
                stored if stored is not None else t_servers,
                t_flats, flat_ids, positions)
        return results

    def _grouped_store(self, routes: List[Any],
                       flat_ids: Sequence[str],
                       payloads: Optional[Sequence[Any]],
                       copies: int, switches, server_map
                       ) -> Optional[Dict[Any, EdgeServer]]:
        """Bulk-store a fully-delivered batch server by server.

        Returns the ``(switch, serial) -> server`` map of stored-to
        servers, or ``None`` when the batch must take the per-item
        path: any routing error (the scalar loop raises mid-batch,
        storing only the prefix), any installed range extension
        (per-delivery rewrite decisions), or any bounded target server
        (per-id ``StorageFull`` ordering).  The stable grouping sort
        preserves each server's item insertion order, so the resulting
        storage state is byte-identical to sequential ``store`` calls.
        """
        k = len(routes)
        if k == 0:
            return {}
        for switch in switches.values():
            if switch.table.has_extensions():
                return None
        for outcome in routes:
            if type(outcome) is not tuple:
                return None
        dest = np.fromiter((o[2] for o in routes), dtype=np.int64,
                           count=k)
        serial = np.fromiter((o[3] for o in routes), dtype=np.int64,
                             count=k)
        combined = dest * (int(serial.max()) + 1) + serial
        order = np.argsort(combined, kind="stable")
        ordered = combined[order]
        groups = np.split(order,
                          (np.flatnonzero(np.diff(ordered)) + 1))
        plan = []
        servers: Dict[Any, EdgeServer] = {}
        for group in groups:
            first = int(group[0])
            d = int(dest[first])
            s = int(serial[first])
            server = server_map[d][s]
            if server.capacity is not None:
                return None
            servers[(d, s)] = server
            plan.append((server, group))
        for server, group in plan:
            flats = group.tolist()
            ids = [flat_ids[f] for f in flats]
            group_payloads = (None if payloads is None else
                              [payloads[f // copies] for f in flats])
            server.store_many(ids, group_payloads)
        return servers

    def retrieve_many(
        self,
        data_ids: Sequence[str],
        entry_switches: Optional[Sequence[int]] = None,
        copies: int = 1,
        rng: Optional[np.random.Generator] = None,
        max_hops: Optional[int] = None,
        workers: Optional[int] = None,
        digests: Optional[np.ndarray] = None,
    ) -> List[RetrievalResult]:
        """Retrieve a batch of items; equivalent to calling
        :meth:`retrieve` per item in order, but vectorized.

        Shares the fast-path machinery (and its fallback conditions)
        with :meth:`place_many`, including worker-sharded routing via
        ``workers`` and pre-hashed ``digests`` from :meth:`prehash`;
        response hop counts come from a per-epoch BFS distance cache
        instead of a fresh traversal per request.
        """
        data_ids = list(data_ids)
        if copies < 1:
            raise GredError(f"copies must be >= 1, got {copies}")
        if not self._fastpath_usable():
            self._count_standdown()
            return [
                self.retrieve(
                    data_id,
                    entry_switch=(entry_switches[i]
                                  if entry_switches is not None
                                  else None),
                    copies=copies,
                    rng=rng,
                    max_hops=max_hops,
                )
                for i, data_id in enumerate(data_ids)
            ]
        entries = self._resolve_entries(len(data_ids), entry_switches,
                                        rng)
        flat_ids = replica_ids_flat(data_ids, copies)
        flat_entries = (entries if copies == 1 else
                        [e for e in entries for _ in range(copies)])
        digests = self._check_digests(digests, len(flat_ids))
        if digests is None:
            digests = sha256_digests(flat_ids)
        positions = positions_from_digests(digests)
        serial_u64s = serials_from_digests(digests)
        state = self._fast_state()
        switches = self.controller.switches
        count = len(data_ids)
        if copies == 1:
            orders: Optional[List[List[int]]] = None
        else:
            orders = []
            for i in range(count):
                base = i * copies
                ex, ey = self.controller.switch_position(entries[i])
                keyed = [
                    (math.hypot(float(positions[base + c, 0]) - ex,
                                float(positions[base + c, 1]) - ey), c)
                    for c in range(copies)
                ]
                keyed.sort()
                orders.append([c for _, c in keyed])
        registry = default_registry()
        telemetry = registry.enabled
        t_transits: List[int] = []
        t_probe_flats: List[int] = []
        t_route_failures = 0
        t_stats: List[Any] = []
        t_rewrites = 0
        # Per-item delivery hop observations: the scalar loop probes
        # item-major (all of one item's replicas before the next), the
        # batch round-major — collecting per item and flattening at the
        # end replays the scalar observation order.
        t_phys_by_item: List[List[int]] = [[] for _ in range(count)]
        t_over_by_item: List[List[int]] = [[] for _ in range(count)]
        results: List[Optional[RetrievalResult]] = [None] * count
        last_miss: List[Optional[RetrievalResult]] = [None] * count
        attempts = [0] * count
        pending = list(range(count))
        # Probe round ``r`` routes every unresolved item's r-th nearest
        # replica in one wave-routed batch — the same nearest-first
        # probe sequence as the scalar loop, just advanced in lockstep.
        for rnd in range(copies):
            if not pending:
                break
            probes = [
                i * copies + (rnd if orders is None else orders[i][rnd])
                for i in pending
            ]
            routes = self._fast_routes(state, flat_entries, flat_ids,
                                       positions, serial_u64s, probes,
                                       max_hops=max_hops,
                                       stats_out=t_stats,
                                       workers=workers)
            server_map = self.server_map
            still: List[int] = []
            for i, flat, outcome in zip(pending, probes, routes):
                attempts[i] += 1
                if isinstance(outcome, ForwardingError):
                    t_route_failures += 1
                    still.append(i)
                    continue
                c = rnd if orders is None else orders[i][rnd]
                copy_id = flat_ids[flat]
                entry = entries[i]
                trace, overlay, dest, serial = outcome
                if telemetry:
                    t_transits.extend(trace)
                    t_probe_flats.append(flat)
                    t_phys_by_item[i].append(len(trace) - 1)
                    t_over_by_item[i].append(overlay)
                request_hops = len(trace) - 1
                # Delivery guarantees the switch has servers and the
                # serial is in range (H(d) mod s).
                candidates = [(server_map[dest][serial], 0)]
                forked = False
                extension = switches[dest].table.extension_for(serial)
                if telemetry and extension is not None:
                    # The engine counts the rewrite at delivery,
                    # whether or not the extension is then usable.
                    t_rewrites += 1
                if extension is not None and self._extension_usable(
                        dest, extension):
                    forked = True
                    remote = self.server(extension.target_switch,
                                         extension.target_serial)
                    candidates.append((remote, self._fast_hop(
                        state, dest, extension.target_switch)))
                for server, extra_hops in candidates:
                    if server.has(copy_id):
                        results[i] = RetrievalResult(
                            data_id=data_ids[i],
                            found=True,
                            payload=server.retrieve(copy_id),
                            entry_switch=entry,
                            destination_switch=dest,
                            server_id=server.server_id,
                            request_hops=request_hops + extra_hops,
                            response_hops=self._fast_hop(
                                state, server.switch, entry),
                            trace=list(trace),
                            copy_used=c,
                            forked=forked,
                            attempts=attempts[i],
                        )
                        break
                if results[i] is None:
                    last_miss[i] = RetrievalResult(
                        data_id=data_ids[i],
                        found=False,
                        payload=None,
                        entry_switch=entry,
                        destination_switch=dest,
                        server_id=None,
                        request_hops=request_hops,
                        response_hops=0,
                        trace=list(trace),
                        copy_used=c,
                        forked=forked,
                        attempts=attempts[i],
                    )
                    still.append(i)
            pending = still
        final: List[RetrievalResult] = []
        for i in range(count):
            if results[i] is not None:
                final.append(results[i])
            elif last_miss[i] is not None:
                # Like the scalar loop, the reported attempt count is
                # the one captured when the last *routable* probe
                # missed, even if later probes failed to route.
                final.append(last_miss[i])
            else:
                final.append(RetrievalResult(
                    data_id=data_ids[i],
                    found=False,
                    payload=None,
                    entry_switch=entries[i],
                    destination_switch=None,
                    server_id=None,
                    request_hops=0,
                    response_hops=0,
                    trace=[],
                    copy_used=(0 if orders is None else orders[i][-1]),
                    forked=False,
                    attempts=attempts[i],
                ))
        if telemetry:
            found_hops = [r.request_hops + r.response_hops
                          for r in final if r.found]
            failovers = sum(1 for r in final
                            if r.found and r.attempts > 1)
            misses = count - len(found_hops)
            if found_hops:
                registry.counter("core.retrieves").inc(len(found_hops))
                # Replayed in item order — the order the scalar loop
                # observes in — so the histogram reservoir matches.
                registry.histogram(
                    "core.retrieve_hops", buckets=HOP_BUCKETS,
                ).observe_many(np.asarray(found_hops,
                                          dtype=np.float64))
            if failovers:
                registry.counter("faults.failovers").inc(failovers)
            if misses:
                registry.counter("core.retrieve_misses").inc(misses)
            if t_route_failures:
                registry.counter("faults.route_failures").inc(
                    t_route_failures)
            self._emit_route_telemetry(
                registry, PacketKind.RETRIEVAL.value, t_stats,
                [h for per in t_phys_by_item for h in per],
                [o for per in t_over_by_item for o in per],
                t_rewrites)
            self._emit_transits(registry, t_transits)
            self._emit_demand(registry, flat_ids, t_probe_flats,
                              positions)
        recorder = default_span_recorder()
        if recorder is not None:
            for r in final:
                self._record_exemplar(
                    recorder, "request.retrieve", r.data_id, r.trace,
                    status=None if r.found else "miss",
                    entry=r.entry_switch, found=r.found,
                    attempts=r.attempts, copy_used=r.copy_used,
                    request_hops=r.request_hops,
                    response_hops=r.response_hops)
        return final

    def destinations_for(self, data_ids: Sequence[str]) -> List[int]:
        """Destination switch of every identifier, resolved without
        simulating any routing (batch :meth:`destination_switch`).

        One vectorized hashing pass plus one grid-index query per id.
        """
        data_ids = list(data_ids)
        if getattr(self, "_position_fn", None) is not data_position:
            return [self.destination_switch(d) for d in data_ids]
        positions = positions_from_digests(sha256_digests(data_ids))
        index = self.controller.routing_index()
        return [
            index.closest((positions[i, 0], positions[i, 1]))
            for i in range(len(data_ids))
        ]

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, data_id: str, copies: int = 1,
               entry_switch: Optional[int] = None) -> int:
        """Delete all copies of a data item; returns how many were
        removed.

        Fault-free, a delete simply pops the copies.  With a fault
        state attached, each copy is *entombed* instead: a stamped
        tombstone replaces it so a later repair or scrub cannot
        resurrect the item from a stale survivor, and a copy whose
        home is unroutable is skipped (or, with
        :attr:`hinted_handoff`, parked as a delete hint) rather than
        aborting the remaining copies mid-loop.
        """
        removed = 0
        entry = self._resolve_entry(entry_switch, None)
        fault = self.fault_state
        stamp = self._next_stamp(entry) if fault is not None else None
        for i in range(copies):
            copy_id = replica_id(data_id, i)
            packet = Packet(
                kind=PacketKind.RETRIEVAL,
                data_id=copy_id,
                position=self._position_fn(copy_id),
            )
            try:
                route = route_packet(self.controller.switches, entry,
                                     packet,
                                     fault_state=self.fault_state)
            except ForwardingError:
                if stamp is None:
                    raise
                registry = default_registry()
                if self.hinted_handoff:
                    self._park_hint(copy_id, "delete",
                                    self._home_server(copy_id).server_id,
                                    stamp, None, entry)
                elif registry.enabled:
                    registry.counter(
                        "durability.deletes_unreachable").inc()
                continue
            delivery = route.delivery
            servers = [self.server(delivery.switch,
                                   delivery.primary_serial)]
            if delivery.extension is not None:
                servers.append(
                    self.server(delivery.extension.target_switch,
                                delivery.extension.target_serial)
                )
            hit = False
            for server in servers:
                if server.has(copy_id):
                    if stamp is None:
                        server.delete(copy_id)
                    else:
                        self._entomb(server, copy_id, stamp)
                    hit = True
                    removed += 1
                    registry = default_registry()
                    if registry.enabled:
                        registry.counter("core.deletes").inc()
                        registry.gauge(
                            "edge.server_load", switch=server.switch,
                            serial=server.serial,
                        ).set(server.load)
                    break
            if stamp is not None and not hit:
                # No live copy at the home (it may sit on a crashed,
                # not-yet-repaired server): still record the tombstone
                # so repair cannot rebuild the copy later.
                home = servers[0]
                if fault.server_alive(home.server_id):
                    self._entomb(home, copy_id, stamp)
                elif self.hinted_handoff:
                    self._park_hint(copy_id, "delete", home.server_id,
                                    stamp, None, entry)
        return removed

    # ------------------------------------------------------------------
    # durability: hints, read repair, anti-entropy scrub
    # ------------------------------------------------------------------
    def _home_server(self, copy_id: str) -> EdgeServer:
        """The server that canonically owns a replica id right now
        (control-plane computation, no routing): the ``H(d) mod s``
        server of the closest switch, redirected by an active range
        extension."""
        switch = self.controller.closest_switch(
            self._position_fn(copy_id))
        servers = self.server_map[switch]
        serial = server_index(copy_id, len(servers))
        extension = self.controller.switches[switch].table.extension_for(
            serial)
        if extension is not None:
            return self.server(extension.target_switch,
                               extension.target_serial)
        return servers[serial]

    def _nearest_live_server(self, entry: int) -> Optional[EdgeServer]:
        """The closest live server reachable from ``entry`` (BFS over
        the physical topology honoring the fault state), or ``None``."""
        fault = self.fault_state
        seen = {entry}
        frontier = [entry]
        while frontier:
            next_frontier: List[int] = []
            for switch in frontier:
                for server in self.server_map.get(switch, []):
                    if fault is None or fault.server_alive(
                            server.server_id):
                        return server
                for peer in sorted(self.topology.neighbors(switch)):
                    if peer in seen:
                        continue
                    if fault is not None and \
                            not fault.can_forward(switch, peer):
                        continue
                    seen.add(peer)
                    next_frontier.append(peer)
            frontier = next_frontier
        return None

    def _park_hint(self, copy_id: str, op: str, target, stamp,
                   payload: Any, entry: int) -> EdgeServer:
        """Park a hinted write/delete on the nearest live server."""
        from ..edge import Hint

        holder = self._nearest_live_server(entry)
        if holder is None:
            raise GredError(
                f"cannot park a hint for {copy_id!r}: no live server "
                f"is reachable from switch {entry}"
            )
        holder.park_hint(Hint(copy_id=copy_id, op=op, target=target,
                              stamp=stamp, payload=payload))
        registry = default_registry()
        if registry.enabled:
            registry.counter("durability.hints_parked").inc()
        return holder

    def _entomb(self, server: EdgeServer, copy_id: str, stamp) -> bool:
        """Record a stamped tombstone on a server (counter-wrapped)."""
        removed = server.entomb(copy_id, stamp)
        registry = default_registry()
        if registry.enabled:
            registry.counter("durability.tombstones_written").inc()
        return removed

    def _hinted_record(self, copy_id: str, payload: Any, entry: int,
                       stamp, handle, target=None) -> PlacementRecord:
        """Placement outcome for a copy parked as a hinted write."""
        if target is None:
            target = self._home_server(copy_id).server_id
        holder = self._park_hint(copy_id, "store", target, stamp,
                                 payload, entry)
        physical = hop_count(self.topology, entry, holder.switch)
        if handle is not None and handle.recording:
            handle.set(destination=holder.switch,
                       server=holder.server_id, hinted=True)
        return PlacementRecord(
            data_id=copy_id,
            entry_switch=entry,
            destination_switch=holder.switch,
            server_id=holder.server_id,
            physical_hops=physical,
            overlay_hops=0,
            trace=[entry],
            extended=False,
            hinted=True,
        )

    def drain_hints(self, ignore_partitions: bool = False) -> int:
        """Apply every parked hint whose home is live and reachable
        again; returns the number of hints applied.  Hints whose home
        is still down (or still partitioned away from the holder, or
        full) stay parked for the next drain.  The scrubber passes
        ``ignore_partitions=True``: it is an operator-plane sweep that
        is not bound by data-plane partitions."""
        fault = self.fault_state
        applied = 0
        for switch in sorted(self.server_map):
            for holder in self.server_map[switch]:
                if holder.hint_count == 0:
                    continue
                keep = []
                for hint in holder.take_hints():
                    home = self._home_server(hint.copy_id)
                    if fault is not None and (
                            not fault.server_alive(home.server_id)
                            or (not ignore_partitions
                                and not fault.same_side(holder.switch,
                                                        home.switch))):
                        keep.append(hint)
                        continue
                    try:
                        if hint.op == "delete":
                            self._entomb(home, hint.copy_id, hint.stamp)
                        else:
                            home.store(hint.copy_id, hint.payload,
                                       stamp=hint.stamp)
                    except StorageFull:
                        keep.append(hint)
                        continue
                    applied += 1
                for hint in keep:
                    holder.park_hint(hint)
        registry = default_registry()
        if applied and registry.enabled:
            registry.counter("durability.hints_drained").inc(applied)
        return applied

    def read_repair(self, data_id: str, copies: int = 1) -> int:
        """Synchronize the live replicas of one item to the newest
        stamp observed among them (their tombstones included); returns
        the number of replica homes corrected.  Replicas on crashed or
        unreachable servers are left for :meth:`scrub`."""
        from ..edge import NO_STAMP

        fault = self.fault_state
        holders = []
        win_stamp = None
        win_payload = None
        win_tomb = None
        for i in range(copies):
            copy_id = replica_id(data_id, i)
            home = self._home_server(copy_id)
            if fault is not None and \
                    not fault.server_alive(home.server_id):
                continue
            tomb = home.tombstone_of(copy_id)
            if tomb is not None and (win_tomb is None
                                     or tomb > win_tomb):
                win_tomb = tomb
            if home.has(copy_id):
                stamp = home.stamp_of(copy_id) or NO_STAMP
                if win_stamp is None or stamp > win_stamp:
                    win_stamp = stamp
                    win_payload = home.retrieve(copy_id)
                holders.append((copy_id, home, stamp))
            else:
                holders.append((copy_id, home, None))
        repaired = 0
        if win_tomb is not None and (win_stamp is None
                                     or win_tomb > win_stamp):
            # The newest write is a delete: entomb the stale leftovers.
            for copy_id, home, stamp in holders:
                if stamp is not None and self._entomb(home, copy_id,
                                                      win_tomb):
                    repaired += 1
        elif win_stamp is not None:
            for copy_id, home, stamp in holders:
                if stamp is not None and stamp >= win_stamp:
                    continue
                try:
                    stored = (home.store(copy_id, win_payload)
                              if win_stamp == NO_STAMP
                              else home.store(copy_id, win_payload,
                                              stamp=win_stamp))
                except StorageFull:
                    continue
                if stored:
                    repaired += 1
        registry = default_registry()
        if repaired and registry.enabled:
            registry.counter("durability.read_repairs").inc(repaired)
        return repaired

    def scrub(self, catalog=None, **kwargs):
        """Run the anti-entropy scrubber over the whole storage plane
        (see :func:`repro.core.scrub.scrub_network`): drain hints,
        resolve each catalogued item's winning stamp, compare
        per-server hash-range digests and repair only the mismatching
        ranges.  Returns a :class:`~repro.core.scrub.ScrubReport`."""
        from .scrub import scrub_network

        return scrub_network(self, catalog, **kwargs)

    # ------------------------------------------------------------------
    # range extension (paper Section V-B)
    # ------------------------------------------------------------------
    def extend_range(self, switch: int, serial: int,
                     migrate: bool = False) -> None:
        """Activate a range extension for server ``(switch, serial)``.

        With ``migrate=True`` the items currently on the overloaded
        server move to the takeover server immediately (the default
        leaves them, matching the paper where only *new* placements are
        redirected and retrieval forks to both locations).
        """
        entry = self.controller.extend_range(switch, serial)
        if migrate:
            source = self.server(switch, serial)
            target = self.server(entry.target_switch, entry.target_serial)
            for item_id in source.stored_ids():
                target.store(item_id, source.retrieve(item_id),
                             stamp=source.stamp_of(item_id))
                source.delete(item_id)

    def retract_range(self, switch: int, serial: int) -> int:
        """Deactivate a range extension, migrating the redirected items
        back home first (paper Section V-B end).  Returns the number of
        items migrated.

        The paper only deletes the extended forwarding entries "when all
        the corresponding data has been retrieved", so retraction is
        refused when the home server lacks capacity for everything that
        belongs to it — the extension stays active and no item moves.
        """
        table = self.controller.switches[switch].table
        entry = table.extension_for(serial)
        if entry is None:
            raise GredError(
                f"server ({switch}, {serial}) has no active extension"
            )
        source = self.server(entry.target_switch, entry.target_serial)
        home = self.server(switch, serial)
        belonging = [
            item_id for item_id in source.stored_ids()
            if self._belongs_to(item_id, switch, serial)
        ]
        if home.capacity is not None:
            free = home.capacity - home.load
            if len(belonging) > free:
                raise GredError(
                    f"cannot retract: server ({switch}, {serial}) has "
                    f"{free} free slots but {len(belonging)} items must "
                    f"migrate back"
                )
        for item_id in belonging:
            home.store(item_id, source.retrieve(item_id),
                       stamp=source.stamp_of(item_id))
            source.delete(item_id)
        self.controller.retract_range(switch, serial)
        return len(belonging)

    def _belongs_to(self, data_id: str, switch: int, serial: int) -> bool:
        """Would ``data_id`` be delivered to server (switch, serial) with
        no extensions active?"""
        from ..hashing import server_index

        position = self._position_fn(data_id)
        dest = self.controller.closest_switch(position)
        if dest != switch:
            return False
        return server_index(data_id, len(self.server_map[switch])) == serial

    # ------------------------------------------------------------------
    # network dynamics (paper Section VI)
    # ------------------------------------------------------------------
    def add_switch(self, switch_id: int, links: Sequence[int],
                   servers_per_switch: int = 0,
                   servers: Optional[List[EdgeServer]] = None) -> int:
        """A switch (optionally with servers) joins the network.

        Data stored on the DT neighbors of the new switch is re-evaluated
        and items now closest to the new switch migrate to it.  Returns
        the number of migrated items.
        """
        if self.topology.has_node(switch_id):
            raise GredError(
                f"cannot join switch {switch_id}: a switch with that id "
                f"already exists — pick an unused id"
            )
        unknown = [peer for peer in links
                   if not self.topology.has_node(peer)]
        if unknown:
            raise GredError(
                f"cannot join switch {switch_id}: link peer(s) {unknown} "
                f"do not exist in the topology"
            )
        if servers is None:
            servers = [
                EdgeServer(switch=switch_id, serial=i)
                for i in range(servers_per_switch)
            ]
        self.controller.add_switch(switch_id, list(links), servers)
        if not servers:
            return 0
        neighbors = self.controller.dt_adjacency().get(switch_id, set())
        return self._migrate_from(neighbors)

    def remove_switch(self, switch_id: int) -> int:
        """A switch leaves gracefully; its stored items are re-placed
        onto the remaining network.  Returns the number of re-placed
        items.  (For an *ungraceful* crash — data lost, no migration —
        see :mod:`repro.faults`.)"""
        if not self.topology.has_node(switch_id):
            raise GredError(f"unknown switch {switch_id}")
        if self.topology.num_nodes() == 1:
            raise GredError(
                f"cannot remove switch {switch_id}: it is the last "
                f"switch and removing it would leave an empty network"
            )
        servers = self.server_map.get(switch_id, [])
        orphans = []
        for server in servers:
            for item_id in server.stored_ids():
                orphans.append((item_id, server.retrieve(item_id),
                                server.stamp_of(item_id)))
            server.clear()
        # Re-place from a surviving physical neighbor of the leaver.
        neighbors = [n for n in self.topology.neighbors(switch_id)]
        leaver_position = self.controller.positions.get(switch_id)
        self.controller.remove_switch(switch_id)
        entry = None
        for n in neighbors:
            if self.topology.has_node(n):
                entry = n
                break
        if entry is None:
            # Defensive: a connected topology always leaves a neighbor,
            # but if not, re-enter at the nearest surviving switch in
            # the virtual space rather than an arbitrary one.
            entry = min(
                self.switch_ids(),
                key=lambda s: (
                    euclidean(self.controller.positions[s],
                              leaver_position)
                    if leaver_position is not None else 0.0,
                    s,
                ),
            )
        for item_id, payload, stamp in orphans:
            self._place_one(item_id, payload, entry, stamp=stamp)
        if orphans:
            default_registry().counter("core.migrations").inc(
                len(orphans))
        return len(orphans)

    def _migrate_from(self, switches: Sequence[int]) -> int:
        """Re-evaluate items stored under the given switches and move the
        ones whose closest switch changed."""
        moved = 0
        for switch in switches:
            for server in self.server_map.get(switch, []):
                for item_id in server.stored_ids():
                    if self._belongs_to(item_id, server.switch,
                                        server.serial):
                        continue
                    payload = server.retrieve(item_id)
                    stamp = server.stamp_of(item_id)
                    server.delete(item_id)
                    self._place_one(item_id, payload, switch,
                                    stamp=stamp)
                    moved += 1
        if moved:
            default_registry().counter("core.migrations").inc(moved)
        return moved

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------
    def route_for(self, data_id: str, entry_switch: int) -> RouteResult:
        """Route a retrieval request without touching any storage (used
        by the routing-stretch experiments)."""
        packet = Packet(
            kind=PacketKind.RETRIEVAL,
            data_id=data_id,
            position=self._position_fn(data_id),
        )
        return route_packet(self.controller.switches, entry_switch,
                            packet, fault_state=self.fault_state)

    def trace_route(self, data_id: str, entry_switch: int):
        """Route a retrieval request with full decision tracing.

        Returns ``(RouteResult, Tracer)``; render the trace with
        ``tracer.render()`` for a per-hop explanation of the greedy
        decisions, virtual-link relays and the final delivery.
        """
        from ..dataplane import Tracer

        tracer = Tracer()
        packet = Packet(
            kind=PacketKind.RETRIEVAL,
            data_id=data_id,
            position=self._position_fn(data_id),
        )
        route = route_packet(self.controller.switches, entry_switch,
                             packet, tracer=tracer,
                             fault_state=self.fault_state)
        return route, tracer

    def destination_switch(self, data_id: str) -> int:
        """The switch that owns ``data_id`` (no routing simulated)."""
        return self.controller.closest_switch(
            self._position_fn(data_id))

    def _resolve_entry(self, entry_switch: Optional[int],
                       rng: Optional[np.random.Generator]) -> int:
        fault = self.fault_state
        if entry_switch is not None:
            if not self.topology.has_node(entry_switch):
                raise GredError(f"unknown entry switch {entry_switch}")
            if fault is not None and not fault.switch_alive(entry_switch):
                raise GredError(
                    f"entry switch {entry_switch} has crashed; requests "
                    f"must enter at a live access point"
                )
            return entry_switch
        ids = self.switch_ids()
        if fault is not None:
            ids = [s for s in ids if fault.switch_alive(s)]
            if not ids:
                raise GredError("no live switch can serve as entry point")
        rng = utils.rng(rng)
        return ids[int(rng.integers(0, len(ids)))]
