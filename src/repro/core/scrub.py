"""Anti-entropy scrubbing of the storage plane.

The scrubber is the storage-plane sibling of the control plane's
``Controller.reconcile``: an operator-driven sweep that makes the
*actual* replica state converge to the *desired* state with bounded
traffic.  One sweep

1. drains parked hinted-handoff writes/deletes whose home server is
   alive again (:meth:`~repro.core.GredNetwork.drain_hints`);
2. resolves every catalogued item's *winning* stamp — the maximum
   ``(version, origin)`` over all live replicas, tombstones and parked
   hints of all its copies (one stamp is shared per logical write, so
   copies are comparable).  A winning tombstone means the item is
   deleted and any live copy is a resurrection to remove; a winning
   write defines the payload every copy's home must hold;
3. compares per-``(server, hash-range)`` SHA-256 digests of the actual
   contents against the desired rows (the ``switch_digest`` recipe
   applied to storage, see :mod:`repro.edge.antientropy`) and pulls
   item-level detail *only for mismatching ranges*, repairing
   missing/stale/orphaned replicas up to ``max_repairs_per_sweep``.

Tombstones are garbage-collected once no live replica of the deleted
item remains anywhere (repair can no longer resurrect it), keeping the
tombstone set bounded.

The scrubber is an operator-plane tool: like ``reconcile`` it is not
bound by data-plane partitions (it models an out-of-band management
network), but it never touches a crashed server — copies whose home is
down are counted in ``skipped_unreachable`` and picked up by the next
scrub after repair.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..edge import (
    DEFAULT_RANGES,
    NO_STAMP,
    StorageFull,
    hash_range,
    rows_digest,
    server_rows,
)
from ..hashing import parse_replica_id, replica_id
from ..obs import EventLevel, default_registry

#: Desired row per (server, copy_id): ("item", stamp, payload) or
#: ("tomb", stamp, None).
_DesiredRow = Tuple[str, tuple, Any]


@dataclass
class ScrubReport:
    """Outcome of one :func:`scrub_network` run."""

    sweeps: int = 0
    hints_drained: int = 0
    ranges_checked: int = 0
    ranges_mismatched: int = 0
    repairs: int = 0
    resurrections_removed: int = 0
    orphans_removed: int = 0
    tombstones_gced: int = 0
    #: Replica homes that were crashed/unreplaced when the sweep ran;
    #: they stay divergent until repaired and re-scrubbed.
    skipped_unreachable: int = 0
    #: Row-level repairs refused by a full bounded server.
    repairs_skipped: int = 0
    #: Mismatching (server, range) digests remaining after the last
    #: sweep (0 = the storage plane converged).
    divergent_after: int = 0

    @property
    def converged(self) -> bool:
        return (self.divergent_after == 0
                and self.skipped_unreachable == 0
                and self.repairs_skipped == 0)

    def to_dict(self) -> Dict:
        record = asdict(self)
        record["converged"] = self.converged
        return record


def infer_catalog(net) -> Dict[str, int]:
    """Reconstruct ``data_id -> copy count`` from everything the
    storage plane holds (items, tombstones and parked hints), by
    inverting the ``H(d || i)`` replica naming."""
    catalog: Dict[str, int] = {}

    def observe(copy_id: str) -> None:
        base, index = parse_replica_id(copy_id)
        count = index + 1
        if count > catalog.get(base, 0):
            catalog[base] = count

    for switch in sorted(net.server_map):
        for server in net.server_map[switch]:
            for copy_id in server.stored_ids():
                observe(copy_id)
            for copy_id in server.tombstones():
                observe(copy_id)
            for hint in server.hints():
                observe(hint.copy_id)
    return catalog


def _observe_plane(net):
    """One pass over every server: the newest live (stamp, payload)
    and the newest tombstone stamp per replica id, parked hints
    included (an unapplied hint still carries the winning write)."""
    live: Dict[str, Tuple[tuple, Any]] = {}
    tombs: Dict[str, tuple] = {}
    for switch in sorted(net.server_map):
        for server in net.server_map[switch]:
            for copy_id in server.stored_ids():
                stamp = server.stamp_of(copy_id) or NO_STAMP
                current = live.get(copy_id)
                if current is None or stamp > current[0]:
                    live[copy_id] = (stamp, server.retrieve(copy_id))
            for copy_id, stamp in server.tombstones().items():
                if stamp > tombs.get(copy_id, NO_STAMP):
                    tombs[copy_id] = stamp
            for hint in server.hints():
                if hint.op == "delete":
                    if hint.stamp > tombs.get(hint.copy_id, NO_STAMP):
                        tombs[hint.copy_id] = hint.stamp
                else:
                    current = live.get(hint.copy_id)
                    if current is None or hint.stamp > current[0]:
                        live[hint.copy_id] = (hint.stamp, hint.payload)
    return live, tombs


def _desired_state(net, catalog: Dict[str, int], gc: bool):
    """Resolve the desired row of every (server, copy_id).

    Returns ``(desired, skipped, deleted_bases)`` where ``desired``
    maps each ``(switch, serial)`` to its ``copy_id -> _DesiredRow``
    map, ``skipped`` counts copies whose home server is crashed and
    ``deleted_bases`` is the set of data ids whose winning stamp is a
    tombstone.
    """
    live, tombs = _observe_plane(net)
    fault = net.fault_state
    desired: Dict[Tuple[int, int], Dict[str, _DesiredRow]] = {}
    skipped = 0
    deleted_bases = set()
    for data_id in sorted(catalog):
        copies = catalog[data_id]
        copy_ids = [replica_id(data_id, i) for i in range(copies)]
        live_max = max((live[c][0] for c in copy_ids if c in live),
                       default=None)
        tomb_max = max((tombs[c] for c in copy_ids if c in tombs),
                       default=None)
        deleted = tomb_max is not None and (live_max is None
                                            or tomb_max > live_max)
        if deleted:
            deleted_bases.add(data_id)
            if gc and live_max is None:
                # Fully deleted: no replica left to resurrect from, so
                # the tombstones themselves can go.
                continue
            row: _DesiredRow = ("tomb", tomb_max, None)
        else:
            if live_max is None:
                continue  # catalogued but gone everywhere: lost, not
                # repairable by anti-entropy
            payload = next(live[c][1] for c in copy_ids
                           if c in live and live[c][0] == live_max)
            row = ("item", live_max, payload)
        for copy_id in copy_ids:
            home = net._home_server(copy_id)
            if fault is not None and \
                    not fault.server_alive(home.server_id):
                skipped += 1
                continue
            desired.setdefault(home.server_id, {})[copy_id] = row
    return desired, skipped, deleted_bases


def _desired_rows(rows: Dict[str, _DesiredRow],
                  ranges: int) -> Dict[int, List[tuple]]:
    """Desired rows in the canonical digest-row form, per range."""
    buckets: Dict[int, List[tuple]] = {}
    for copy_id, (kind, stamp, _) in rows.items():
        buckets.setdefault(hash_range(copy_id, ranges), []).append(
            (kind, copy_id, stamp[0], stamp[1]))
    for bucket in buckets.values():
        bucket.sort()
    return buckets


def _repair_range(net, server, copy_ids, rows: Dict[str, _DesiredRow],
                  deleted_bases, report: ScrubReport,
                  budget: Optional[int]) -> int:
    """Make one server's hash range match its desired rows; returns
    the number of row-level repairs performed (bounded by the sweep's
    remaining ``budget``)."""
    done = 0
    for copy_id in sorted(copy_ids):
        if budget is not None and done >= budget:
            break
        want = rows.get(copy_id)
        if want is None:
            # Not desired here: a stray replica or a collectable
            # tombstone.
            if server.has(copy_id):
                server.delete(copy_id)
                base, _ = parse_replica_id(copy_id)
                if base in deleted_bases:
                    report.resurrections_removed += 1
                else:
                    report.orphans_removed += 1
                done += 1
            if server.tombstone_of(copy_id) is not None:
                server.gc_tombstone(copy_id)
                report.tombstones_gced += 1
                done += 1
            continue
        kind, stamp, payload = want
        if kind == "tomb":
            if server.tombstone_of(copy_id) == stamp and \
                    not server.has(copy_id):
                continue
            if server.entomb(copy_id, stamp):
                report.resurrections_removed += 1
            done += 1
            continue
        # kind == "item"
        if server.has(copy_id) and \
                (server.stamp_of(copy_id) or NO_STAMP) == stamp:
            continue
        try:
            if stamp == NO_STAMP:
                server.store(copy_id, payload)
            else:
                server.store(copy_id, payload, stamp=stamp)
        except StorageFull:
            report.repairs_skipped += 1
            continue
        done += 1
    return done


def storage_divergence(net, catalog: Optional[Dict[str, int]] = None,
                       ranges: int = DEFAULT_RANGES) -> int:
    """Measure (without repairing) how many ``(server, hash-range)``
    digest pairs differ between the actual contents and the resolved
    desired state — the storage plane's divergence metric.  Crashed
    servers are excluded (their divergence is a repair problem, not an
    anti-entropy one)."""
    catalog = dict(catalog) if catalog is not None else \
        infer_catalog(net)
    desired, _, _ = _desired_state(net, catalog, gc=True)
    fault = net.fault_state
    divergent = 0
    for switch in sorted(net.server_map):
        for server in net.server_map[switch]:
            if fault is not None and \
                    not fault.server_alive(server.server_id):
                continue
            want_ranges = _desired_rows(
                desired.get(server.server_id, {}), ranges)
            have_ranges = server_rows(server, ranges)
            for r in set(want_ranges) | set(have_ranges):
                if rows_digest(want_ranges.get(r, [])) != \
                        rows_digest(have_ranges.get(r, [])):
                    divergent += 1
    return divergent


def scrub_network(net, catalog: Optional[Dict[str, int]] = None,
                  max_sweeps: int = 4,
                  ranges: int = DEFAULT_RANGES,
                  max_repairs_per_sweep: Optional[int] = None,
                  gc: bool = True) -> ScrubReport:
    """Run anti-entropy sweeps until the storage plane converges (or
    ``max_sweeps`` is exhausted); see the module docstring for the
    sweep anatomy.  ``catalog`` maps ``data_id -> copy count`` and is
    inferred from the plane itself when omitted."""
    if max_sweeps < 1:
        raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if max_repairs_per_sweep is not None and max_repairs_per_sweep < 1:
        raise ValueError(
            f"max_repairs_per_sweep must be >= 1, got "
            f"{max_repairs_per_sweep}")
    report = ScrubReport()
    catalog = dict(catalog) if catalog is not None else \
        infer_catalog(net)
    fault = net.fault_state
    for _ in range(max_sweeps):
        report.sweeps += 1
        report.repairs_skipped = 0
        report.hints_drained += net.drain_hints(ignore_partitions=True)
        desired, skipped, deleted_bases = _desired_state(net, catalog,
                                                         gc)
        report.skipped_unreachable = skipped
        mismatched = 0
        repairs_before = report.repairs
        for switch in sorted(net.server_map):
            for server in net.server_map[switch]:
                server_id = server.server_id
                if fault is not None and \
                        not fault.server_alive(server_id):
                    continue
                want = desired.get(server_id, {})
                want_ranges = _desired_rows(want, ranges)
                have_ranges = server_rows(server, ranges)
                for r in sorted(set(want_ranges) | set(have_ranges)):
                    report.ranges_checked += 1
                    want_rows = want_ranges.get(r, [])
                    have_rows = have_ranges.get(r, [])
                    if rows_digest(want_rows) == rows_digest(have_rows):
                        continue
                    mismatched += 1
                    report.ranges_mismatched += 1
                    budget_left = None
                    if max_repairs_per_sweep is not None:
                        budget_left = max_repairs_per_sweep - (
                            report.repairs - repairs_before)
                        if budget_left <= 0:
                            continue
                    copy_ids = ({row[1] for row in want_rows}
                                | {row[1] for row in have_rows})
                    report.repairs += _repair_range(
                        net, server, copy_ids, want, deleted_bases,
                        report, budget_left)
        if mismatched == 0:
            report.divergent_after = 0
            break
        if report.repairs == repairs_before:
            # Mismatches remain but nothing could be repaired (full
            # servers): further sweeps would spin.
            report.divergent_after = mismatched
            break
        report.divergent_after = mismatched
    registry = default_registry()
    if registry.enabled:
        registry.counter("durability.scrubs").inc()
        if report.repairs:
            registry.counter("durability.scrub_repairs").inc(
                report.repairs)
        if report.tombstones_gced:
            registry.counter("durability.tombstones_gced").inc(
                report.tombstones_gced)
        registry.gauge("durability.divergent_ranges").set(
            report.divergent_after)
    registry.event(
        "storage_scrubbed",
        level=(EventLevel.INFO if report.converged
               else EventLevel.WARNING),
        sweeps=report.sweeps,
        repairs=report.repairs,
        hints_drained=report.hints_drained,
        resurrections_removed=report.resurrections_removed,
        divergent_after=report.divergent_after,
    )
    return report
