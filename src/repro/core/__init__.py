"""GRED core: the public placement/retrieval facade."""

from .network import GredError, GredNetwork
from .results import PlacementRecord, PlacementResult, RetrievalResult
from .scrub import (
    ScrubReport,
    infer_catalog,
    scrub_network,
    storage_divergence,
)

__all__ = [
    "GredNetwork",
    "GredError",
    "PlacementRecord",
    "PlacementResult",
    "RetrievalResult",
    "ScrubReport",
    "infer_catalog",
    "scrub_network",
    "storage_divergence",
]
