"""GRED core: the public placement/retrieval facade."""

from .network import GredError, GredNetwork
from .results import PlacementRecord, PlacementResult, RetrievalResult

__all__ = [
    "GredNetwork",
    "GredError",
    "PlacementRecord",
    "PlacementResult",
    "RetrievalResult",
]
