"""The C-regulation algorithm (paper Section IV-B, Algorithm 1).

C-regulation refines the M-position coordinates toward a Centroidal
Voronoi Tessellation (CVT) of the unit square so that, when data
positions are uniform in the square, every switch attracts roughly the
same load.  It is a Monte-Carlo Lloyd iteration:

* each iteration draws ``samples_per_iteration`` uniform points (the
  paper uses 1000);
* every sample is assigned to its nearest site;
* each site moves toward the centroid of its samples;
* iterate for ``iterations`` rounds (the paper's parameter ``T``), or
  stop early when the estimated CVT energy falls below
  ``energy_threshold``.

A relaxation factor blends the old position with the sampled centroid,
which keeps single-iteration noise from undoing the distance-preserving
structure of the M-position embedding; ``relaxation=1.0`` is pure Lloyd.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geometry import (
    Point,
    cvt_energy,
    estimate_cell_centroids,
    sample_unit_square,
)


@dataclass
class CRegulationResult:
    """Outcome of a C-regulation run.

    Attributes
    ----------
    sites:
        Refined switch positions (the paper's ``Q*``).
    energy_history:
        Estimated CVT energy after each iteration, measured on a fresh
        held-out Monte-Carlo batch (useful for the convergence
        ablation).
    iterations_run:
        Number of iterations actually executed (may be fewer than the
        requested ``T`` when ``energy_threshold`` triggers early stop).
    """

    sites: List[Point]
    energy_history: List[float] = field(default_factory=list)
    iterations_run: int = 0


#: A sampler draws ``k`` points from the data-position density: it takes
#: ``(k, rng)`` and returns a ``(k, 2)`` array inside the unit square.
Sampler = "Callable[[int, np.random.Generator], np.ndarray]"


def c_regulation(
    sites: Sequence[Point],
    iterations: int = 50,
    samples_per_iteration: int = 1000,
    energy_threshold: Optional[float] = None,
    relaxation: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    sampler=None,
) -> CRegulationResult:
    """Refine ``sites`` toward a CVT of the unit square.

    Parameters
    ----------
    sites:
        Initial positions (from :func:`repro.embedding.m_position`).
    iterations:
        The paper's ``T``.  ``T = 0`` returns the input unchanged, which
        is exactly the GRED-NoCVT variant.
    samples_per_iteration:
        Monte-Carlo sample count per iteration (paper: 1000).
    energy_threshold:
        Optional early-stop threshold on the estimated CVT energy.  The
        estimate is computed on a held-out sample batch, not the batch
        the sites were just fitted to, so the stopping rule is unbiased.
    relaxation:
        Blend factor in ``(0, 1]``: ``new = (1 - r) * old + r * centroid``.
    rng:
        Random generator; defaults to a fixed seed for reproducibility.
    sampler:
        Optional density sampler ``(k, rng) -> (k, 2) array`` realizing
        the paper's general density function rho (Equation 2).  The
        default is the uniform density matching SHA-256 data positions;
        deployments using locality-preserving (non-uniform) position
        mappings pass a sampler matching their data density so that the
        CVT equalizes *weighted* load.

    Returns
    -------
    :class:`CRegulationResult`
    """
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    if samples_per_iteration <= 0:
        raise ValueError(
            f"samples_per_iteration must be positive, got "
            f"{samples_per_iteration}"
        )
    if not 0.0 < relaxation <= 1.0:
        raise ValueError(f"relaxation must be in (0, 1], got {relaxation}")
    if rng is None:
        rng = np.random.default_rng(0)

    if sampler is None:
        sampler = sample_unit_square
    # The early-stop energy must be measured on samples the sites were
    # NOT fitted to this iteration: evaluating on the training batch
    # biases the estimate low (each site just moved to the centroid of
    # exactly these points) and fires ``energy_threshold`` prematurely.
    # A spawned child stream supplies held-out batches without
    # perturbing the main stream that drives the site trajectory.
    eval_rng = rng.spawn(1)[0]
    current: List[Point] = [(float(p[0]), float(p[1])) for p in sites]
    history: List[float] = []
    iterations_run = 0
    for _ in range(iterations):
        samples = np.asarray(sampler(samples_per_iteration, rng),
                             dtype=float)
        if samples.ndim != 2 or samples.shape[1] != 2:
            raise ValueError(
                f"sampler must return a (k, 2) array, got shape "
                f"{samples.shape}"
            )
        centroids, counts = estimate_cell_centroids(current, samples)
        moved: List[Point] = []
        for site, target, count in zip(current, centroids, counts):
            if count == 0:
                moved.append(site)
                continue
            moved.append((
                (1.0 - relaxation) * site[0] + relaxation * target[0],
                (1.0 - relaxation) * site[1] + relaxation * target[1],
            ))
        current = moved
        iterations_run += 1
        eval_samples = np.asarray(
            sampler(samples_per_iteration, eval_rng), dtype=float
        )
        energy = cvt_energy(current, eval_samples)
        history.append(energy)
        if energy_threshold is not None and energy <= energy_threshold:
            break
    return CRegulationResult(sites=current, energy_history=history,
                             iterations_run=iterations_run)
