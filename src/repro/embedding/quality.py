"""Embedding-quality metrics.

How well the virtual space preserves network distances determines the
routing stretch of greedy forwarding; these metrics quantify it and feed
the embedding ablation (DESIGN.md experiment A2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry import Point, euclidean


def embedding_distance_matrix(points: Sequence[Point]) -> np.ndarray:
    """Pairwise Euclidean distances between embedded points."""
    n = len(points)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = euclidean(points[i], points[j])
            out[i, j] = d
            out[j, i] = d
    return out


def kruskal_stress(network_distances: np.ndarray,
                   points: Sequence[Point]) -> float:
    """Kruskal stress-1 between network and embedded distances.

    The embedded distances are first rescaled by the least-squares factor
    so the metric is scale-invariant (the virtual space is normalized
    into the unit square, network distances are hops).  0 is a perfect
    embedding; values below ~0.15 are conventionally "good".
    """
    net = np.asarray(network_distances, dtype=float)
    emb = embedding_distance_matrix(points)
    if net.shape != emb.shape:
        raise ValueError(
            f"matrix shapes differ: {net.shape} vs {emb.shape}"
        )
    iu = np.triu_indices(net.shape[0], k=1)
    net_v = net[iu]
    emb_v = emb[iu]
    if net_v.size == 0:
        return 0.0
    denom_scale = float(emb_v @ emb_v)
    if denom_scale == 0.0:
        return float("inf") if net_v.any() else 0.0
    scale = float(net_v @ emb_v) / denom_scale
    resid = net_v - scale * emb_v
    denom = float(net_v @ net_v)
    if denom == 0.0:
        return 0.0
    return float(np.sqrt(resid @ resid / denom))


def max_distortion(network_distances: np.ndarray,
                   points: Sequence[Point]) -> float:
    """Multiplicative distortion: max expansion times max contraction.

    1.0 means a perfect (up to scale) embedding.  Pairs with zero network
    distance are skipped.
    """
    net = np.asarray(network_distances, dtype=float)
    emb = embedding_distance_matrix(points)
    iu = np.triu_indices(net.shape[0], k=1)
    net_v = net[iu]
    emb_v = emb[iu]
    mask = (net_v > 0) & (emb_v > 0)
    if not mask.any():
        return 1.0
    ratios = emb_v[mask] / net_v[mask]
    return float(ratios.max() / ratios.min())
