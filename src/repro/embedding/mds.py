"""The M-position algorithm (paper Section IV-A): classical MDS.

Given the all-pairs shortest-path matrix ``L`` between switches, the
control plane computes virtual 2D coordinates whose Euclidean distances
approximate the network distances (a *greedy network embedding*).  The
algorithm is classical multidimensional scaling:

1. square the distances and double-center them:
   ``B = -1/2 * J * L^(2) * J`` with ``J = I - (1/n) * A`` where ``A`` is
   the all-ones matrix;
2. take the ``m`` largest eigenvalues/eigenvectors of ``B``;
3. coordinates are ``Q = E_m * Lambda_m^(1/2)``.

The coordinates are then affinely normalized into the unit square (the
GRED virtual space onto which data identifiers are hashed), preserving
the aspect ratio so relative distances are scaled uniformly.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry import Point


class EmbeddingError(Exception):
    """Raised when a virtual-space embedding cannot be computed."""


def double_center(squared_distances: np.ndarray) -> np.ndarray:
    """Apply double centering: ``B = -1/2 * J * D * J``.

    ``D`` must be the matrix of *squared* distances.
    """
    d = np.asarray(squared_distances, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise EmbeddingError(f"squared-distance matrix must be square, "
                             f"got shape {d.shape}")
    n = d.shape[0]
    j = np.eye(n) - np.full((n, n), 1.0 / n)
    return -0.5 * j @ d @ j


def classical_mds(distances: np.ndarray, dimensions: int = 2) -> np.ndarray:
    """Coordinates from a distance matrix via classical MDS.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` matrix of pairwise distances (hop counts in
        GRED).  Must be finite: embed only a connected topology.
    dimensions:
        Output dimensionality ``m`` (2 for the GRED virtual space).

    Returns
    -------
    ``(n, m)`` coordinate array.  When ``B`` has fewer than ``m`` positive
    eigenvalues (e.g. a path graph embeds exactly in 1D), the missing
    columns are zero.
    """
    dist = np.asarray(distances, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise EmbeddingError(f"distance matrix must be square, got shape "
                             f"{dist.shape}")
    if not np.all(np.isfinite(dist)):
        raise EmbeddingError("distance matrix contains non-finite entries; "
                             "the topology must be connected")
    if dimensions < 1:
        raise EmbeddingError(f"dimensions must be >= 1, got {dimensions}")
    n = dist.shape[0]
    if n == 1:
        return np.zeros((1, dimensions))
    b = double_center(dist ** 2)
    # b is symmetric by construction; eigh returns ascending eigenvalues.
    eigenvalues, eigenvectors = np.linalg.eigh((b + b.T) / 2.0)
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    coords = np.zeros((n, dimensions))
    for out_col, idx in enumerate(order):
        lam = eigenvalues[idx]
        if lam > 0:
            coords[:, out_col] = eigenvectors[:, idx] * np.sqrt(lam)
    return coords


def normalize_to_unit_square(coords: np.ndarray,
                             margin: float = 0.05) -> List[Point]:
    """Affinely map coordinates into ``[margin, 1-margin]^2``.

    A single uniform scale is applied to both axes (aspect ratio is
    preserved) so that Euclidean distances keep reflecting network
    distances up to one constant factor.  Degenerate inputs (all points
    coincident along an axis, or entirely) are centered.
    """
    if not 0.0 <= margin < 0.5:
        raise EmbeddingError(f"margin must be in [0, 0.5), got {margin}")
    c = np.asarray(coords, dtype=float)
    if c.ndim != 2 or c.shape[1] != 2:
        raise EmbeddingError(f"expected (n, 2) coordinates, got {c.shape}")
    mins = c.min(axis=0)
    maxs = c.max(axis=0)
    spans = maxs - mins
    span = float(spans.max())
    available = 1.0 - 2.0 * margin
    if span <= 0.0:
        # All points coincide; place them at the center.
        return [(0.5, 0.5) for _ in range(c.shape[0])]
    scale = available / span
    scaled = (c - mins) * scale
    # Center each axis within the available band.
    offsets = margin + (available - spans * scale) / 2.0
    scaled = scaled + offsets
    return [(float(x), float(y)) for x, y in scaled]


def m_position(distances: np.ndarray,
               margin: float = 0.05) -> List[Point]:
    """The full M-position pipeline: classical MDS into the unit square.

    This is the switch-position computation of GRED-NoCVT; GRED further
    refines the result with :func:`repro.embedding.c_regulation`.
    """
    coords = classical_mds(distances, dimensions=2)
    return normalize_to_unit_square(coords, margin=margin)
