"""Virtual-space embedding: the M-position algorithm (classical MDS) and
the C-regulation CVT refinement, plus embedding-quality metrics."""

from .mds import (
    EmbeddingError,
    classical_mds,
    double_center,
    m_position,
    normalize_to_unit_square,
)
from .cvt import CRegulationResult, c_regulation
from .smacof import smacof, smacof_position
from .quality import (
    embedding_distance_matrix,
    kruskal_stress,
    max_distortion,
)

__all__ = [
    "EmbeddingError",
    "double_center",
    "classical_mds",
    "normalize_to_unit_square",
    "m_position",
    "c_regulation",
    "CRegulationResult",
    "smacof",
    "smacof_position",
    "embedding_distance_matrix",
    "kruskal_stress",
    "max_distortion",
]
