"""SMACOF stress majorization: an alternative M-position back end.

Classical MDS (the paper's M-position) minimizes the *strain* of the
double-centered Gram matrix; SMACOF iteratively minimizes the raw
*stress* ``sum_{i<j} (d_ij - |x_i - x_j|)^2`` via the Guttman
transform.  On graphs whose hop metric embeds poorly into the plane,
stress majorization often preserves distances better, which is what
ablation A4 measures (DESIGN.md).

Implemented from scratch on numpy; initialized from classical MDS so
the iteration starts near a good configuration.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry import Point
from .mds import EmbeddingError, classical_mds, normalize_to_unit_square


def smacof(
    distances: np.ndarray,
    dimensions: int = 2,
    iterations: int = 128,
    tolerance: float = 1e-7,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stress-majorization embedding of a distance matrix.

    Parameters
    ----------
    distances:
        Symmetric finite ``(n, n)`` matrix of target distances.
    dimensions:
        Output dimensionality.
    iterations:
        Maximum Guttman-transform steps.
    tolerance:
        Stop when the relative stress improvement falls below this.
    initial:
        Optional ``(n, dimensions)`` starting configuration; defaults
        to the classical-MDS solution.

    Returns
    -------
    ``(n, dimensions)`` coordinates.
    """
    d = np.asarray(distances, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise EmbeddingError(f"distance matrix must be square, got "
                             f"{d.shape}")
    if not np.all(np.isfinite(d)):
        raise EmbeddingError("distance matrix contains non-finite "
                             "entries")
    n = d.shape[0]
    if n == 1:
        return np.zeros((1, dimensions))
    if initial is None:
        x = classical_mds(d, dimensions=dimensions)
    else:
        x = np.array(initial, dtype=float)
        if x.shape != (n, dimensions):
            raise EmbeddingError(
                f"initial configuration must be ({n}, {dimensions}), "
                f"got {x.shape}"
            )
    # Break exact ties/coincident starts so the Guttman transform is
    # well defined.
    rng = np.random.default_rng(0)
    x = x + rng.normal(scale=1e-9, size=x.shape)

    prev_stress = _stress(d, x)
    for _ in range(iterations):
        x = _guttman_transform(d, x)
        stress = _stress(d, x)
        if prev_stress == 0.0:
            break
        if abs(prev_stress - stress) / max(prev_stress, 1e-30) \
                < tolerance:
            break
        prev_stress = stress
    return x


def _pairwise(x: np.ndarray) -> np.ndarray:
    diff = x[:, None, :] - x[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def _stress(d: np.ndarray, x: np.ndarray) -> float:
    e = _pairwise(x)
    iu = np.triu_indices(d.shape[0], k=1)
    return float(((d[iu] - e[iu]) ** 2).sum())


def _guttman_transform(d: np.ndarray, x: np.ndarray) -> np.ndarray:
    n = d.shape[0]
    e = _pairwise(x)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(e > 0, d / e, 0.0)
    b = -ratio
    np.fill_diagonal(b, 0.0)
    np.fill_diagonal(b, -b.sum(axis=1))
    return (b @ x) / n


def smacof_position(distances: np.ndarray,
                    margin: float = 0.05) -> List[Point]:
    """SMACOF pipeline into the unit square (drop-in alternative to
    :func:`repro.embedding.m_position`)."""
    coords = smacof(distances, dimensions=2)
    return normalize_to_unit_square(coords, margin=margin)
