"""Throughput microbenchmark of the request fast path.

Backs the ``gred bench`` CLI command and
``benchmarks/bench_throughput.py``: it builds two identical deployments
from one seed, drives the same seeded workload through the scalar
per-request loop on one and the batch fast path
(:meth:`~repro.core.network.GredNetwork.place_many` /
:meth:`~repro.core.network.GredNetwork.retrieve_many`) on the other,
asserts the per-request outcomes are identical, and reports
requests/sec, p50/p99 per-operation latency, control-plane recompute
time and the telemetry-plane overhead (batch path with the metrics
registry enabled vs disabled) in a stable JSON schema
(``format: gred-bench-v1``)
suitable for committing as ``BENCH_micro.json`` and diffing across
runs.

Methodology notes:

* every timed section runs with the GC frozen so collection pauses of
  earlier rounds don't land in later ones;
* each repeat places a fresh namespace of identifiers (placement cost
  is storage-independent, so the network can be reused while the
  streams of both deployments stay in lockstep);
* throughput is the best of ``repeats`` rounds (the usual "min over
  repeats estimates the noise floor" microbenchmark convention);
* scalar p50/p99 come from per-call wall times; batch p50/p99 are
  per-call amortized (call wall time / call size), the per-request
  latency a caller batching at that granularity observes.  The default
  ``chunks = 1`` feeds each round to one ``place_many`` /
  ``retrieve_many`` call — the batch APIs' natural operating point;
  raise ``chunks`` to study smaller batch granularities (small chunks
  fall below the wave router's straggler threshold and degrade toward
  scalar cost).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np


@dataclass
class BenchConfig:
    """Workload shape for :func:`run_bench`."""

    switches: int = 200
    requests: int = 10_000
    copies: int = 1
    servers_per_switch: int = 4
    min_degree: int = 3
    cvt_iterations: int = 20
    seed: int = 0
    repeats: int = 3
    #: Number of ``place_many``/``retrieve_many`` calls the workload is
    #: split into; the per-call amortized latencies form the batch
    #: latency distribution.
    chunks: int = 1

    @classmethod
    def quick(cls) -> "BenchConfig":
        """CI smoke preset: a tiny topology and workload (~seconds)."""
        return cls(switches=24, requests=400, cvt_iterations=5,
                   repeats=2)


@dataclass
class ScalingConfig:
    """Grid for :func:`run_scaling`: switches x batch sizes x worker
    counts, with replica fan-out (``copies``) exercised throughout."""

    switches: Tuple[int, ...] = (100, 200)
    batches: Tuple[int, ...] = (2_000, 10_000)
    workers: Tuple[int, ...] = (1, 2, 4)
    copies: int = 2
    servers_per_switch: int = 4
    min_degree: int = 3
    cvt_iterations: int = 20
    seed: int = 0
    repeats: int = 2
    #: Cap on the scalar-reference workload (the reference loop is two
    #: orders of magnitude slower; its rps does not depend on how long
    #: it runs).
    reference_requests: int = 2_000

    @classmethod
    def quick(cls) -> "ScalingConfig":
        """CI smoke preset (~seconds)."""
        return cls(switches=(24,), batches=(400,), workers=(1, 2),
                   cvt_iterations=5, repeats=1,
                   reference_requests=400)


def _percentile_us(samples: List[float], q: float) -> float:
    """The ``q``-th percentile of per-op seconds, in microseconds."""
    return float(np.percentile(np.asarray(samples), q) * 1e6)


def _stats(best_seconds: float, requests: int,
           per_op_seconds: List[float]) -> Dict[str, Any]:
    return {
        "seconds": best_seconds,
        "requests_per_sec": requests / best_seconds,
        "p50_us": _percentile_us(per_op_seconds, 50.0),
        "p99_us": _percentile_us(per_op_seconds, 99.0),
    }


def _chunk_bounds(total: int, chunks: int) -> List[range]:
    chunks = max(1, min(chunks, total))
    step = total // chunks
    extra = total % chunks
    bounds = []
    start = 0
    for c in range(chunks):
        size = step + (1 if c < extra else 0)
        bounds.append(range(start, start + size))
        start += size
    return bounds


@dataclass
class _Round:
    seconds: float
    per_op: List[float] = field(default_factory=list)


def run_bench(config: Optional[BenchConfig] = None,
              scaling: Optional[ScalingConfig] = None
              ) -> Dict[str, Any]:
    """Run the fast-path benchmark; returns the report dict
    (``format: gred-bench-v1``).  When ``scaling`` is given, the
    report additionally carries the :func:`run_scaling` sweep under
    ``"scaling"``."""
    from .core.network import GredNetwork
    from .edge import attach_uniform
    from .topology import brite_waxman_graph

    config = config or BenchConfig()
    topology, _ = brite_waxman_graph(
        config.switches, min_degree=config.min_degree,
        rng=np.random.default_rng(config.seed),
    )

    def build() -> GredNetwork:
        return GredNetwork(
            topology,
            attach_uniform(topology.nodes(),
                           servers_per_switch=config.servers_per_switch),
            cvt_iterations=config.cvt_iterations,
            seed=config.seed,
        )

    t0 = time.perf_counter()
    scalar_net = build()
    build_seconds = time.perf_counter() - t0
    batch_net = build()
    t0 = time.perf_counter()
    scalar_net.controller.recompute()
    recompute_seconds = time.perf_counter() - t0
    # Keep both deployments in the same epoch/placement state.
    batch_net.controller.recompute()

    scalar_rng = np.random.default_rng(config.seed + 1)
    batch_rng = np.random.default_rng(config.seed + 1)
    equivalence = {"placement_identical": True,
                   "retrieval_identical": True,
                   "load_vector_identical": True}
    place_rounds: Dict[str, List[_Round]] = {"scalar": [], "batch": []}
    get_rounds: Dict[str, List[_Round]] = {"scalar": [], "batch": []}
    bounds = _chunk_bounds(config.requests, config.chunks)

    gc_was_enabled = gc.isenabled()
    try:
        for repeat in range(config.repeats):
            ids = [f"bench/{repeat}/{i}" for i in range(config.requests)]
            perf = time.perf_counter

            gc.collect()
            gc.disable()
            per_op = []
            start = perf()
            scalar_placed = []
            for data_id in ids:
                op0 = perf()
                scalar_placed.append(scalar_net.place(
                    data_id, copies=config.copies, rng=scalar_rng))
                per_op.append(perf() - op0)
            place_rounds["scalar"].append(_Round(perf() - start, per_op))

            # The batch arm hashes each replica id exactly once per
            # round: ``prehash`` is timed as part of placement, and
            # the digest array is handed to retrieve_many below (the
            # scalar arm re-hashes per call, as a real per-request
            # caller would).
            per_op = []
            start = perf()
            batch_placed: List[Any] = []
            chunk_digests: List[Any] = []
            for chunk in bounds:
                op0 = perf()
                digests = batch_net.prehash(ids[chunk.start:chunk.stop],
                                            copies=config.copies)
                chunk_digests.append(digests)
                batch_placed.extend(batch_net.place_many(
                    ids[chunk.start:chunk.stop],
                    copies=config.copies, rng=batch_rng,
                    digests=digests))
                per_op.append((perf() - op0) / len(chunk))
            place_rounds["batch"].append(_Round(perf() - start, per_op))

            per_op = []
            start = perf()
            scalar_got = []
            for data_id in ids:
                op0 = perf()
                scalar_got.append(scalar_net.retrieve(
                    data_id, copies=config.copies, rng=scalar_rng))
                per_op.append(perf() - op0)
            get_rounds["scalar"].append(_Round(perf() - start, per_op))

            per_op = []
            start = perf()
            batch_got: List[Any] = []
            for chunk, digests in zip(bounds, chunk_digests):
                op0 = perf()
                batch_got.extend(batch_net.retrieve_many(
                    ids[chunk.start:chunk.stop],
                    copies=config.copies, rng=batch_rng,
                    digests=digests))
                per_op.append((perf() - op0) / len(chunk))
            get_rounds["batch"].append(_Round(perf() - start, per_op))
            gc.enable()

            if scalar_placed != batch_placed:
                equivalence["placement_identical"] = False
            if scalar_got != batch_got:
                equivalence["retrieval_identical"] = False
        if scalar_net.load_vector() != batch_net.load_vector():
            equivalence["load_vector_identical"] = False
    finally:
        if gc_was_enabled:
            gc.enable()

    telemetry = _bench_telemetry(batch_net, config)

    def section(rounds: Dict[str, List[_Round]]) -> Dict[str, Any]:
        scalar_best = min(rounds["scalar"], key=lambda r: r.seconds)
        batch_best = min(rounds["batch"], key=lambda r: r.seconds)
        return {
            "scalar": _stats(scalar_best.seconds, config.requests,
                             scalar_best.per_op),
            "batch": _stats(batch_best.seconds, config.requests,
                            batch_best.per_op),
            "batch_speedup": scalar_best.seconds / batch_best.seconds,
        }

    report = {
        "format": "gred-bench-v1",
        "generated_unix": time.time(),
        "config": {
            "switches": config.switches,
            "requests": config.requests,
            "copies": config.copies,
            "servers_per_switch": config.servers_per_switch,
            "min_degree": config.min_degree,
            "cvt_iterations": config.cvt_iterations,
            "seed": config.seed,
            "repeats": config.repeats,
            "chunks": config.chunks,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "control_plane": {
            "build_seconds": build_seconds,
            "recompute_seconds": recompute_seconds,
        },
        "placement": section(place_rounds),
        "retrieval": section(get_rounds),
        "telemetry": telemetry,
        "equivalence": equivalence,
    }
    if scaling is not None:
        report["scaling"] = run_scaling(scaling)
    return report


def run_scaling(config: Optional[ScalingConfig] = None
                ) -> Dict[str, Any]:
    """Scaling sweep of the batch pipeline: switches x batch size x
    worker count, replica fan-out included.

    For every topology size the sweep first measures the scalar
    reference loop and verifies **in-run** that the batch pipeline —
    at every worker count — returns byte-identical outcomes and load
    vectors; the grid rows then time ``place_many`` /
    ``retrieve_many`` (best of ``repeats``) and record the wave count
    as proof the vectorized walker (not the scalar fallback) routed
    the batch.

    ``workers == 1`` runs the in-process wave router; ``workers > 1``
    shards the batch across a :class:`~repro.dataplane.shard
    .ShardPool`.  Worker sharding only pays on multi-core hosts —
    ``summary.host_cpus`` records what this run had, and
    ``speedup_vs_single_worker`` is expected to hover near (or below)
    1.0 on a single-core host while ``speedup_vs_scalar`` reflects
    the vectorization win that needs no extra cores.
    """
    from .core.network import GredNetwork
    from .dataplane import batch_fastpath_blockers
    from .edge import attach_uniform
    from .topology import brite_waxman_graph

    config = config or ScalingConfig()
    perf = time.perf_counter
    rows: List[Dict[str, Any]] = []
    reference: Dict[str, Any] = {}
    equivalence_ok = True
    fanout_vectorized = True
    gc_was_enabled = gc.isenabled()
    try:
        for switches in config.switches:
            topology, _ = brite_waxman_graph(
                switches, min_degree=config.min_degree,
                rng=np.random.default_rng(config.seed),
            )

            def build() -> GredNetwork:
                return GredNetwork(
                    topology,
                    attach_uniform(
                        topology.nodes(),
                        servers_per_switch=config.servers_per_switch),
                    cvt_iterations=config.cvt_iterations,
                    seed=config.seed,
                )

            scalar_net = build()
            net = build()

            # Scalar reference (capped: rps is workload-independent).
            ref_n = min(max(config.batches), config.reference_requests)
            ref_ids = [f"scale/ref/{i}" for i in range(ref_n)]
            rng = np.random.default_rng(config.seed + 1)
            gc.collect()
            gc.disable()
            start = perf()
            expected = [scalar_net.place(d, copies=config.copies,
                                         rng=rng) for d in ref_ids]
            scalar_seconds = perf() - start
            gc.enable()
            reference[str(switches)] = {
                "requests": ref_n,
                "place_rps": ref_n / scalar_seconds,
            }

            # In-run equivalence: every worker count must reproduce
            # the scalar outcomes byte for byte.
            for w in config.workers:
                eq_net = build()
                rng = np.random.default_rng(config.seed + 1)
                got = eq_net.place_many(
                    ref_ids, copies=config.copies, rng=rng,
                    workers=None if w <= 1 else w)
                if (got != expected or eq_net.load_vector()
                        != scalar_net.load_vector()):
                    equivalence_ok = False
                eq_net.close_worker_pools()

            for batch in config.batches:
                for w in config.workers:
                    workers = None if w <= 1 else w
                    best_place = best_get = None
                    waves = 0
                    for repeat in range(config.repeats):
                        ids = [f"scale/{switches}/{batch}/{w}/"
                               f"{repeat}/{i}" for i in range(batch)]
                        rng = np.random.default_rng(config.seed + 2)
                        gc.collect()
                        gc.disable()
                        start = perf()
                        net.place_many(ids, copies=config.copies,
                                       rng=rng, workers=workers)
                        mid = perf()
                        net.retrieve_many(ids, copies=config.copies,
                                          rng=rng, workers=workers)
                        end = perf()
                        gc.enable()
                        place, get = mid - start, end - mid
                        if best_place is None or place < best_place:
                            best_place = place
                        if best_get is None or get < best_get:
                            best_get = get
                        waves = max(
                            waves,
                            net._fastpath.router.last_batch_waves)
                    fallback = (bool(batch_fastpath_blockers(net))
                                or waves <= 0)
                    if fallback:
                        fanout_vectorized = False
                    rows.append({
                        "switches": switches,
                        "batch": batch,
                        "workers": w,
                        "copies": config.copies,
                        "place_rps": batch / best_place,
                        "retrieve_rps": batch / best_get,
                        "batch_waves": int(waves),
                        "scalar_fallback": fallback,
                    })
            net.close_worker_pools()
    finally:
        if gc_was_enabled:
            gc.enable()

    top_switches = max(config.switches)
    top_batch = max(config.batches)
    top_rows = [r for r in rows if r["switches"] == top_switches
                and r["batch"] == top_batch]
    scalar_rps = reference[str(top_switches)]["place_rps"]
    best_place_rps = max(r["place_rps"] for r in top_rows)
    single = next((r for r in top_rows if r["workers"] == 1), None)
    multi = [r for r in top_rows if r["workers"] > 1]
    summary = {
        "speedup_vs_scalar_place": best_place_rps / scalar_rps,
        "speedup_vs_single_worker": (
            max(r["place_rps"] for r in multi) / single["place_rps"]
            if single is not None and multi else None),
        "replica_fanout_vectorized": fanout_vectorized,
        "equivalence_verified": equivalence_ok,
        "host_cpus": os.cpu_count(),
        "note": ("speedup_vs_scalar_place is the vectorization win "
                 "over the per-request reference loop; "
                 "speedup_vs_single_worker only exceeds 1.0 when "
                 "host_cpus gives the shard workers real cores"),
    }
    return {
        "config": {
            "switches": list(config.switches),
            "batches": list(config.batches),
            "workers": list(config.workers),
            "copies": config.copies,
            "servers_per_switch": config.servers_per_switch,
            "min_degree": config.min_degree,
            "cvt_iterations": config.cvt_iterations,
            "seed": config.seed,
            "repeats": config.repeats,
        },
        "scalar_reference": reference,
        "rows": rows,
        "summary": summary,
    }


def _bench_telemetry(net, config: BenchConfig) -> Dict[str, Any]:
    """Cost of the vectorized telemetry plane on the batch fast path.

    Times the same batch place+retrieve workload with the metrics
    registry disabled and enabled (best of ``repeats`` each, fresh
    identifier namespaces so the route cache never crosses modes) and
    reports the overhead fractions.  ``batch_waves > 0`` proves the
    telemetry-on run still took the wave router — telemetry alone must
    not force the scalar fallback.
    """
    from . import obs

    perf = time.perf_counter
    best = {"off": {"place": None, "get": None},
            "on": {"place": None, "get": None}}
    batch_waves = 0.0
    gc_was_enabled = gc.isenabled()
    try:
        for repeat in range(config.repeats):
            for mode in ("off", "on"):
                ids = [f"tel/{mode}/{repeat}/{i}"
                       for i in range(config.requests)]
                rng = np.random.default_rng(config.seed + 7)
                registry = obs.MetricsRegistry(enabled=(mode == "on"))
                previous = obs.set_default_registry(registry)
                gc.collect()
                gc.disable()
                try:
                    start = perf()
                    net.place_many(ids, copies=config.copies, rng=rng)
                    mid = perf()
                    net.retrieve_many(ids, copies=config.copies,
                                      rng=rng)
                    end = perf()
                finally:
                    gc.enable()
                    obs.set_default_registry(previous)
                slot = best[mode]
                place, get = mid - start, end - mid
                if slot["place"] is None or place < slot["place"]:
                    slot["place"] = place
                if slot["get"] is None or get < slot["get"]:
                    slot["get"] = get
                if mode == "on":
                    batch_waves = max(
                        batch_waves,
                        registry.counter_values("dataplane.batch.")
                        .get("dataplane.batch.waves", 0.0))
    finally:
        if gc_was_enabled:
            gc.enable()

    def overhead(op: str) -> Dict[str, Any]:
        off, on = best["off"][op], best["on"][op]
        return {
            "off_seconds": off,
            "on_seconds": on,
            "overhead_fraction": (on - off) / off,
        }

    return {
        "placement": overhead("place"),
        "retrieval": overhead("get"),
        "batch_waves": batch_waves,
        "vectorized": batch_waves > 0,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_summary(report: Dict[str, Any]) -> str:
    """Human-readable digest of a ``gred-bench-v1`` report."""
    lines = []
    cfg = report["config"]
    lines.append(
        f"fast-path bench: {cfg['switches']} switches, "
        f"{cfg['requests']} requests x{cfg['repeats']} repeats "
        f"(copies={cfg['copies']})"
    )
    cp = report["control_plane"]
    lines.append(
        f"control plane   : build {cp['build_seconds']:.3f}s, "
        f"recompute {cp['recompute_seconds']:.3f}s"
    )
    for name in ("placement", "retrieval"):
        sec = report[name]
        scalar, batch = sec["scalar"], sec["batch"]
        lines.append(
            f"{name:<16}: scalar {scalar['requests_per_sec']:,.0f} rps "
            f"(p50 {scalar['p50_us']:.1f}us p99 {scalar['p99_us']:.1f}us)"
            f" | batch {batch['requests_per_sec']:,.0f} rps "
            f"(p50 {batch['p50_us']:.1f}us p99 {batch['p99_us']:.1f}us)"
            f" | speedup {sec['batch_speedup']:.2f}x"
        )
    tel = report.get("telemetry")
    if tel is not None:
        lines.append(
            f"telemetry       : place "
            f"{tel['placement']['overhead_fraction']:+.1%}, retrieve "
            f"{tel['retrieval']['overhead_fraction']:+.1%} overhead "
            f"({tel['batch_waves']:.0f} waves, "
            f"{'vectorized' if tel['vectorized'] else 'SCALAR FALLBACK'})"
        )
    eq = report["equivalence"]
    ok = all(eq.values())
    lines.append(f"equivalence     : "
                 f"{'identical outcomes' if ok else 'MISMATCH ' + str(eq)}")
    scaling = report.get("scaling")
    if scaling is not None:
        summary = scaling["summary"]
        lines.append(
            f"scaling         : x{summary['speedup_vs_scalar_place']:.1f}"
            f" vs scalar loop, "
            f"{'vectorized fan-out' if summary['replica_fanout_vectorized'] else 'SCALAR FALLBACK'}, "
            f"{'equivalence verified' if summary['equivalence_verified'] else 'EQUIVALENCE MISMATCH'}"
            f" ({summary['host_cpus']} cpu)"
        )
        for row in scaling["rows"]:
            lines.append(
                f"  {row['switches']:>4} sw | batch {row['batch']:>6}"
                f" | workers {row['workers']} | place "
                f"{row['place_rps']:>9,.0f} rps | retrieve "
                f"{row['retrieve_rps']:>9,.0f} rps | "
                f"{row['batch_waves']} waves"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.bench``)."""
    from .cli import main as cli_main

    return cli_main(["bench"] + list(sys.argv[1:] if argv is None
                                     else argv))


if __name__ == "__main__":
    sys.exit(main())
