"""Request-trace files: CSV persistence for reproducible workloads.

Experiments that compare systems must replay *identical* request
sequences; traces generated once can be saved and replayed across runs
and machines.  Format: a header line then
``time,data_id,entry_switch`` rows (RFC-4180-free zone: data ids are
restricted to characters that need no quoting).
"""

from __future__ import annotations

import csv
import io
from typing import IO, List, Union

from .datagen import RetrievalRequest


class TraceFormatError(Exception):
    """Raised on malformed trace files."""


_HEADER = ["time", "data_id", "entry_switch"]


def write_trace(trace: List[RetrievalRequest],
                destination: Union[str, IO[str]]) -> None:
    """Write a trace as CSV to a path or open text file."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8",
                  newline="") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def _write(trace: List[RetrievalRequest], handle: IO[str]) -> None:
    writer = csv.writer(handle)
    writer.writerow(_HEADER)
    for request in trace:
        writer.writerow([f"{request.time!r}", request.data_id,
                         request.entry_switch])


def read_trace(source: Union[str, IO[str]]) -> List[RetrievalRequest]:
    """Read a trace back; rows must be sorted by time.

    Raises
    ------
    TraceFormatError
        On missing/wrong header, malformed rows, or unsorted times.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return _read(handle)
    return _read(source)


def _read(handle: IO[str]) -> List[RetrievalRequest]:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise TraceFormatError("empty trace file") from None
    if header != _HEADER:
        raise TraceFormatError(
            f"bad header {header!r}; expected {_HEADER!r}"
        )
    trace: List[RetrievalRequest] = []
    last_time = float("-inf")
    for line_no, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 3:
            raise TraceFormatError(
                f"line {line_no}: expected 3 fields, got {len(row)}"
            )
        try:
            time = float(row[0])
            entry = int(row[2])
        except ValueError as exc:
            raise TraceFormatError(
                f"line {line_no}: malformed row {row!r}"
            ) from exc
        if time < last_time:
            raise TraceFormatError(
                f"line {line_no}: times not sorted "
                f"({time} after {last_time})"
            )
        last_time = time
        trace.append(RetrievalRequest(time=time, data_id=row[1],
                                      entry_switch=entry))
    return trace


def trace_to_string(trace: List[RetrievalRequest]) -> str:
    """The trace as a CSV string (round-trips through
    :func:`read_trace`)."""
    buffer = io.StringIO(newline="")
    _write(trace, buffer)
    return buffer.getvalue()
