"""Workload generation: data identifiers, popularity, and access points.

The paper's experiments place uniformly random data items and pick a
uniformly random access point per request.  Real edge workloads are
skewed, so a Zipf popularity model is also provided for the examples and
the extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def sequential_ids(count: int, prefix: str = "item") -> List[str]:
    """``count`` distinct identifiers: ``prefix-0``, ``prefix-1``, ..."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [f"{prefix}-{i}" for i in range(count)]


def random_ids(count: int, rng: np.random.Generator,
               prefix: str = "obj") -> List[str]:
    """``count`` distinct identifiers with random 64-bit suffixes."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    ids = set()
    result: List[str] = []
    while len(result) < count:
        suffix = int(rng.integers(0, 2 ** 63))
        data_id = f"{prefix}-{suffix:016x}"
        if data_id not in ids:
            ids.add(data_id)
            result.append(data_id)
    return result


def zipf_choices(items: Sequence[str], count: int, exponent: float,
                 rng: np.random.Generator) -> List[str]:
    """Sample ``count`` items with Zipf(``exponent``) popularity.

    ``items[0]`` is the most popular.  ``exponent = 0`` is uniform.
    """
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    if not items:
        raise ValueError("items must be non-empty")
    ranks = np.arange(1, len(items) + 1, dtype=float)
    weights = ranks ** (-exponent)
    probs = weights / weights.sum()
    picks = rng.choice(len(items), size=count, p=probs)
    return [items[int(i)] for i in picks]


@dataclass(frozen=True)
class RetrievalRequest:
    """One retrieval in a request trace."""

    time: float
    data_id: str
    entry_switch: int


def uniform_retrieval_trace(
    items: Sequence[str],
    switches: Sequence[int],
    count: int,
    duration: float,
    rng: np.random.Generator,
    zipf_exponent: float = 0.0,
) -> List[RetrievalRequest]:
    """A retrieval trace of ``count`` requests over ``duration`` seconds.

    Arrival times are uniform over the window; items follow the given
    Zipf exponent (0 = uniform); access switches are uniform.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if not switches:
        raise ValueError("switches must be non-empty")
    chosen = zipf_choices(items, count, zipf_exponent, rng)
    times = np.sort(rng.uniform(0.0, duration, size=count))
    entries = rng.integers(0, len(switches), size=count)
    return [
        RetrievalRequest(
            time=float(times[i]),
            data_id=chosen[i],
            entry_switch=switches[int(entries[i])],
        )
        for i in range(count)
    ]
