"""Workload generators for the experiments and examples."""

from .datagen import (
    RetrievalRequest,
    random_ids,
    sequential_ids,
    uniform_retrieval_trace,
    zipf_choices,
)
from .trace_io import (
    TraceFormatError,
    read_trace,
    trace_to_string,
    write_trace,
)

__all__ = [
    "sequential_ids",
    "random_ids",
    "zipf_choices",
    "RetrievalRequest",
    "uniform_retrieval_trace",
    "write_trace",
    "read_trace",
    "trace_to_string",
    "TraceFormatError",
]
